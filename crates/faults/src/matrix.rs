//! The detection/recovery matrix: what each injected fault did to the
//! system, reduced across shards into one deterministic report.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use eee::Op;
use sctc_core::{MonitorCounters, SpanStats};
use sctc_temporal::Verdict;

/// The observed consequence of one planned fault.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultRecord {
    /// Global index of the test case the fault was scheduled on.
    pub case_index: u64,
    /// Operation running when the fault was injected (for power losses:
    /// the operation the cut actually interrupted).
    pub op: Op,
    /// Fault class (matrix row key), from `FaultEvent::class`.
    pub class: &'static str,
    /// Fault parameters, from `FaultEvent::detail`.
    pub detail: String,
    /// Whether the fault actually took effect (a scheduled power loss
    /// whose device-cycle target is never reached stays unfired).
    pub fired: bool,
    /// The faulted case deviated from the fault-free reference prediction.
    pub detected: bool,
    /// Deviations on later cases attributed to this (persistent) fault.
    pub late_detections: u32,
    /// Power losses only: did the recovery sequence bring the emulation
    /// back to ready?
    pub recovered: Option<bool>,
    /// Recovery operations executed (startup retries + read-back).
    pub recovery_ops: u32,
    /// Committed records still served correctly after recovery.
    pub survived: u32,
    /// Committed records lost or corrupted after recovery — including a
    /// torn write that gets served.
    pub corrupted: u32,
}

/// Per-shard result that [`DetectionMatrix::merge`] reduces.
#[derive(Clone, Debug)]
pub struct ShardMatrix {
    /// Global index of the shard's first case (records are shard-local
    /// until merge rebases them).
    pub start_case: u64,
    /// Test cases the shard completed (planned + recovery cases).
    pub test_cases: u64,
    /// Fault records with shard-local case indices.
    pub records: Vec<FaultRecord>,
    /// Per-property verdicts of the shard's run.
    pub properties: Vec<(String, Verdict)>,
    /// Change-driven monitoring counters of the shard's run.
    pub monitoring: MonitorCounters,
    /// Span-profiler timings of the shard's run (empty unless the campaign
    /// profiled).
    pub spans: SpanStats,
}

/// The merged fault-campaign result: every fault record in plan order plus
/// the Kleene-conjoined property verdicts.
#[derive(Clone, Debug)]
pub struct DetectionMatrix {
    /// Which flow produced the matrix (`"derived"` / `"micro"`).
    pub flow: String,
    /// Planned case budget of the campaign.
    pub total_cases: u64,
    /// Test cases completed across all shards (planned + recovery).
    pub test_cases: u64,
    /// All fault records, global case order.
    pub records: Vec<FaultRecord>,
    /// Property verdicts, 3-valued conjunction over shards.
    pub properties: Vec<(String, Verdict)>,
    /// Monitoring counters summed over shards. Deliberately **outside**
    /// [`DetectionMatrix::canonical`] (and thus the fingerprint): counters
    /// measure avoided work, which differs between engines while the
    /// detected faults must not.
    pub monitoring: MonitorCounters,
    /// Span-profiler timings merged over shards plus the reducer's own
    /// `shard-merge` span. Like the counters, deliberately **outside**
    /// [`DetectionMatrix::canonical`] and the fingerprint: wall-clock
    /// figures vary run to run while the detected faults must not.
    pub spans: SpanStats,
}

impl DetectionMatrix {
    /// Reduces shard results (in plan order) into one matrix.
    pub fn merge(flow: &str, total_cases: u64, shards: Vec<ShardMatrix>) -> Self {
        let merge_t0 = std::time::Instant::now();
        let mut matrix = DetectionMatrix {
            flow: flow.to_owned(),
            total_cases,
            test_cases: 0,
            records: Vec::new(),
            properties: Vec::new(),
            monitoring: MonitorCounters::default(),
            spans: SpanStats::new(),
        };
        for shard in shards {
            matrix.test_cases += shard.test_cases;
            matrix.monitoring.merge(&shard.monitoring);
            matrix.spans.merge(&shard.spans);
            for mut record in shard.records {
                record.case_index += shard.start_case;
                matrix.records.push(record);
            }
            for (name, verdict) in shard.properties {
                match matrix.properties.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, merged)) => *merged = merged.and(verdict),
                    None => matrix.properties.push((name, verdict)),
                }
            }
        }
        if !matrix.spans.is_empty() {
            // Only when the shards profiled; an unprofiled campaign keeps
            // the stats empty so disabled observability stays invisible.
            matrix.spans.record("shard-merge", merge_t0.elapsed());
        }
        matrix
    }

    /// The merged verdict of one property, if registered.
    pub fn verdict_of(&self, name: &str) -> Option<Verdict> {
        self.properties
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// A canonical line-per-record rendering; two matrices are
    /// interchangeable iff their canonical forms are byte-identical.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "matrix flow={} cases={} ran={}",
            self.flow, self.total_cases, self.test_cases
        );
        for r in &self.records {
            let recovered = match r.recovered {
                None => "-",
                Some(true) => "yes",
                Some(false) => "no",
            };
            let _ = writeln!(
                out,
                "case {} {} [{}] fired={} detected={} late={} recovered={} rec_ops={} survived={} corrupted={} ({})",
                r.case_index,
                r.class,
                r.op,
                r.fired,
                r.detected,
                r.late_detections,
                recovered,
                r.recovery_ops,
                r.survived,
                r.corrupted,
                r.detail
            );
        }
        for (name, verdict) in &self.properties {
            let _ = writeln!(out, "property {name} = {verdict}");
        }
        out
    }

    /// FNV-1a over the canonical rendering: the campaign's determinism
    /// contract is "same (plan, seed, chunk) ⇒ same fingerprint for any
    /// worker count".
    pub fn fingerprint(&self) -> u64 {
        sctc_temporal::fnv1a64(self.canonical().as_bytes())
    }

    /// Renders the fault-class × operation detection grid plus the
    /// power-loss recovery summary.
    pub fn to_table(&self) -> String {
        let mut cells: BTreeMap<&'static str, BTreeMap<Op, (u32, u32)>> = BTreeMap::new();
        for r in &self.records {
            let (detected, total) = cells.entry(r.class).or_default().entry(r.op).or_default();
            *total += 1;
            if r.detected || r.late_detections > 0 {
                *detected += 1;
            }
        }
        let mut out = String::new();
        let _ = write!(out, "{:<12}", "fault");
        for op in Op::ALL {
            let _ = write!(out, " {:>9}", op.to_string());
        }
        out.push('\n');
        for (class, row) in &cells {
            let _ = write!(out, "{class:<12}");
            for op in Op::ALL {
                match row.get(&op) {
                    Some((d, t)) => {
                        let _ = write!(out, " {:>9}", format!("{d}/{t}"));
                    }
                    None => {
                        let _ = write!(out, " {:>9}", "-");
                    }
                }
            }
            out.push('\n');
        }
        let cuts: Vec<&FaultRecord> = self
            .records
            .iter()
            .filter(|r| r.class == "power-loss" && r.fired)
            .collect();
        let recovered = cuts.iter().filter(|r| r.recovered == Some(true)).count();
        let survived: u32 = cuts.iter().map(|r| r.survived).sum();
        let corrupted: u32 = cuts.iter().map(|r| r.corrupted).sum();
        let _ = writeln!(
            out,
            "power losses: {} fired, {} recovered; records survived {} / corrupted {}",
            cuts.len(),
            recovered,
            survived,
            corrupted
        );
        for (name, verdict) in &self.properties {
            let _ = writeln!(out, "property {name:<10} {verdict}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(case_index: u64, class: &'static str, detected: bool) -> FaultRecord {
        FaultRecord {
            case_index,
            op: Op::Write,
            class,
            detail: String::new(),
            fired: true,
            detected,
            late_detections: 0,
            recovered: None,
            recovery_ops: 0,
            survived: 0,
            corrupted: 0,
        }
    }

    #[test]
    fn merge_rebases_case_indices_and_conjoins_verdicts() {
        let matrix = DetectionMatrix::merge(
            "derived",
            20,
            vec![
                ShardMatrix {
                    start_case: 0,
                    test_cases: 10,
                    records: vec![record(3, "bit-flip", true)],
                    properties: vec![("intact".into(), Verdict::Pending)],
                    monitoring: MonitorCounters::default(),
                    spans: SpanStats::new(),
                },
                ShardMatrix {
                    start_case: 10,
                    test_cases: 12,
                    records: vec![record(1, "power-loss", false)],
                    properties: vec![("intact".into(), Verdict::False)],
                    monitoring: MonitorCounters::default(),
                    spans: SpanStats::new(),
                },
            ],
        );
        assert_eq!(matrix.test_cases, 22);
        assert_eq!(matrix.records[0].case_index, 3);
        assert_eq!(matrix.records[1].case_index, 11);
        assert_eq!(matrix.verdict_of("intact"), Some(Verdict::False));
        assert_eq!(matrix.verdict_of("missing"), None);
    }

    #[test]
    fn fingerprint_tracks_canonical_content() {
        let a = DetectionMatrix::merge(
            "derived",
            5,
            vec![ShardMatrix {
                start_case: 0,
                test_cases: 5,
                records: vec![record(2, "transient", true)],
                properties: vec![],
                monitoring: MonitorCounters::default(),
                spans: SpanStats::new(),
            }],
        );
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.records[0].detected = false;
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Counters never feed the fingerprint: they differ between engines
        // while the detected faults must not.
        let mut c = a.clone();
        c.monitoring.atoms_evaluated = 12345;
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn table_renders_grid_and_power_loss_summary() {
        let mut cut = record(4, "power-loss", true);
        cut.recovered = Some(true);
        cut.survived = 3;
        let matrix = DetectionMatrix::merge(
            "micro",
            10,
            vec![ShardMatrix {
                start_case: 0,
                test_cases: 10,
                records: vec![record(1, "bit-flip", true), cut],
                properties: vec![("recovery".into(), Verdict::Pending)],
                monitoring: MonitorCounters::default(),
                spans: SpanStats::new(),
            }],
        );
        let table = matrix.to_table();
        assert!(table.contains("bit-flip"));
        assert!(table.contains("1/1"));
        assert!(table.contains("1 fired, 1 recovered"));
        assert!(table.contains("recovery"));
    }
}
