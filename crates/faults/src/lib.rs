//! # faults — fault injection and recovery verification
//!
//! The case-study software exists to keep EEPROM-emulated data alive
//! through flash wear and sudden power loss; this crate verifies exactly
//! that promise, under both of the paper's flows:
//!
//! * [`FaultPlan`] — a deterministic fault schedule (SplitMix64-seeded,
//!   the same determinism contract as the stimulus and campaign crates):
//!   flash command failures, persistent bit flips, stuck-at cells,
//!   transient read errors, and power-loss/reset events that tear the ESW
//!   down mid-operation (CPU + RAM reinitialised for the microprocessor
//!   flow, a fresh interpreter activation for the derived flow) while the
//!   flash array persists.
//! * [`FaultSession`] — drives either flow through the plan, predicts
//!   every outcome with the fault-free [`eee::RefEee`] reference model to
//!   classify deviations as *detections*, and runs the post-cut recovery
//!   protocol (startup sequence, one Format retry, full read-back of
//!   committed records).
//! * Recovery properties in FLTL, monitored online: `G (reset -> F[<=b]
//!   initialized)` and `G intact` ("no torn write is ever served").
//! * [`DetectionMatrix`] — fault class × operation × flow verdicts plus
//!   recovery latency and survived/corrupted record counts, merged from
//!   sharded workers bit-identically for any `--jobs` value (FNV-1a
//!   fingerprint over the canonical rendering).
//!
//! ## Example
//!
//! ```no_run
//! use faults::{run_fault_campaign, FaultCampaignSpec};
//!
//! let report = run_fault_campaign(&FaultCampaignSpec::derived(400, 42).with_jobs(4));
//! println!("{}", report.matrix.to_table());
//! assert_eq!(
//!     report.matrix.fingerprint(),
//!     run_fault_campaign(&FaultCampaignSpec::derived(400, 42).with_jobs(1))
//!         .matrix
//!         .fingerprint()
//! );
//! ```

#![warn(missing_docs)]

mod campaign;
mod matrix;
mod plan;
pub mod scenario;
mod session;

pub use campaign::{
    bind_recovery_derived, bind_recovery_micro, intact_property, recovery_property,
    run_fault_campaign, run_fault_unit, EswProgram, FaultCampaignReport, FaultCampaignSpec,
    FaultUnitSpec,
};
pub use matrix::{DetectionMatrix, FaultRecord, ShardMatrix};
pub use plan::{FaultEvent, FaultPlan, PlannedFault, FAULT_PLAN_SALT};
pub use session::{
    FaultInterpDriver, FaultSession, FaultSocDriver, SharedObservations, SharedRecords, TRAP_RET,
};
