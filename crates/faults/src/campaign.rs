//! Sharded fault campaigns over both verification flows.
//!
//! Reuses the campaign crate's deterministic shard planning and worker
//! pool: the global [`FaultPlan`] is generated once from the campaign seed
//! and sliced per shard, so the merged [`DetectionMatrix`] — fingerprint
//! included — is a pure function of `(flow, cases, chunk, seed, percent)`
//! and bit-identical for any `--jobs` value.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use eee::{build_ir, share_flash, DataFlash, FlashMemory, FlashMmio, FlashReadWindow};
use eee::{FLASH_READ_BASE, FLASH_READ_LEN, FLASH_REG_BASE, FLASH_REG_LEN};
use minic::codegen::{compile, CodegenOptions};
use minic::{Interp, SharedInterp};
use sctc_campaign::{default_chunk, resolve_jobs, run_shards, shard_plan, FlowKind, ShardSpec};
use sctc_core::{esw, sym, trace, DerivedModelFlow, EngineKind, MicroprocessorFlow, Proposition};
use sctc_cpu::SharedSoc;
use sctc_temporal::{parse, Formula};

use crate::matrix::{DetectionMatrix, ShardMatrix};
use crate::plan::FaultPlan;
use crate::session::{FaultInterpDriver, FaultSession, FaultSocDriver};

/// Specification of one fault-injection campaign.
#[derive(Clone, Debug)]
pub struct FaultCampaignSpec {
    /// The flow to run.
    pub flow: FlowKind,
    /// Total planned test cases (recovery cases come on top).
    pub cases: u64,
    /// Campaign seed: shard request seeds and the fault plan derive from
    /// it.
    pub seed: u64,
    /// Worker threads (`0` = all available cores).
    pub jobs: usize,
    /// Cases per shard (`0` = [`default_chunk`]).
    pub chunk: u64,
    /// Per-case fault probability, in percent.
    pub fault_percent: u32,
    /// Sample bound of the recovery property `G (reset -> F[<=b]
    /// initialized)` — statements for the derived flow, clock cycles for
    /// the microprocessor flow.
    pub recovery_bound: u64,
    /// Monitoring engine.
    pub engine: EngineKind,
    /// Simulation-tick budget per shard.
    pub max_ticks: u64,
    /// Enables the span profiler in every shard; timings are merged into
    /// [`DetectionMatrix::spans`], outside the fingerprint.
    pub profile: bool,
}

impl FaultCampaignSpec {
    /// A derived-flow fault campaign: statement-granular sampling, 35% of
    /// the cases faulted.
    pub fn derived(cases: u64, seed: u64) -> Self {
        FaultCampaignSpec {
            flow: FlowKind::Derived,
            cases,
            seed,
            jobs: 0,
            chunk: 0,
            fault_percent: 35,
            recovery_bound: 5_000,
            engine: EngineKind::Table,
            max_ticks: u64::MAX / 2,
            profile: false,
        }
    }

    /// A microprocessor-flow fault campaign; the recovery bound is in
    /// clock cycles, so it is far larger than the derived one.
    pub fn micro(cases: u64, seed: u64) -> Self {
        FaultCampaignSpec {
            flow: FlowKind::Microprocessor,
            recovery_bound: 200_000,
            ..FaultCampaignSpec::derived(cases, seed)
        }
    }

    /// Sets the worker count (`0` = all available cores).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the shard chunk size (`0` = [`default_chunk`]).
    pub fn with_chunk(mut self, chunk: u64) -> Self {
        self.chunk = chunk;
        self
    }

    /// Sets the per-case fault probability in percent.
    pub fn with_fault_percent(mut self, percent: u32) -> Self {
        self.fault_percent = percent;
        self
    }

    /// Sets the monitoring engine. Matrix fingerprints are engine-
    /// independent: [`EngineKind::Naive`] must detect exactly the same
    /// faults as the default change-driven pipeline.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Enables (or disables) the span profiler in every shard.
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }
}

/// Result of a fault campaign.
#[derive(Clone, Debug)]
pub struct FaultCampaignReport {
    /// Worker threads used.
    pub jobs: usize,
    /// Campaign wall-clock.
    pub wall: Duration,
    /// The merged detection/recovery matrix.
    pub matrix: DetectionMatrix,
}

/// The recovery property: every reset is followed by a re-initialized
/// emulation within `bound` samples.
pub fn recovery_property(bound: u64) -> Formula {
    parse(&format!("G (reset -> F[<={bound}] initialized)"))
        .expect("recovery property template parses")
}

/// The torn-write property: the served read value is never the erased
/// marker, i.e. no half-programmed record is ever handed to the
/// application.
pub fn intact_property() -> Formula {
    parse("G intact").expect("intact property template parses")
}

/// Binds `reset`/`initialized`/`intact` against the derived model.
pub fn bind_recovery_derived(interp: &SharedInterp) -> [Vec<Box<dyn Proposition>>; 2] {
    [
        vec![
            esw::global_nonzero("reset", interp.clone(), "tb_reset"),
            esw::global_nonzero("initialized", interp.clone(), "eee_ready"),
        ],
        vec![esw::global_ne(
            "intact",
            interp.clone(),
            "eee_read_value",
            -1,
        )],
    ]
}

/// Binds `reset`/`initialized`/`intact` against the microprocessor model.
/// The observed globals — `tb_reset`, `eee_ready`, `eee_read_value` — are
/// resolved by name through the memory's attached symbol map; the resolved
/// atoms (and all campaign fingerprints) match the former address-based
/// binding exactly.
pub fn bind_recovery_micro(soc: &SharedSoc) -> [Vec<Box<dyn Proposition>>; 2] {
    [
        vec![
            sym::word_nonzero("reset", soc.clone(), "tb_reset"),
            sym::word_nonzero("initialized", soc.clone(), "eee_ready"),
        ],
        vec![sym::word_ne(
            "intact",
            soc.clone(),
            "eee_read_value",
            (-1i32) as u32,
        )],
    ]
}

fn flow_name(flow: FlowKind) -> &'static str {
    match flow {
        FlowKind::Derived => "derived",
        FlowKind::Microprocessor => "micro",
    }
}

/// Runs a fault campaign: plans shards and the fault schedule up front,
/// fans the shards out over the worker pool, merges the matrices.
pub fn run_fault_campaign(spec: &FaultCampaignSpec) -> FaultCampaignReport {
    let jobs = resolve_jobs(spec.jobs);
    let chunk = if spec.chunk > 0 {
        spec.chunk
    } else {
        default_chunk(spec.cases)
    };
    let plan = shard_plan(spec.cases, chunk, spec.seed);
    let fault_plan = FaultPlan::generate(spec.seed, spec.cases, spec.fault_percent);
    let trace_ctx = trace::current();
    let shards_done = AtomicU64::new(0);
    let total_shards = plan.len() as u64;
    let t0 = Instant::now();
    let outcomes = run_shards(&plan, jobs, |shard| {
        let _trace = trace::adopt(trace_ctx);
        trace::emit(
            "shard.dispatch",
            &[("shard", shard.index), ("cases", shard.cases)],
        );
        let local = fault_plan.for_shard(shard.start_case, shard.cases);
        let matrix = run_fault_shard(spec, shard, &local);
        let done = shards_done.fetch_add(1, Ordering::Relaxed) + 1;
        trace::emit("shard.done", &[("shard", shard.index), ("cases", shard.cases)]);
        trace::progress(done, total_shards);
        matrix
    });
    FaultCampaignReport {
        jobs,
        wall: t0.elapsed(),
        matrix: DetectionMatrix::merge(flow_name(spec.flow), spec.cases, outcomes),
    }
}

fn run_fault_shard(
    spec: &FaultCampaignSpec,
    shard: &ShardSpec,
    local_plan: &FaultPlan,
) -> ShardMatrix {
    let unit = FaultUnitSpec {
        flow: spec.flow,
        program: EswProgram::Healthy,
        request_seed: shard.seed,
        cases: shard.cases,
        recovery_bound: spec.recovery_bound,
        engine: spec.engine,
        max_ticks: spec.max_ticks,
        profile: spec.profile,
    };
    let mut matrix = run_fault_unit(&unit, local_plan);
    matrix.start_case = shard.start_case;
    matrix
}

/// Which ESW build a fault unit exercises.
///
/// The torn-write mutant ([`crate::scenario::torn_write_ir`]) programs the
/// record tag before the value, so a power loss between the two flash
/// programs leaves a *visible* record with an erased value — the planted
/// bug that statistical campaigns quantify (`P(G intact)` drops below 1
/// exactly as often as a random cut lands in that window).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum EswProgram {
    /// The in-tree, correct EEPROM emulation.
    #[default]
    Healthy,
    /// The tag-before-value mutant that can serve torn writes.
    TornWrite,
}

impl EswProgram {
    fn ir(self) -> std::rc::Rc<minic::ir::IrProgram> {
        match self {
            EswProgram::Healthy => build_ir(),
            EswProgram::TornWrite => crate::scenario::torn_write_ir(),
        }
    }
}

/// One self-contained fault-session run: a campaign shard, or one sample
/// of a statistical campaign. `Send`-safe by construction (the `!Send`
/// flow is built inside [`run_fault_unit`]), so worker threads can build
/// units freely.
#[derive(Copy, Clone, Debug)]
pub struct FaultUnitSpec {
    /// The flow to run.
    pub flow: FlowKind,
    /// The ESW build under test.
    pub program: EswProgram,
    /// Seed of the request stimulus stream.
    pub request_seed: u64,
    /// Planned test cases (recovery cases come on top).
    pub cases: u64,
    /// Sample bound of the recovery property.
    pub recovery_bound: u64,
    /// Monitoring engine.
    pub engine: EngineKind,
    /// Simulation-tick budget.
    pub max_ticks: u64,
    /// Enables the span profiler.
    pub profile: bool,
}

/// Runs one fault-session unit against `plan` and reduces it to a
/// [`ShardMatrix`] (with `start_case = 0`; campaign callers rebase it).
/// This is the shared execution path of the sharded fault campaign and
/// the SMC sampler — both produce matrices through the exact same flow
/// construction, property binding, and record plumbing.
pub fn run_fault_unit(unit: &FaultUnitSpec, plan: &FaultPlan) -> ShardMatrix {
    match unit.flow {
        FlowKind::Derived => run_derived_unit(unit, plan),
        FlowKind::Microprocessor => run_micro_unit(unit, plan),
    }
}

fn run_derived_unit(unit: &FaultUnitSpec, plan: &FaultPlan) -> ShardMatrix {
    let flash = share_flash(DataFlash::new());
    let interp = Interp::new(unit.program.ir(), Box::new(FlashMemory::new(flash.clone())));
    let mut flow = DerivedModelFlow::new(interp);
    if unit.profile {
        let _ = flow.enable_profiler();
    }
    let handle = flow.interp();
    let [recovery_props, intact_props] = bind_recovery_derived(&handle);
    flow.add_property(
        "recovery",
        &recovery_property(unit.recovery_bound),
        recovery_props,
        unit.engine,
    )
    .expect("recovery property binds by construction");
    flow.add_property("intact", &intact_property(), intact_props, unit.engine)
        .expect("intact property binds by construction");
    let session = FaultSession::from_plan(unit.request_seed, unit.cases, plan, flash);
    let records = session.records_handle();
    let report = flow
        .run(Box::new(FaultInterpDriver::new(session)), unit.max_ticks)
        .expect("derived fault unit runs without scheduler errors");
    ShardMatrix {
        start_case: 0,
        test_cases: report.test_cases,
        records: records.take(),
        properties: report
            .properties
            .iter()
            .map(|p| (p.name.clone(), p.verdict))
            .collect(),
        monitoring: report.monitoring,
        spans: report.spans,
    }
}

fn run_micro_unit(unit: &FaultUnitSpec, plan: &FaultPlan) -> ShardMatrix {
    let ir = unit.program.ir();
    let compiled = compile(&ir, CodegenOptions::default()).expect("EEE program compiles");
    let addrs = eee::driver::MailboxAddrs::from_compiled(&compiled);
    // The driver still pokes these mailbox words by raw address.
    let tb_reset = compiled.global_addr("tb_reset");
    let eee_read_value = compiled.global_addr("eee_read_value");
    let flash = share_flash(DataFlash::new());

    let mut flow = MicroprocessorFlow::new(compiled, 0x0004_0000, 10);
    if unit.profile {
        let _ = flow.enable_profiler();
    }
    flow.set_flag_global("flag");
    {
        let soc = flow.soc();
        let mut soc = soc.borrow_mut();
        soc.mem.map_device(
            FLASH_REG_BASE,
            FLASH_REG_LEN,
            Box::new(FlashMmio::new(flash.clone())),
        );
        soc.mem.map_device(
            FLASH_READ_BASE,
            FLASH_READ_LEN,
            Box::new(FlashReadWindow::new(flash.clone())),
        );
    }
    let soc = flow.soc();
    let [recovery_props, intact_props] = bind_recovery_micro(&soc);
    flow.add_property(
        "recovery",
        &recovery_property(unit.recovery_bound),
        recovery_props,
        unit.engine,
    )
    .expect("recovery property binds by construction");
    flow.add_property("intact", &intact_property(), intact_props, unit.engine)
        .expect("intact property binds by construction");
    let session = FaultSession::from_plan(unit.request_seed, unit.cases, plan, flash);
    let records = session.records_handle();
    let driver = FaultSocDriver::new(session, addrs, tb_reset, eee_read_value);
    let report = flow
        .run(Box::new(driver), unit.max_ticks)
        .expect("microprocessor fault unit runs without scheduler errors");
    ShardMatrix {
        start_case: 0,
        test_cases: report.test_cases,
        records: records.take(),
        properties: report
            .properties
            .iter()
            .map(|p| (p.name.clone(), p.verdict))
            .collect(),
        monitoring: report.monitoring,
        spans: report.spans,
    }
}
