//! A fixed power-loss scenario that separates a correct torn-write
//! discipline from a broken one.
//!
//! The script commits one record, then cuts power exactly between the two
//! flash programs of a second write. The healthy ESW programs the value
//! word before the tag, so the interrupted slot stays invisible:
//! recovery finds the committed record intact and the torn id absent. The
//! [`torn_write_ir`] variant swaps the order (tag before value) — after
//! the same cut the tag is visible with an erased value word, recovery
//! serves `-1`, and the `intact` property (`G intact`) goes `False`.

use std::rc::Rc;

use eee::{build_ir, share_flash, DataFlash, FlashMemory, FlashMmio, FlashReadWindow, Op, Request};
use eee::{EEE_SOURCE, FLASH_READ_BASE, FLASH_READ_LEN, FLASH_REG_BASE, FLASH_REG_LEN};
use minic::codegen::{compile, CodegenOptions};
use minic::ir::IrProgram;
use minic::Interp;
use sctc_campaign::FlowKind;
use sctc_core::{DerivedModelFlow, EngineKind, MicroprocessorFlow, RunReport, WitnessConfig};
use sctc_temporal::Verdict;

use crate::campaign::{
    bind_recovery_derived, bind_recovery_micro, intact_property, recovery_property,
};
use crate::matrix::FaultRecord;
use crate::plan::{FaultEvent, FaultPlan, PlannedFault};
use crate::session::{FaultInterpDriver, FaultSession, FaultSocDriver};

/// Result of one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Property verdicts (`recovery`, `intact`).
    pub properties: Vec<(String, Verdict)>,
    /// The fault records (exactly one: the power loss).
    pub records: Vec<FaultRecord>,
    /// Observed (request, return code, read value) for every finished
    /// case, recovery protocol included.
    pub observations: Vec<(Request, i32, i32)>,
}

impl ScenarioOutcome {
    /// The verdict of one property.
    ///
    /// # Panics
    ///
    /// Panics if the property was not registered.
    pub fn verdict_of(&self, name: &str) -> Verdict {
        self.properties
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .expect("scenario registers the property")
    }

    /// The power-loss fault record.
    ///
    /// # Panics
    ///
    /// Panics if the scenario produced no record.
    pub fn cut(&self) -> &FaultRecord {
        self.records.first().expect("scenario schedules one cut")
    }
}

/// An ESW variant with the torn-write discipline inverted: the tag word is
/// programmed before the value word, so a power loss between the two
/// leaves a *visible* record with an erased (`-1`) value.
///
/// # Panics
///
/// Panics if the mutation no longer applies to the embedded source.
pub fn torn_write_ir() -> Rc<IrProgram> {
    let tag_line = "            r = dfa_program(w, 12451840 + id);";
    let value_line = "            r = dfa_program(w + 1, value);";
    let staged = EEE_SOURCE.replacen(tag_line, "__TORN_SWAP__", 1);
    assert_ne!(staged, EEE_SOURCE, "tag-program anchor must apply");
    let staged = staged.replacen(
        value_line,
        "            r = dfa_program(w, 12451840 + id); // BUG: tag first",
        1,
    );
    assert!(
        staged.contains("// BUG: tag first"),
        "value-program anchor must apply"
    );
    let source = staged.replacen(
        "__TORN_SWAP__",
        "            r = dfa_program(w + 1, value); // BUG: value second",
        1,
    );
    assert!(!source.contains("__TORN_SWAP__"), "swap must complete");
    Rc::new(minic::lower(&minic::parse(&source).expect("mutant parses")).expect("mutant lowers"))
}

/// The scenario script: bring-up, one committed record, then the write the
/// cut interrupts, then post-recovery probes of both ids.
fn script() -> Vec<Request> {
    vec![
        Request::new(Op::Format, 0, 0),
        Request::new(Op::Startup1, 0, 0),
        Request::new(Op::Startup2, 0, 0),
        Request::new(Op::Write, 3, 42),
        Request::new(Op::Write, 5, 7),
        Request::new(Op::Read, 3, 0),
        Request::new(Op::Read, 5, 0),
    ]
}

/// The cut: two device cycles into case 4 (`Write(5, 7)`) — after the
/// first of the write's two flash programs completes, before the second
/// is issued.
fn cut_plan() -> FaultPlan {
    FaultPlan {
        faults: vec![PlannedFault {
            case_index: 4,
            event: FaultEvent::PowerLoss {
                after_device_cycles: 2,
            },
        }],
    }
}

/// Observability switches for a scenario run (all off by default — the
/// plain scenario is bit-identical to the pre-diagnosis-layer one).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScenarioObs {
    /// Capture a counterexample witness for every violated property.
    pub witnesses: Option<WitnessConfig>,
    /// Record property-timeline VCD channels (verdict + atoms per
    /// property) into [`RunReport::vcd`].
    pub vcd: bool,
    /// Enable the span profiler.
    pub profile: bool,
    /// Monitoring engine for both scenario properties (defaults to the
    /// change-driven table engine; equivalence tests swap in `Naive` and
    /// `Lazy` to prove the scenario verdicts are engine-independent).
    pub engine: EngineKind,
}

/// Runs the power-loss scenario on `ir` under the chosen flow.
/// `recovery_bound` is in samples (statements / clock cycles).
pub fn run_scenario(flow: FlowKind, ir: Rc<IrProgram>, recovery_bound: u64) -> ScenarioOutcome {
    run_scenario_observed(flow, ir, recovery_bound, ScenarioObs::default()).0
}

/// Like [`run_scenario`], with the diagnosis layer switched on: the full
/// [`RunReport`] comes back alongside the outcome, carrying witnesses,
/// the VCD document and the span profile as requested by `obs`.
pub fn run_scenario_observed(
    flow: FlowKind,
    ir: Rc<IrProgram>,
    recovery_bound: u64,
    obs: ScenarioObs,
) -> (ScenarioOutcome, RunReport) {
    match flow {
        FlowKind::Derived => run_derived(ir, recovery_bound, obs),
        FlowKind::Microprocessor => run_micro(ir, recovery_bound, obs),
    }
}

/// Convenience: the healthy (in-tree) ESW.
pub fn healthy_ir() -> Rc<IrProgram> {
    build_ir()
}

fn run_derived(
    ir: Rc<IrProgram>,
    recovery_bound: u64,
    obs: ScenarioObs,
) -> (ScenarioOutcome, RunReport) {
    let flash = share_flash(DataFlash::new());
    let interp = Interp::new(ir, Box::new(FlashMemory::new(flash.clone())));
    let mut flow = DerivedModelFlow::new(interp);
    apply_obs_derived(&mut flow, obs);
    let handle = flow.interp();
    let [recovery_props, intact_props] = bind_recovery_derived(&handle);
    flow.add_property(
        "recovery",
        &recovery_property(recovery_bound),
        recovery_props,
        obs.engine,
    )
    .expect("recovery property binds");
    flow.add_property("intact", &intact_property(), intact_props, obs.engine)
        .expect("intact property binds");
    let session = FaultSession::scripted(script(), &cut_plan(), flash);
    let records = session.records_handle();
    let observations = session.observations_handle();
    let report = flow
        .run(Box::new(FaultInterpDriver::new(session)), u64::MAX / 2)
        .expect("derived scenario runs");
    let outcome = ScenarioOutcome {
        properties: report
            .properties
            .iter()
            .map(|p| (p.name.clone(), p.verdict))
            .collect(),
        records: records.take(),
        observations: observations.take(),
    };
    (outcome, report)
}

fn apply_obs_derived(flow: &mut DerivedModelFlow, obs: ScenarioObs) {
    if let Some(cfg) = obs.witnesses {
        flow.enable_witnesses(cfg);
    }
    if obs.vcd {
        flow.enable_vcd();
    }
    if obs.profile {
        let _ = flow.enable_profiler();
    }
}

fn apply_obs_micro(flow: &mut MicroprocessorFlow, obs: ScenarioObs) {
    if let Some(cfg) = obs.witnesses {
        flow.enable_witnesses(cfg);
    }
    if obs.vcd {
        flow.enable_vcd();
    }
    if obs.profile {
        let _ = flow.enable_profiler();
    }
}

fn run_micro(
    ir: Rc<IrProgram>,
    recovery_bound: u64,
    obs: ScenarioObs,
) -> (ScenarioOutcome, RunReport) {
    let compiled = compile(&ir, CodegenOptions::default()).expect("scenario program compiles");
    let addrs = eee::driver::MailboxAddrs::from_compiled(&compiled);
    // The driver still pokes these mailbox words by raw address.
    let tb_reset = compiled.global_addr("tb_reset");
    let eee_read_value = compiled.global_addr("eee_read_value");
    let flash = share_flash(DataFlash::new());

    let mut flow = MicroprocessorFlow::new(compiled, 0x0004_0000, 10);
    apply_obs_micro(&mut flow, obs);
    flow.set_flag_global("flag");
    {
        let soc = flow.soc();
        let mut soc = soc.borrow_mut();
        soc.mem.map_device(
            FLASH_REG_BASE,
            FLASH_REG_LEN,
            Box::new(FlashMmio::new(flash.clone())),
        );
        soc.mem.map_device(
            FLASH_READ_BASE,
            FLASH_READ_LEN,
            Box::new(FlashReadWindow::new(flash.clone())),
        );
    }
    let soc = flow.soc();
    let [recovery_props, intact_props] = bind_recovery_micro(&soc);
    flow.add_property(
        "recovery",
        &recovery_property(recovery_bound),
        recovery_props,
        obs.engine,
    )
    .expect("recovery property binds");
    flow.add_property("intact", &intact_property(), intact_props, obs.engine)
        .expect("intact property binds");
    let session = FaultSession::scripted(script(), &cut_plan(), flash);
    let records = session.records_handle();
    let observations = session.observations_handle();
    let driver = FaultSocDriver::new(session, addrs, tb_reset, eee_read_value);
    let report = flow
        .run(Box::new(driver), u64::MAX / 2)
        .expect("microprocessor scenario runs");
    let outcome = ScenarioOutcome {
        properties: report
            .properties
            .iter()
            .map(|p| (p.name.clone(), p.verdict))
            .collect(),
        records: records.take(),
        observations: observations.take(),
    };
    (outcome, report)
}
