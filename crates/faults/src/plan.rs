//! Deterministic fault plans.
//!
//! A [`FaultPlan`] is a pure function of `(seed, cases, percent)`: a seeded
//! [`Stimulus`] (SplitMix64, the same determinism contract as the stimulus
//! and campaign crates) schedules at most one [`FaultEvent`] per test case.
//! Slicing the plan per shard with [`FaultPlan::for_shard`] preserves the
//! schedule exactly, so a sharded fault campaign replays the same faults
//! for any worker count.

use eee::{FaultKind, NUM_PAGES, PAGE_WORDS};
use stimuli::{derive_seed, derive_seed_salted, Stimulus};

/// Seed salt separating the fault schedule from the request stream (which
/// uses the shard seed directly).
pub const FAULT_PLAN_SALT: u64 = 0xFA17_0BAD;

/// One fault to inject, scheduled against a test case.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FaultEvent {
    /// Arm a one-shot flash command failure (the FAULT register's typed
    /// encoding) before the case starts.
    Command(FaultKind),
    /// Persistently flip one stored bit before the case starts.
    BitFlip {
        /// Global word index into the flash array.
        word: u32,
        /// Bit position (0..32).
        bit: u32,
    },
    /// Force one cell bit to read as 0 until further notice.
    StuckZero {
        /// Global word index into the flash array.
        word: u32,
        /// Bit position (0..32).
        bit: u32,
    },
    /// Force one cell bit to read as 1 until further notice.
    StuckOne {
        /// Global word index into the flash array.
        word: u32,
        /// Bit position (0..32).
        bit: u32,
    },
    /// Corrupt exactly the next data read of one word (soft error).
    TransientRead {
        /// Global word index into the flash array.
        word: u32,
        /// Bit position (0..32).
        bit: u32,
    },
    /// Cut power once the flash has consumed this many further device
    /// cycles: the ESW is torn down mid-operation and restarted while the
    /// flash array persists.
    PowerLoss {
        /// Device cycles (busy ticks) after the case starts.
        after_device_cycles: u64,
    },
}

impl FaultEvent {
    /// Short class name used as the detection-matrix row key.
    pub fn class(&self) -> &'static str {
        match self {
            FaultEvent::Command(FaultKind::EraseFail) => "cmd-erase",
            FaultEvent::Command(FaultKind::ProgramFail) => "cmd-program",
            FaultEvent::BitFlip { .. } => "bit-flip",
            FaultEvent::StuckZero { .. } => "stuck-0",
            FaultEvent::StuckOne { .. } => "stuck-1",
            FaultEvent::TransientRead { .. } => "transient",
            FaultEvent::PowerLoss { .. } => "power-loss",
        }
    }

    /// Human-readable parameters (word/bit or cycle offset).
    pub fn detail(&self) -> String {
        match self {
            FaultEvent::Command(kind) => format!("{kind:?}"),
            FaultEvent::BitFlip { word, bit }
            | FaultEvent::StuckZero { word, bit }
            | FaultEvent::StuckOne { word, bit }
            | FaultEvent::TransientRead { word, bit } => format!("word {word} bit {bit}"),
            FaultEvent::PowerLoss {
                after_device_cycles,
            } => format!("after {after_device_cycles} device cycles"),
        }
    }
}

/// A fault bound to the test case that triggers it.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PlannedFault {
    /// Index of the test case (plan-local; global before
    /// [`FaultPlan::for_shard`] rebases it).
    pub case_index: u64,
    /// The fault to inject when that case launches.
    pub event: FaultEvent,
}

/// The full fault schedule of a campaign.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Faults in ascending `case_index` order, at most one per case.
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// Generates the schedule for `cases` test cases: each case draws a
    /// fault with probability `percent`%. Pure in `(seed, cases, percent)`.
    pub fn generate(seed: u64, cases: u64, percent: u32) -> Self {
        Self::from_stimulus(Stimulus::new(derive_seed(seed, FAULT_PLAN_SALT)), cases, percent)
    }

    /// Generates an independently **randomized** plan for one indexed
    /// sample of a statistical campaign: the stream is salted with both
    /// the caller's salt and the sample index, so every sample draws its
    /// faults from a fresh SplitMix64 stream while the whole family stays
    /// a pure function of `(seed, salt, index, cases, percent)`.
    pub fn randomized(seed: u64, salt: u64, index: u64, cases: u64, percent: u32) -> Self {
        Self::from_stimulus(
            Stimulus::new(derive_seed_salted(seed, salt ^ FAULT_PLAN_SALT, index)),
            cases,
            percent,
        )
    }

    fn from_stimulus(mut stim: Stimulus, cases: u64, percent: u32) -> Self {
        let words = (NUM_PAGES * PAGE_WORDS) as i32;
        let mut faults = Vec::new();
        for case_index in 0..cases {
            if !stim.chance(percent) {
                continue;
            }
            let class = stim.weighted(&[
                (0u8, 20), // command failure
                (1, 12),   // bit flip
                (2, 9),    // stuck-at-0
                (3, 9),    // stuck-at-1
                (4, 15),   // transient read
                (5, 35),   // power loss
            ]);
            let event = match class {
                0 => {
                    FaultEvent::Command(stim.pick(&[FaultKind::EraseFail, FaultKind::ProgramFail]))
                }
                1..=4 => {
                    let word = stim.int_in(0, words - 1) as u32;
                    let bit = stim.int_in(0, 31) as u32;
                    match class {
                        1 => FaultEvent::BitFlip { word, bit },
                        2 => FaultEvent::StuckZero { word, bit },
                        3 => FaultEvent::StuckOne { word, bit },
                        _ => FaultEvent::TransientRead { word, bit },
                    }
                }
                _ => FaultEvent::PowerLoss {
                    after_device_cycles: stim.int_in(1, 12) as u64,
                },
            };
            faults.push(PlannedFault { case_index, event });
        }
        FaultPlan { faults }
    }

    /// The slice of the plan falling into `[start_case, start_case+cases)`,
    /// rebased to shard-local case indices.
    pub fn for_shard(&self, start_case: u64, cases: u64) -> FaultPlan {
        FaultPlan {
            faults: self
                .faults
                .iter()
                .filter(|f| f.case_index >= start_case && f.case_index < start_case + cases)
                .map(|f| PlannedFault {
                    case_index: f.case_index - start_case,
                    event: f.event,
                })
                .collect(),
        }
    }

    /// Whether any power-loss event is scheduled (drivers use this to
    /// enable the per-statement power hook only when needed).
    pub fn has_power_loss(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f.event, FaultEvent::PowerLoss { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_a_pure_function_of_its_inputs() {
        let a = FaultPlan::generate(7, 200, 40);
        let b = FaultPlan::generate(7, 200, 40);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::generate(8, 200, 40));
    }

    #[test]
    fn shard_slices_tile_the_global_plan() {
        let plan = FaultPlan::generate(3, 100, 50);
        let mut rebuilt = Vec::new();
        for start in (0..100).step_by(25) {
            let local = plan.for_shard(start, 25);
            for f in &local.faults {
                assert!(f.case_index < 25);
                rebuilt.push(PlannedFault {
                    case_index: f.case_index + start,
                    event: f.event,
                });
            }
        }
        assert_eq!(rebuilt, plan.faults);
    }

    #[test]
    fn at_most_one_fault_per_case_and_all_classes_show_up() {
        let plan = FaultPlan::generate(11, 2000, 60);
        for pair in plan.faults.windows(2) {
            assert!(pair[0].case_index < pair[1].case_index);
        }
        let classes: std::collections::BTreeSet<&str> =
            plan.faults.iter().map(|f| f.event.class()).collect();
        for class in [
            "cmd-erase",
            "cmd-program",
            "bit-flip",
            "stuck-0",
            "stuck-1",
            "transient",
            "power-loss",
        ] {
            assert!(classes.contains(class), "missing {class}");
        }
    }

    #[test]
    fn zero_percent_means_no_faults() {
        assert!(FaultPlan::generate(1, 500, 0).faults.is_empty());
        assert!(!FaultPlan::generate(1, 500, 0).has_power_loss());
    }

    #[test]
    fn randomized_plans_are_pure_and_index_independent() {
        let a = FaultPlan::randomized(7, 0xCAFE, 3, 50, 60);
        assert_eq!(a, FaultPlan::randomized(7, 0xCAFE, 3, 50, 60));
        assert_ne!(a, FaultPlan::randomized(7, 0xCAFE, 4, 50, 60));
        assert_ne!(a, FaultPlan::randomized(7, 0xBEEF, 3, 50, 60));
        assert_ne!(a, FaultPlan::randomized(8, 0xCAFE, 3, 50, 60));
    }

    #[test]
    fn randomized_stream_is_independent_of_the_campaign_stream() {
        // A sample plan must not replay the campaign-global schedule even
        // when seed and case budget coincide.
        let campaign = FaultPlan::generate(11, 100, 50);
        let sample = FaultPlan::randomized(11, 0, 0, 100, 50);
        assert_ne!(campaign, sample);
    }

    #[test]
    fn randomized_family_covers_all_classes() {
        let classes: std::collections::BTreeSet<&str> = (0..200)
            .flat_map(|i| FaultPlan::randomized(5, 1, i, 10, 80).faults)
            .map(|f| f.event.class())
            .collect();
        assert!(classes.len() >= 6, "family too narrow: {classes:?}");
    }
}
