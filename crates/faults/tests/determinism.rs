//! Fault campaigns must be a pure function of `(flow, cases, chunk, seed,
//! percent)`: the worker count changes wall-clock only, never a record,
//! a verdict, or the matrix fingerprint.

use faults::{run_fault_campaign, FaultCampaignSpec};
use sctc_temporal::Verdict;
use testkit::Checker;

#[test]
fn derived_fault_campaign_is_jobs_independent() {
    let spec = FaultCampaignSpec::derived(120, 20080310)
        .with_chunk(10)
        .with_fault_percent(40);
    let serial = run_fault_campaign(&spec.clone().with_jobs(1));
    let parallel = run_fault_campaign(&spec.with_jobs(6));
    assert_eq!(serial.jobs, 1);
    assert_eq!(parallel.jobs, 6);
    assert_eq!(serial.matrix.canonical(), parallel.matrix.canonical());
    assert_eq!(serial.matrix.fingerprint(), parallel.matrix.fingerprint());
    assert!(
        !serial.matrix.records.is_empty(),
        "a 40% fault campaign must schedule faults"
    );
    assert!(
        serial.matrix.test_cases >= 120,
        "recovery cases come on top"
    );
}

#[test]
fn micro_fault_campaign_is_jobs_independent() {
    let spec = FaultCampaignSpec::micro(8, 7)
        .with_chunk(3)
        .with_fault_percent(60);
    let serial = run_fault_campaign(&spec.clone().with_jobs(1));
    let parallel = run_fault_campaign(&spec.with_jobs(2));
    assert_eq!(serial.matrix.canonical(), parallel.matrix.canonical());
    assert_eq!(serial.matrix.fingerprint(), parallel.matrix.fingerprint());
}

#[test]
fn prop_fault_matrix_is_pure_in_plan_seed_and_chunk() {
    Checker::new("fault_campaign_jobs_independence")
        .cases(5)
        .run(
            |src| {
                (
                    src.u64_in(8, 32),
                    src.u64_in(3, 12),
                    src.u64_in(0, u64::MAX),
                    src.u64_in(2, 6),
                    src.u64_in(20, 70),
                )
            },
            |&(cases, chunk, seed, jobs, percent)| {
                let spec = FaultCampaignSpec::derived(cases, seed)
                    .with_chunk(chunk)
                    .with_fault_percent(percent as u32);
                let serial = run_fault_campaign(&spec.clone().with_jobs(1));
                let parallel = run_fault_campaign(&spec.with_jobs(jobs as usize));
                assert_eq!(serial.matrix.canonical(), parallel.matrix.canonical());
                assert_eq!(serial.matrix.fingerprint(), parallel.matrix.fingerprint());
            },
        );
}

#[test]
fn healthy_esw_never_serves_a_torn_write_under_the_fault_campaign() {
    let report = run_fault_campaign(
        &FaultCampaignSpec::derived(200, 11)
            .with_chunk(25)
            .with_jobs(4),
    );
    // `G intact` can never finitely validate, but it must not be violated:
    // the healthy torn-write discipline never serves the erased marker.
    assert_ne!(report.matrix.verdict_of("intact"), Some(Verdict::False));
    // Every fired power loss went through the full recovery protocol.
    for r in report
        .matrix
        .records
        .iter()
        .filter(|r| r.class == "power-loss" && r.fired)
    {
        assert!(r.recovered.is_some(), "unfinalised recovery: {r:?}");
        assert!(r.recovery_ops >= 2, "recovery ran startup: {r:?}");
    }
}

#[test]
fn all_three_engines_detect_the_same_faults() {
    // The matrix fingerprint hashes every fault consequence and verdict;
    // it must not depend on the monitoring engine, only the work counters
    // (outside the fingerprint) may differ. Lazy progression monitors the
    // same fault-perturbed traces as both table engines, so it must agree
    // record for record too.
    let spec = FaultCampaignSpec::derived(60, 20080310)
        .with_chunk(10)
        .with_fault_percent(40)
        .with_jobs(4);
    let driven = run_fault_campaign(&spec);
    let naive = run_fault_campaign(
        &spec
            .clone()
            .with_engine(sctc_core::EngineKind::Naive)
            .with_jobs(1),
    );
    let lazy = run_fault_campaign(
        &spec
            .clone()
            .with_engine(sctc_core::EngineKind::Lazy)
            .with_jobs(2),
    );
    assert_eq!(driven.matrix.canonical(), naive.matrix.canonical());
    assert_eq!(driven.matrix.fingerprint(), naive.matrix.fingerprint());
    assert_eq!(driven.matrix.canonical(), lazy.matrix.canonical());
    assert_eq!(driven.matrix.fingerprint(), lazy.matrix.fingerprint());
    assert_eq!(
        naive.matrix.monitoring.atoms_evaluated,
        naive.matrix.monitoring.atoms_total
    );
    assert!(
        driven.matrix.monitoring.atoms_evaluated < driven.matrix.monitoring.atoms_total,
        "change-driven sampling must skip clean atoms: {:?}",
        driven.matrix.monitoring
    );
}

#[test]
fn lazy_engine_grades_the_torn_write_scenario_like_the_table_engine() {
    // The scripted power cut under the torn mutant is the sharpest
    // engine-coverage probe: `G intact` must flip to `False` at the same
    // point regardless of engine, and the healthy ESW must stay clean.
    use faults::scenario::{
        healthy_ir, run_scenario_observed, torn_write_ir, ScenarioObs,
    };
    use sctc_campaign::FlowKind;
    use sctc_core::EngineKind;

    for engine in [EngineKind::Table, EngineKind::Naive, EngineKind::Lazy] {
        let obs = ScenarioObs {
            engine,
            ..ScenarioObs::default()
        };
        let (torn, _) =
            run_scenario_observed(FlowKind::Derived, torn_write_ir(), 5_000, obs);
        assert_eq!(
            torn.verdict_of("intact"),
            Verdict::False,
            "{engine:?} must catch the torn write"
        );
        let (healthy, _) =
            run_scenario_observed(FlowKind::Derived, healthy_ir(), 5_000, obs);
        assert_ne!(
            healthy.verdict_of("intact"),
            Verdict::False,
            "{engine:?} must not flag the healthy ESW"
        );
    }
}
