//! Property-based validation of the CDCL solver against brute force, and of
//! the bit-vector circuits against native arithmetic.

use checkers::cnf::CnfBuilder;
use checkers::sat::{Lit, SatResult, Solver, Var};
use testkit::{Checker, Source};

const NVARS: usize = 8;

/// A clause as signed integers: ±(1..=NVARS), 1–3 literals.
fn gen_clause(src: &mut Source<'_>) -> Vec<i32> {
    let len = src.usize_in(1, 3);
    (0..len)
        .map(|_| {
            let v = src.i32_in(1, NVARS as i32);
            if src.bool() {
                v
            } else {
                -v
            }
        })
        .collect()
}

/// A CNF of 1–23 clauses.
fn gen_cnf(src: &mut Source<'_>) -> Vec<Vec<i32>> {
    let n = src.usize_in(1, 23);
    (0..n).map(|_| gen_clause(src)).collect()
}

fn brute_force_sat(clauses: &[Vec<i32>]) -> bool {
    for assignment in 0u32..(1 << NVARS) {
        let val = |lit: i32| -> bool {
            let bit = assignment >> (lit.unsigned_abs() - 1) & 1 == 1;
            if lit > 0 {
                bit
            } else {
                !bit
            }
        };
        if clauses.iter().all(|c| c.iter().any(|&l| val(l))) {
            return true;
        }
    }
    false
}

#[test]
fn solver_matches_brute_force() {
    Checker::new("solver_matches_brute_force")
        .cases(300)
        .run(gen_cnf, |clauses| {
            let mut solver = Solver::new();
            let vars: Vec<Var> = (0..NVARS).map(|_| solver.new_var()).collect();
            for clause in clauses {
                let lits: Vec<Lit> = clause
                    .iter()
                    .map(|&l| {
                        let v = vars[(l.unsigned_abs() - 1) as usize];
                        if l > 0 {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        }
                    })
                    .collect();
                solver.add_clause(&lits);
            }
            let expected = brute_force_sat(clauses);
            match solver.solve(1_000_000) {
                SatResult::Sat(model) => {
                    assert!(expected, "solver found a model where none exists");
                    // The model must actually satisfy every clause.
                    for clause in clauses {
                        let ok = clause.iter().any(|&l| {
                            let value = model[(l.unsigned_abs() - 1) as usize];
                            if l > 0 {
                                value
                            } else {
                                !value
                            }
                        });
                        assert!(ok, "model violates clause {clause:?}");
                    }
                }
                SatResult::Unsat => {
                    assert!(!expected, "solver claimed unsat on a sat formula");
                }
                SatResult::Unknown => panic!("budget must suffice for 8 variables"),
            }
        });
}

#[test]
fn bitvector_arithmetic_matches_native() {
    Checker::new("bitvector_arithmetic_matches_native")
        .cases(256)
        .run(
            |src| (src.u32_in(0, u32::MAX), src.u32_in(0, u32::MAX)),
            |&(a, b)| {
                let mut c = CnfBuilder::new();
                let av = c.bv_const(a);
                let bv = c.bv_const(b);
                let checks: Vec<(String, _, u32)> = vec![
                    ("add".to_owned(), c.bv_add(&av, &bv), a.wrapping_add(b)),
                    ("sub".to_owned(), c.bv_sub(&av, &bv), a.wrapping_sub(b)),
                    ("mul".to_owned(), c.bv_mul(&av, &bv), a.wrapping_mul(b)),
                    ("and".to_owned(), c.bv_and(&av, &bv), a & b),
                    ("or".to_owned(), c.bv_or(&av, &bv), a | b),
                    ("xor".to_owned(), c.bv_xor(&av, &bv), a ^ b),
                    (
                        "shl".to_owned(),
                        {
                            let amt = c.bv_const(b & 31);
                            c.bv_shl(&av, &amt)
                        },
                        a.wrapping_shl(b & 31),
                    ),
                    (
                        "sra".to_owned(),
                        {
                            let amt = c.bv_const(b & 31);
                            c.bv_sra(&av, &amt)
                        },
                        (a as i32).wrapping_shr(b & 31) as u32,
                    ),
                ];
                for (name, out, expect) in &checks {
                    let want = c.bv_const(*expect);
                    let eq = c.bv_eq(out, &want);
                    c.assert_lit(eq);
                    let _ = name;
                }
                // Comparison lits.
                let ult = c.bv_ult(&av, &bv);
                let slt = c.bv_slt(&av, &bv);
                let expect_ult = c.const_lit(a < b);
                let expect_slt = c.const_lit((a as i32) < (b as i32));
                let ok1 = c.iff(ult, expect_ult);
                let ok2 = c.iff(slt, expect_slt);
                c.assert_lit(ok1);
                c.assert_lit(ok2);
                assert!(
                    c.solve(1_000_000).is_sat(),
                    "constant circuit must be satisfiable"
                );
            },
        );
}
