//! A CDCL SAT solver.
//!
//! Conflict-driven clause learning with two-watched-literal propagation,
//! VSIDS-style activity decision heuristic, phase saving, first-UIP conflict
//! analysis and geometric restarts. Deliberately compact; the bounded model
//! checker is its only demanding client.

use std::fmt;

/// A propositional variable (0-based).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

/// A literal: variable plus polarity.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for negated literals.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "-{}", self.var().0 + 1)
        } else {
            write!(f, "{}", self.var().0 + 1)
        }
    }
}

/// Outcome of a solve call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// Satisfiable; the model assigns every variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// The conflict budget ran out before a decision was reached.
    Unknown,
}

impl SatResult {
    /// Returns `true` for [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Value {
    True,
    False,
    Unassigned,
}

/// Solver statistics.
#[derive(Copy, Clone, Debug, Default)]
pub struct SolverStats {
    /// Decisions taken.
    pub decisions: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned.
    pub learned: u64,
}

/// The solver.
///
/// # Examples
///
/// ```
/// use checkers::sat::{Lit, SatResult, Solver, Var};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(&[Lit::neg(a)]);
/// match s.solve(u64::MAX) {
///     SatResult::Sat(model) => assert!(model[b.0 as usize]),
///     other => panic!("expected sat, got {other:?}"),
/// }
/// ```
pub struct Solver {
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<u32>>, // per literal: clause indices watching it
    values: Vec<Value>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    act_inc: f64,
    unsat: bool,
    stats: SolverStats,
    seen: Vec<bool>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            values: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            act_inc: 1.0,
            unsat: false,
            stats: SolverStats::default(),
            seen: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.values.len() as u32);
        self.values.push(Value::Unassigned);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    fn value_of(&self, lit: Lit) -> Value {
        match self.values[lit.var().0 as usize] {
            Value::Unassigned => Value::Unassigned,
            Value::True => {
                if lit.is_neg() {
                    Value::False
                } else {
                    Value::True
                }
            }
            Value::False => {
                if lit.is_neg() {
                    Value::True
                } else {
                    Value::False
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Duplicate literals are merged; tautologies ignored.
    ///
    /// # Panics
    ///
    /// Panics if called after solving started a non-root decision level
    /// (incremental solving under assumptions is not supported) or if a
    /// literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        assert_eq!(self.decision_level(), 0, "clauses must be added at root");
        if self.unsat {
            return;
        }
        let mut clause: Vec<Lit> = lits.to_vec();
        clause.sort_unstable();
        clause.dedup();
        for &l in &clause {
            assert!(
                (l.var().0 as usize) < self.num_vars(),
                "literal references unallocated variable"
            );
        }
        // Tautology?
        if clause.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        // Remove literals already false at root; satisfied at root → drop.
        let mut reduced = Vec::with_capacity(clause.len());
        for &l in &clause {
            match self.value_of(l) {
                Value::True => return,
                Value::False => {}
                Value::Unassigned => reduced.push(l),
            }
        }
        match reduced.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(reduced[0], None) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[reduced[0].index()].push(idx);
                self.watches[reduced[1].index()].push(idx);
                self.clauses.push(reduced);
            }
        }
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<u32>) -> bool {
        match self.value_of(lit) {
            Value::False => false,
            Value::True => true,
            Value::Unassigned => {
                let v = lit.var().0 as usize;
                self.values[v] = if lit.is_neg() {
                    Value::False
                } else {
                    Value::True
                };
                self.phase[v] = !lit.is_neg();
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause index if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.prop_head < self.trail.len() {
            let lit = self.trail[self.prop_head];
            self.prop_head += 1;
            self.stats.propagations += 1;
            let falsified = lit.negate();
            let mut watch_list = std::mem::take(&mut self.watches[falsified.index()]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                // Ensure the falsified literal is at position 1.
                {
                    let clause = &mut self.clauses[ci as usize];
                    if clause[0] == falsified {
                        clause.swap(0, 1);
                    }
                    debug_assert_eq!(clause[1], falsified);
                }
                let first = self.clauses[ci as usize][0];
                if self.value_of(first) == Value::True {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut moved = false;
                let clause_len = self.clauses[ci as usize].len();
                for k in 2..clause_len {
                    let candidate = self.clauses[ci as usize][k];
                    if self.value_of(candidate) != Value::False {
                        self.clauses[ci as usize].swap(1, k);
                        self.watches[candidate.index()].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict.
                if !self.enqueue(first, Some(ci)) {
                    // Conflict: restore remaining watches.
                    self.watches[falsified.index()].append(&mut watch_list);
                    self.prop_head = self.trail.len();
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[falsified.index()].extend(watch_list);
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.0 as usize] += self.act_inc;
        if self.activity[v.0 as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis; returns (learned clause, backtrack level).
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learned = vec![Lit(0)]; // slot 0 reserved for the UIP
        let mut counter = 0u32;
        let mut clause_idx = conflict;
        let mut trail_pos = self.trail.len();
        let mut uip = None;
        let current = self.decision_level();

        loop {
            let clause = self.clauses[clause_idx as usize].clone();
            // Skip the asserting literal on continuation rounds (position 0
            // holds the literal we resolved on).
            let start = if uip.is_none() { 0 } else { 1 };
            for &q in &clause[start..] {
                let v = q.var();
                if !self.seen[v.0 as usize] && self.level[v.0 as usize] > 0 {
                    self.seen[v.0 as usize] = true;
                    self.bump(v);
                    if self.level[v.0 as usize] == current {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Pick the next literal from the trail to resolve on.
            loop {
                trail_pos -= 1;
                let lit = self.trail[trail_pos];
                if self.seen[lit.var().0 as usize] {
                    uip = Some(lit);
                    break;
                }
            }
            let lit = uip.expect("trail contains a seen literal");
            counter -= 1;
            self.seen[lit.var().0 as usize] = false;
            if counter == 0 {
                learned[0] = lit.negate();
                break;
            }
            clause_idx =
                self.reason[lit.var().0 as usize].expect("non-decision literals have reasons");
            // Put the resolved literal at position 0 of the borrowed copy
            // convention: our reasons store the implied literal first.
        }
        for &l in &learned[1..] {
            self.seen[l.var().0 as usize] = false;
        }
        // Backtrack level: second-highest level in the clause.
        let mut bt = 0;
        let mut second_pos = 1;
        for (i, &l) in learned.iter().enumerate().skip(1) {
            let lv = self.level[l.var().0 as usize];
            if lv > bt {
                bt = lv;
                second_pos = i;
            }
        }
        if learned.len() > 1 {
            learned.swap(1, second_pos);
        }
        (learned, bt)
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("levels match trail limits");
            while self.trail.len() > lim {
                let lit = self.trail.pop().expect("trail non-empty above limit");
                let v = lit.var().0 as usize;
                self.values[v] = Value::Unassigned;
                self.reason[v] = None;
            }
        }
        self.prop_head = self.trail.len().min(self.prop_head);
        self.prop_head = self.trail.len();
    }

    fn decide(&mut self) -> bool {
        let mut best: Option<(f64, usize)> = None;
        for (v, &val) in self.values.iter().enumerate() {
            if val == Value::Unassigned {
                let act = self.activity[v];
                if best.is_none_or(|(b, _)| act > b) {
                    best = Some((act, v));
                }
            }
        }
        match best {
            None => false,
            Some((_, v)) => {
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let lit = if self.phase[v] {
                    Lit::pos(Var(v as u32))
                } else {
                    Lit::neg(Var(v as u32))
                };
                let ok = self.enqueue(lit, None);
                debug_assert!(ok, "decision on unassigned variable");
                true
            }
        }
    }

    /// Solves with a conflict budget; [`SatResult::Unknown`] when exceeded.
    pub fn solve(&mut self, max_conflicts: u64) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        let mut restart_limit = 100u64;
        let mut conflicts_since_restart = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.stats.conflicts > max_conflicts {
                    self.backtrack(0);
                    return SatResult::Unknown;
                }
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                let (learned, bt) = self.analyze(conflict);
                self.backtrack(bt);
                self.act_inc *= 1.0 / 0.95;
                if learned.len() == 1 {
                    let ok = self.enqueue(learned[0], None);
                    if !ok {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                } else {
                    let idx = self.clauses.len() as u32;
                    self.watches[learned[0].index()].push(idx);
                    self.watches[learned[1].index()].push(idx);
                    let asserting = learned[0];
                    self.clauses.push(learned);
                    self.stats.learned += 1;
                    let ok = self.enqueue(asserting, Some(idx));
                    debug_assert!(ok, "asserting literal is unassigned after backtrack");
                }
            } else if conflicts_since_restart >= restart_limit {
                self.stats.restarts += 1;
                conflicts_since_restart = 0;
                restart_limit = restart_limit * 3 / 2;
                self.backtrack(0);
            } else if !self.decide() {
                let model = self.values.iter().map(|&v| v == Value::True).collect();
                self.backtrack(0);
                return SatResult::Sat(model);
            }
        }
    }
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("vars", &self.num_vars())
            .field("clauses", &self.num_clauses())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32, vars: &[Var]) -> Lit {
        if i > 0 {
            Lit::pos(vars[(i - 1) as usize])
        } else {
            Lit::neg(vars[(-i - 1) as usize])
        }
    }

    fn solve_clauses(n: usize, clauses: &[&[i32]]) -> SatResult {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        for c in clauses {
            let lits: Vec<Lit> = c.iter().map(|&i| lit(i, &vars)).collect();
            s.add_clause(&lits);
        }
        s.solve(1_000_000)
    }

    #[test]
    fn trivial_sat_and_unsat() {
        assert!(solve_clauses(1, &[&[1]]).is_sat());
        assert_eq!(solve_clauses(1, &[&[1], &[-1]]), SatResult::Unsat);
        assert_eq!(solve_clauses(0, &[&[]]), SatResult::Unsat);
    }

    #[test]
    fn models_satisfy_clauses() {
        let clauses: &[&[i32]] = &[&[1, 2], &[-1, 3], &[-2, -3], &[2, 3]];
        match solve_clauses(3, clauses) {
            SatResult::Sat(m) => {
                let val = |i: i32| {
                    if i > 0 {
                        m[(i - 1) as usize]
                    } else {
                        !m[(-i - 1) as usize]
                    }
                };
                for c in clauses {
                    assert!(c.iter().any(|&i| val(i)), "clause {c:?} unsatisfied");
                }
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_two_in_one_is_unsat() {
        // 2 pigeons, 1 hole: p1h1, p2h1, not both.
        assert_eq!(solve_clauses(2, &[&[1], &[2], &[-1, -2]]), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_php43_is_unsat() {
        // 4 pigeons, 3 holes; var (p,h) = p*3 + h + 1.
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..12).map(|_| s.new_var()).collect();
        let v = |p: usize, h: usize| Lit::pos(vars[p * 3 + h]);
        // Every pigeon in some hole.
        for p in 0..4 {
            s.add_clause(&[v(p, 0), v(p, 1), v(p, 2)]);
        }
        // No two pigeons share a hole.
        for h in 0..3 {
            for p1 in 0..4 {
                for p2 in (p1 + 1)..4 {
                    s.add_clause(&[v(p1, h).negate(), v(p2, h).negate()]);
                }
            }
        }
        assert_eq!(s.solve(1_000_000), SatResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn unknown_on_tiny_budget() {
        // A moderately hard instance with budget 0 conflicts.
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..20).map(|_| s.new_var()).collect();
        // Random-ish xor-like chains to force conflicts.
        for w in vars.windows(3) {
            s.add_clause(&[Lit::pos(w[0]), Lit::pos(w[1]), Lit::pos(w[2])]);
            s.add_clause(&[Lit::neg(w[0]), Lit::neg(w[1]), Lit::pos(w[2])]);
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1]), Lit::neg(w[2])]);
            s.add_clause(&[Lit::pos(w[0]), Lit::neg(w[1]), Lit::neg(w[2])]);
        }
        s.add_clause(&[Lit::pos(vars[0])]);
        s.add_clause(&[Lit::neg(vars[19])]);
        match s.solve(0) {
            SatResult::Unknown | SatResult::Unsat | SatResult::Sat(_) => {}
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_handled() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(a)]);
        s.add_clause(&[Lit::pos(a), Lit::neg(a)]); // tautology: ignored
        assert!(s.solve(1000).is_sat());
    }

    #[test]
    fn chained_implications_propagate() {
        // x1 ∧ (x1→x2) ∧ ... ∧ (x9→x10) ∧ ¬x10 is unsat.
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..10).map(|_| s.new_var()).collect();
        s.add_clause(&[Lit::pos(vars[0])]);
        for w in vars.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        s.add_clause(&[Lit::neg(vars[9])]);
        assert_eq!(s.solve(1000), SatResult::Unsat);
    }

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var(5);
        assert_eq!(Lit::pos(v).var(), v);
        assert!(!Lit::pos(v).is_neg());
        assert!(Lit::pos(v).negate().is_neg());
        assert_eq!(Lit::pos(v).negate().negate(), Lit::pos(v));
        assert_eq!(Lit::neg(v).to_string(), "-6");
    }
}
