//! Abstraction-based software checking in the BLAST mould.
//!
//! An abstract-check engine over the mini-C IR: the abstraction tracks
//! intervals for every variable, refined by branch guards (the same role
//! guard predicates play in predicate abstraction); the check asks whether a
//! forbidden value of the observed global is reachable; an abstractly
//! reachable error is confirmed concretely by replaying the program through
//! the interpreter over the (small) constrained input space.
//!
//! Faithful to the paper's experience with BLAST, the engine's **prover**
//! has a hard fragment boundary and a documented integer weakness:
//!
//! * any value whose magnitude exceeds 2³⁰ − 1 raises
//!   [`ProverException`] ("BLAST faces an integer overflow problem, i.e.
//!   when the value of the variable exceeds (2³⁰ − 1) the tool could result
//!   in either a false positive or false negative" — we abort instead of
//!   silently mis-reasoning);
//! * raw memory accesses (`*(addr)`) and bit-level operators lie outside
//!   the fragment and raise [`ProverException`] — on the EEPROM-emulation
//!   software every data-flash access does exactly that, reproducing the
//!   aborts of the paper's Fig. 7.

use std::fmt;
use std::rc::Rc;
use std::time::{Duration, Instant};

use minic::ast::{BinOp, UnOp};
use minic::ir::{FuncId, IrExpr, IrFunction, IrProgram, IrStmt, Place, SeqId};
use minic::{ExecState, Interp, VirtualMemory};

/// The prover's integer limit: 2³⁰ − 1.
pub const PROVER_INT_LIMIT: i64 = (1 << 30) - 1;

/// An abort from the abstraction's decision procedure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProverException {
    /// Which construct or limit was hit.
    pub what: String,
}

impl fmt::Display for ProverException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prover exception: {}", self.what)
    }
}

impl std::error::Error for ProverException {}

/// Configuration of an abstraction run.
#[derive(Clone, Debug)]
pub struct PredAbsConfig {
    /// Call-inlining depth limit.
    pub inline_depth: u32,
    /// Loop iterations before widening.
    pub widen_after: u32,
    /// Wall-clock budget.
    pub wall_budget: Duration,
    /// Maximum concrete replays when confirming an abstract counterexample.
    pub max_replays: u64,
}

impl Default for PredAbsConfig {
    fn default() -> Self {
        PredAbsConfig {
            inline_depth: 64,
            widen_after: 8,
            wall_budget: Duration::from_secs(600),
            max_replays: 4096,
        }
    }
}

/// Result of an abstraction run.
#[derive(Clone, Debug)]
pub enum PredAbsOutcome {
    /// The observed global provably stays within the allowed set.
    Safe,
    /// A concrete counterexample was found by replay.
    Violated {
        /// Violating input assignment.
        inputs: Vec<(String, i32)>,
        /// Observed value.
        observed: i32,
    },
    /// The abstraction flags a potential error but no concrete replay
    /// confirmed it (possible false alarm of the abstraction).
    Inconclusive {
        /// Why the result is inconclusive.
        reason: String,
    },
    /// The prover aborted (fragment boundary or integer limit) —
    /// the paper's BLAST "Exception" entries.
    Exception(ProverException),
    /// The time budget ran out.
    ResourceOut {
        /// Time spent.
        elapsed: Duration,
    },
}

/// The spec shape shared with the BMC baseline.
pub use crate::bmc::SafetySpec;

/// A signed interval with the prover's 2³⁰ limit enforced on construction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct Interval {
    lo: i64,
    hi: i64,
}

const TOP: Interval = Interval {
    lo: -(PROVER_INT_LIMIT + 1),
    hi: PROVER_INT_LIMIT,
};

impl Interval {
    fn point(v: i64) -> Result<Interval, ProverException> {
        Interval { lo: v, hi: v }.checked()
    }

    fn new(lo: i64, hi: i64) -> Interval {
        Interval { lo, hi }
    }

    fn checked(self) -> Result<Interval, ProverException> {
        if self.lo.abs() > PROVER_INT_LIMIT + 1 || self.hi.abs() > PROVER_INT_LIMIT + 1 {
            Err(ProverException {
                what: format!(
                    "integer value beyond 2^30-1 (interval [{}, {}])",
                    self.lo, self.hi
                ),
            })
        } else {
            Ok(self)
        }
    }

    fn join(self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval::new(lo, hi))
        } else {
            None
        }
    }

    fn widen(self, newer: Interval) -> Interval {
        Interval::new(
            if newer.lo < self.lo { TOP.lo } else { self.lo },
            if newer.hi > self.hi { TOP.hi } else { self.hi },
        )
    }

    fn is_point(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    fn add(self, o: Interval) -> Result<Interval, ProverException> {
        Interval::new(self.lo + o.lo, self.hi + o.hi).checked()
    }

    fn sub(self, o: Interval) -> Result<Interval, ProverException> {
        Interval::new(self.lo - o.hi, self.hi - o.lo).checked()
    }

    fn mul(self, o: Interval) -> Result<Interval, ProverException> {
        let products = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        let lo = *products.iter().min().expect("non-empty");
        let hi = *products.iter().max().expect("non-empty");
        Interval::new(lo, hi).checked()
    }

    fn neg(self) -> Result<Interval, ProverException> {
        Interval::new(-self.hi, -self.lo).checked()
    }
}

/// Abstract environment: intervals for flattened globals plus frame locals.
#[derive(Clone, PartialEq, Debug)]
struct Env {
    globals: Vec<Interval>,
    locals: Vec<Interval>,
}

impl Env {
    fn join(&self, other: &Env) -> Env {
        Env {
            globals: self
                .globals
                .iter()
                .zip(&other.globals)
                .map(|(a, b)| a.join(*b))
                .collect(),
            locals: self
                .locals
                .iter()
                .zip(&other.locals)
                .map(|(a, b)| a.join(*b))
                .collect(),
        }
    }

    fn widen(&self, newer: &Env) -> Env {
        Env {
            globals: self
                .globals
                .iter()
                .zip(&newer.globals)
                .map(|(a, b)| a.widen(*b))
                .collect(),
            locals: self
                .locals
                .iter()
                .zip(&newer.locals)
                .map(|(a, b)| a.widen(*b))
                .collect(),
        }
    }
}

fn join_opt(a: Option<Env>, b: Option<Env>) -> Option<Env> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.join(&y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Flow result of abstractly executing a sequence.
struct Flow {
    /// Environment falling through the end.
    fall: Option<Env>,
    /// Environment at `return` points (ignored value — only reachability
    /// and global effects matter to the spec).
    ret: Option<Env>,
    /// Environment at `break` points.
    brk: Option<Env>,
    /// Environment at `continue` points.
    cont: Option<Env>,
}

struct Abs<'p> {
    prog: &'p IrProgram,
    global_base: Vec<usize>,
    config: PredAbsConfig,
    start: Instant,
    timed_out: bool,
}

/// Runs the abstraction-based check.
///
/// The outcome is never a silent wrong answer: every limitation surfaces as
/// [`PredAbsOutcome::Exception`], [`PredAbsOutcome::Inconclusive`] or
/// [`PredAbsOutcome::ResourceOut`].
pub fn check(prog: &IrProgram, spec: &SafetySpec, config: PredAbsConfig) -> PredAbsOutcome {
    let Some(main) = prog.main else {
        return PredAbsOutcome::Exception(ProverException {
            what: "program has no main".to_owned(),
        });
    };
    let mut global_base = Vec::new();
    let mut globals = Vec::new();
    for g in &prog.globals {
        global_base.push(globals.len());
        for &v in &g.init {
            match Interval::point(v as i64) {
                Ok(iv) => globals.push(iv),
                Err(e) => return PredAbsOutcome::Exception(e),
            }
        }
    }
    // Symbolic inputs as ranges.
    for (name, lo, hi) in &spec.inputs {
        let Some(gid) = prog.global_by_name(name) else {
            return PredAbsOutcome::Exception(ProverException {
                what: format!("unknown input global `{name}`"),
            });
        };
        match Interval::new(*lo as i64, *hi as i64).checked() {
            Ok(iv) => globals[global_base[gid.0 as usize]] = iv,
            Err(e) => return PredAbsOutcome::Exception(e),
        }
    }
    let mut abs = Abs {
        prog,
        global_base,
        config,
        start: Instant::now(),
        timed_out: false,
    };
    let env = Env {
        globals,
        locals: Vec::new(),
    };
    let end_env = match abs.exec_function(main, &[], env, 0) {
        Ok((env, _)) => env,
        Err(e) => return PredAbsOutcome::Exception(e),
    };
    if abs.timed_out {
        return PredAbsOutcome::ResourceOut {
            elapsed: abs.start.elapsed(),
        };
    }
    let Some(end_env) = end_env else {
        // main never terminates abstractly — nothing observable.
        return PredAbsOutcome::Safe;
    };
    let Some(gid) = prog.global_by_name(&spec.observed) else {
        return PredAbsOutcome::Exception(ProverException {
            what: format!("unknown observed global `{}`", spec.observed),
        });
    };
    let observed = end_env.globals[abs.global_base[gid.0 as usize]];
    // Safe iff every value of the interval is allowed.
    let width = observed.hi - observed.lo;
    if width <= 4096 {
        let all_allowed = (observed.lo..=observed.hi).all(|v| spec.allowed.contains(&(v as i32)));
        if all_allowed {
            return PredAbsOutcome::Safe;
        }
    }
    // Abstract alarm: confirm concretely by replaying the constrained
    // input space (the "check" part of abstract-check-refine; instead of
    // path-based refinement we use exhaustive replay of the finite input
    // box when it is small).
    confirm_by_replay(prog, spec, &abs.config)
}

fn confirm_by_replay(
    prog: &IrProgram,
    spec: &SafetySpec,
    config: &PredAbsConfig,
) -> PredAbsOutcome {
    let mut combos: u64 = 1;
    for (_, lo, hi) in &spec.inputs {
        let span = (*hi as i64 - *lo as i64 + 1).max(1) as u64;
        combos = combos.saturating_mul(span);
        if combos > config.max_replays {
            return PredAbsOutcome::Inconclusive {
                reason: format!(
                    "abstract alarm, input space of {combos}+ points too large to replay"
                ),
            };
        }
    }
    let ir = Rc::new(prog.clone());
    let mut assignment: Vec<i32> = spec.inputs.iter().map(|(_, lo, _)| *lo).collect();
    loop {
        // Replay this assignment.
        let mut interp = Interp::new(Rc::clone(&ir), Box::new(VirtualMemory::new()));
        for ((name, _, _), &v) in spec.inputs.iter().zip(&assignment) {
            interp.set_global_by_name(name, v);
        }
        if interp.start_main().is_ok() {
            match interp.run(10_000_000) {
                ExecState::Finished(_) => {
                    let observed = interp.global_by_name(&spec.observed);
                    if !spec.allowed.contains(&observed) {
                        let inputs = spec
                            .inputs
                            .iter()
                            .zip(&assignment)
                            .map(|((n, _, _), &v)| (n.clone(), v))
                            .collect();
                        return PredAbsOutcome::Violated { inputs, observed };
                    }
                }
                _ => {
                    return PredAbsOutcome::Inconclusive {
                        reason: "concrete replay did not terminate cleanly".to_owned(),
                    }
                }
            }
        }
        // Next assignment (odometer).
        let mut i = 0;
        loop {
            if i == assignment.len() {
                return PredAbsOutcome::Inconclusive {
                    reason: "abstract alarm not confirmed by any replay (abstraction too coarse)"
                        .to_owned(),
                };
            }
            if assignment[i] < spec.inputs[i].2 {
                assignment[i] += 1;
                break;
            }
            assignment[i] = spec.inputs[i].1;
            i += 1;
        }
    }
}

impl<'p> Abs<'p> {
    fn exec_function(
        &mut self,
        func: FuncId,
        args: &[Interval],
        mut env: Env,
        depth: u32,
    ) -> Result<(Option<Env>, Interval), ProverException> {
        if depth > self.config.inline_depth {
            return Err(ProverException {
                what: "recursion beyond the inlining depth".to_owned(),
            });
        }
        if self.start.elapsed() > self.config.wall_budget {
            self.timed_out = true;
            return Ok((Some(env), TOP));
        }
        let def = self.prog.func(func);
        let saved_locals =
            std::mem::replace(&mut env.locals, vec![Interval::point(0)?; def.locals.len()]);
        env.locals[..args.len()].copy_from_slice(args);
        let (flow, ret) = self.exec_seq(func, IrFunction::BODY, env, depth)?;
        // Falling off the end of a non-void function returns 0 (matching
        // the interpreter and the code generator).
        let ret = match (ret, flow.fall.is_some()) {
            (Some(r), true) => r.join(Interval::point(0)?),
            (Some(r), false) => r,
            (None, _) => Interval::point(0)?,
        };
        let mut out = join_opt(flow.fall, flow.ret);
        if let Some(e) = &mut out {
            e.locals = saved_locals;
        }
        Ok((out, ret))
    }

    /// Executes a sequence; returns the flow plus the join of all values
    /// returned inside it (`None` when no return is reachable).
    fn exec_seq(
        &mut self,
        func: FuncId,
        seq: SeqId,
        env: Env,
        depth: u32,
    ) -> Result<(Flow, Option<Interval>), ProverException> {
        let mut flow = Flow {
            fall: Some(env),
            ret: None,
            brk: None,
            cont: None,
        };
        let mut ret_val: Option<Interval> = None;
        let join_ret = |acc: &mut Option<Interval>, v: Interval| {
            *acc = Some(match *acc {
                Some(r) => r.join(v),
                None => v,
            });
        };
        let def = self.prog.func(func);
        for &sid in def.seq(seq).to_vec().iter() {
            let Some(env) = flow.fall.take() else { break };
            match def.stmt(sid).clone() {
                IrStmt::Assign { target, value, .. } => {
                    let mut env = env;
                    let v = self.eval(&value, &env)?;
                    self.store(&target, v, &mut env)?;
                    flow.fall = Some(env);
                }
                IrStmt::Call {
                    dst,
                    func: callee,
                    args,
                    ..
                } => {
                    let mut arg_vals = Vec::with_capacity(args.len());
                    for a in &args {
                        arg_vals.push(self.eval(a, &env)?);
                    }
                    let (after, ret) = self.exec_function(callee, &arg_vals, env, depth + 1)?;
                    match after {
                        Some(mut env) => {
                            if let Some(place) = dst {
                                self.store(&place, ret, &mut env)?;
                            }
                            flow.fall = Some(env);
                        }
                        None => flow.fall = None,
                    }
                }
                IrStmt::If {
                    cond,
                    then_seq,
                    else_seq,
                    ..
                } => {
                    let then_env = self.refine(&cond, env.clone(), true)?;
                    let else_env = self.refine(&cond, env, false)?;
                    let mut fall = None;
                    for (branch_env, branch_seq) in [(then_env, then_seq), (else_env, else_seq)] {
                        if let Some(benv) = branch_env {
                            let (bflow, bret) = self.exec_seq(func, branch_seq, benv, depth)?;
                            fall = join_opt(fall, bflow.fall);
                            flow.ret = join_opt(flow.ret.take(), bflow.ret);
                            flow.brk = join_opt(flow.brk.take(), bflow.brk);
                            flow.cont = join_opt(flow.cont.take(), bflow.cont);
                            if let Some(v) = bret {
                                join_ret(&mut ret_val, v);
                            }
                        }
                    }
                    flow.fall = fall;
                }
                IrStmt::While { cond, body_seq, .. } => {
                    let mut head = env;
                    let mut exits: Option<Env> = None;
                    let mut iteration = 0u32;
                    loop {
                        if self.start.elapsed() > self.config.wall_budget {
                            self.timed_out = true;
                            exits = join_opt(exits, Some(head.clone()));
                            break;
                        }
                        // Exit path.
                        if let Some(exit_env) = self.refine(&cond, head.clone(), false)? {
                            exits = join_opt(exits, Some(exit_env));
                        }
                        // Body path.
                        let Some(body_env) = self.refine(&cond, head.clone(), true)? else {
                            break;
                        };
                        let (bflow, bret) = self.exec_seq(func, body_seq, body_env, depth)?;
                        if let Some(v) = bret {
                            join_ret(&mut ret_val, v);
                        }
                        flow.ret = join_opt(flow.ret.take(), bflow.ret);
                        exits = join_opt(exits, bflow.brk);
                        let next = join_opt(bflow.fall, bflow.cont);
                        let Some(next) = next else { break };
                        let grown = head.join(&next);
                        iteration += 1;
                        let candidate = if iteration >= self.config.widen_after {
                            head.widen(&grown)
                        } else {
                            grown
                        };
                        if candidate == head {
                            break; // fixpoint
                        }
                        head = candidate;
                    }
                    flow.fall = exits;
                }
                IrStmt::Return { value, .. } => {
                    let v = match value {
                        Some(e) => self.eval(&e, &env)?,
                        None => Interval::point(0)?,
                    };
                    join_ret(&mut ret_val, v);
                    flow.ret = join_opt(flow.ret.take(), Some(env));
                }
                IrStmt::Break { .. } => {
                    flow.brk = join_opt(flow.brk.take(), Some(env));
                }
                IrStmt::Continue { .. } => {
                    flow.cont = join_opt(flow.cont.take(), Some(env));
                }
            }
        }
        Ok((flow, ret_val))
    }

    fn store(
        &mut self,
        place: &Place,
        value: Interval,
        env: &mut Env,
    ) -> Result<(), ProverException> {
        match place {
            Place::Local(id) => env.locals[id.0 as usize] = value,
            Place::Global(id) => {
                env.globals[self.global_base[id.0 as usize]] = value;
            }
            Place::GlobalElem(id, idx) => {
                let idx_iv = self.eval(idx, env)?;
                let base = self.global_base[id.0 as usize];
                let len = self.prog.global(*id).len;
                match idx_iv.is_point() {
                    Some(i) if i >= 0 && (i as usize) < len => {
                        env.globals[base + i as usize] = value;
                    }
                    _ => {
                        // Smear: any in-range element may change.
                        for i in 0..len {
                            env.globals[base + i] = env.globals[base + i].join(value);
                        }
                    }
                }
            }
            Place::Mem(_) => {
                return Err(ProverException {
                    what: "memory access `*(addr)` outside the prover fragment".to_owned(),
                })
            }
        }
        Ok(())
    }

    /// Refines `env` assuming `cond` evaluates to `polarity`; `None` when
    /// the branch is abstractly infeasible.
    fn refine(
        &mut self,
        cond: &IrExpr,
        mut env: Env,
        polarity: bool,
    ) -> Result<Option<Env>, ProverException> {
        // Constant feasibility first.
        let iv = self.eval(cond, &env)?;
        if let Some(v) = iv.is_point() {
            let truth = v != 0;
            return Ok((truth == polarity).then_some(env));
        }
        // Guard-predicate refinement for direct comparisons on variables.
        if let IrExpr::Binary(op, a, b) = cond {
            let op = if polarity {
                Some(*op)
            } else {
                match op {
                    BinOp::Lt => Some(BinOp::Ge),
                    BinOp::Le => Some(BinOp::Gt),
                    BinOp::Gt => Some(BinOp::Le),
                    BinOp::Ge => Some(BinOp::Lt),
                    BinOp::Eq => Some(BinOp::Ne),
                    BinOp::Ne => Some(BinOp::Eq),
                    _ => None,
                }
            };
            if let Some(op) = op {
                let av = self.eval(a, &env)?;
                let bv = self.eval(b, &env)?;
                let (a_new, b_new) = match op {
                    BinOp::Lt => (
                        av.meet(Interval::new(TOP.lo, bv.hi - 1)),
                        bv.meet(Interval::new(av.lo + 1, TOP.hi)),
                    ),
                    BinOp::Le => (
                        av.meet(Interval::new(TOP.lo, bv.hi)),
                        bv.meet(Interval::new(av.lo, TOP.hi)),
                    ),
                    BinOp::Gt => (
                        av.meet(Interval::new(bv.lo + 1, TOP.hi)),
                        bv.meet(Interval::new(TOP.lo, av.hi - 1)),
                    ),
                    BinOp::Ge => (
                        av.meet(Interval::new(bv.lo, TOP.hi)),
                        bv.meet(Interval::new(TOP.lo, av.hi)),
                    ),
                    BinOp::Eq => {
                        let m = av.meet(bv);
                        (m, m)
                    }
                    BinOp::Ne => {
                        // Only refine when one side is a point at an
                        // interval endpoint.
                        let a_new = match bv.is_point() {
                            Some(p) if p == av.lo => av.meet(Interval::new(av.lo + 1, TOP.hi)),
                            Some(p) if p == av.hi => av.meet(Interval::new(TOP.lo, av.hi - 1)),
                            _ => Some(av),
                        };
                        let b_new = match av.is_point() {
                            Some(p) if p == bv.lo => bv.meet(Interval::new(bv.lo + 1, TOP.hi)),
                            Some(p) if p == bv.hi => bv.meet(Interval::new(TOP.lo, bv.hi - 1)),
                            _ => Some(bv),
                        };
                        (a_new, b_new)
                    }
                    _ => (Some(av), Some(bv)),
                };
                let (Some(a_new), Some(b_new)) = (a_new, b_new) else {
                    return Ok(None);
                };
                self.assign_back(a, a_new, &mut env);
                self.assign_back(b, b_new, &mut env);
            }
        }
        Ok(Some(env))
    }

    /// Writes a refined interval back when the expression is a direct
    /// variable reference.
    fn assign_back(&self, e: &IrExpr, iv: Interval, env: &mut Env) {
        match e {
            IrExpr::Local(id) => env.locals[id.0 as usize] = iv,
            IrExpr::Global(id) => env.globals[self.global_base[id.0 as usize]] = iv,
            _ => {}
        }
    }

    fn eval(&mut self, e: &IrExpr, env: &Env) -> Result<Interval, ProverException> {
        Ok(match e {
            IrExpr::Const(v) => Interval::point(*v as i64)?,
            IrExpr::Local(id) => env.locals[id.0 as usize],
            IrExpr::Global(id) => env.globals[self.global_base[id.0 as usize]],
            IrExpr::GlobalElem(id, idx) => {
                let idx_iv = self.eval(idx, env)?;
                let base = self.global_base[id.0 as usize];
                let len = self.prog.global(*id).len;
                match idx_iv.is_point() {
                    Some(i) if i >= 0 && (i as usize) < len => env.globals[base + i as usize],
                    _ => {
                        let mut acc: Option<Interval> = None;
                        for i in 0..len {
                            let elem = env.globals[base + i];
                            acc = Some(match acc {
                                Some(a) => a.join(elem),
                                None => elem,
                            });
                        }
                        acc.unwrap_or(TOP)
                    }
                }
            }
            IrExpr::MemRead(_) => {
                return Err(ProverException {
                    what: "memory access `*(addr)` outside the prover fragment".to_owned(),
                })
            }
            IrExpr::Unary(op, inner) => {
                let v = self.eval(inner, env)?;
                match op {
                    UnOp::Neg => v.neg()?,
                    UnOp::Not => match v.is_point() {
                        Some(0) => Interval::point(1)?,
                        Some(_) => Interval::point(0)?,
                        None => Interval::new(0, 1),
                    },
                    UnOp::BitNot => {
                        return Err(ProverException {
                            what: "bitwise operator outside the prover fragment".to_owned(),
                        })
                    }
                }
            }
            IrExpr::Binary(op, a, b) => {
                let av = self.eval(a, env)?;
                let bv = self.eval(b, env)?;
                match op {
                    BinOp::Add => av.add(bv)?,
                    BinOp::Sub => av.sub(bv)?,
                    BinOp::Mul => av.mul(bv)?,
                    BinOp::Div | BinOp::Rem => {
                        return Err(ProverException {
                            what: "division outside the prover fragment".to_owned(),
                        })
                    }
                    BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr => {
                        return Err(ProverException {
                            what: "bitwise operator outside the prover fragment".to_owned(),
                        })
                    }
                    BinOp::Eq => eq_interval(av, bv, false),
                    BinOp::Ne => eq_interval(av, bv, true),
                    BinOp::Lt => lt_interval(av, bv),
                    BinOp::Le => le_interval(av, bv),
                    BinOp::Gt => lt_interval(bv, av),
                    BinOp::Ge => le_interval(bv, av),
                    BinOp::And => bool_interval(av, bv, |a, b| a && b),
                    BinOp::Or => bool_interval(av, bv, |a, b| a || b),
                }
            }
        })
    }
}

/// Abstract equality: decided when intervals are equal points or disjoint.
fn eq_interval(a: Interval, b: Interval, negate: bool) -> Interval {
    let verdict = if a.is_point().is_some() && a == b {
        Some(true)
    } else if a.meet(b).is_none() {
        Some(false)
    } else {
        None
    };
    match verdict {
        Some(v) => {
            let bit = i64::from(v != negate);
            Interval::new(bit, bit)
        }
        None => Interval::new(0, 1),
    }
}

/// Abstract `a < b`.
fn lt_interval(a: Interval, b: Interval) -> Interval {
    if a.hi < b.lo {
        Interval::new(1, 1)
    } else if a.lo >= b.hi {
        Interval::new(0, 0)
    } else {
        Interval::new(0, 1)
    }
}

/// Abstract `a <= b`.
fn le_interval(a: Interval, b: Interval) -> Interval {
    if a.hi <= b.lo {
        Interval::new(1, 1)
    } else if a.lo > b.hi {
        Interval::new(0, 0)
    } else {
        Interval::new(0, 1)
    }
}

fn bool_interval(a: Interval, b: Interval, op: fn(bool, bool) -> bool) -> Interval {
    match (a.is_point(), b.is_point()) {
        (Some(x), Some(y)) => {
            Interval::new(i64::from(op(x != 0, y != 0)), i64::from(op(x != 0, y != 0)))
        }
        _ => Interval::new(0, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::{lower, parse};

    fn run(src: &str, spec: SafetySpec) -> PredAbsOutcome {
        let ir = lower(&parse(src).expect("parse")).expect("typeck");
        check(&ir, &spec, PredAbsConfig::default())
    }

    #[test]
    fn proves_straight_line_program_safe() {
        let outcome = run(
            "int out = 0; int main() { out = 2 + 3; return out; }",
            SafetySpec {
                inputs: vec![],
                observed: "out".to_owned(),
                allowed: vec![5],
            },
        );
        assert!(matches!(outcome, PredAbsOutcome::Safe), "{outcome:?}");
    }

    #[test]
    fn proves_branchy_program_safe_with_guard_refinement() {
        let outcome = run(
            "int in = 0; int out = 0;
             int main() {
                 if (in < 5) { out = 1; } else { out = 2; }
                 return out;
             }",
            SafetySpec {
                inputs: vec![("in".to_owned(), 0, 10)],
                observed: "out".to_owned(),
                allowed: vec![1, 2],
            },
        );
        assert!(matches!(outcome, PredAbsOutcome::Safe), "{outcome:?}");
    }

    #[test]
    fn finds_concrete_violation_by_replay() {
        let outcome = run(
            "int in = 0; int out = 0;
             int main() {
                 if (in == 7) { out = 99; } else { out = 1; }
                 return out;
             }",
            SafetySpec {
                inputs: vec![("in".to_owned(), 0, 10)],
                observed: "out".to_owned(),
                allowed: vec![1],
            },
        );
        match outcome {
            PredAbsOutcome::Violated { inputs, observed } => {
                assert_eq!(inputs, vec![("in".to_owned(), 7)]);
                assert_eq!(observed, 99);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn loops_reach_fixpoint_with_widening() {
        let outcome = run(
            "int out = 0;
             int main() {
                 int i = 0;
                 while (i < 100) { i = i + 1; }
                 out = 1;
                 return out;
             }",
            SafetySpec {
                inputs: vec![],
                observed: "out".to_owned(),
                allowed: vec![1],
            },
        );
        assert!(matches!(outcome, PredAbsOutcome::Safe), "{outcome:?}");
    }

    #[test]
    fn memory_access_raises_prover_exception() {
        let outcome = run(
            "int out = 0; int main() { out = *(0x8000); return out; }",
            SafetySpec {
                inputs: vec![],
                observed: "out".to_owned(),
                allowed: vec![0],
            },
        );
        match outcome {
            PredAbsOutcome::Exception(e) => assert!(e.what.contains("memory access")),
            other => panic!("expected exception, got {other:?}"),
        }
    }

    #[test]
    fn bitwise_operator_raises_prover_exception() {
        let outcome = run(
            "int out = 0; int main() { out = 6 & 3; return out; }",
            SafetySpec {
                inputs: vec![],
                observed: "out".to_owned(),
                allowed: vec![2],
            },
        );
        assert!(
            matches!(outcome, PredAbsOutcome::Exception(_)),
            "{outcome:?}"
        );
    }

    #[test]
    fn overflow_beyond_2_30_raises_exception() {
        // 2^30 = 1073741824; the multiply exceeds the prover limit.
        let outcome = run(
            "int out = 0; int main() { out = 40000 * 40000; return out; }",
            SafetySpec {
                inputs: vec![],
                observed: "out".to_owned(),
                allowed: vec![1600000000],
            },
        );
        match outcome {
            PredAbsOutcome::Exception(e) => assert!(e.what.contains("2^30"), "{e}"),
            other => panic!("expected exception, got {other:?}"),
        }
    }

    #[test]
    fn function_calls_are_summarised_by_inlining() {
        let outcome = run(
            "int out = 0;
             int inc(int x) { return x + 1; }
             int main() { out = inc(inc(1)); return out; }",
            SafetySpec {
                inputs: vec![],
                observed: "out".to_owned(),
                allowed: vec![3],
            },
        );
        assert!(matches!(outcome, PredAbsOutcome::Safe), "{outcome:?}");
    }

    #[test]
    fn coarse_abstraction_is_reported_inconclusive_not_wrong() {
        // out = in * in is precise enough with intervals here; use a value
        // mix the interval domain cannot express: out ∈ {0, 2} but the
        // interval says [0, 2] which includes 1. Replay confirms no
        // violation → Inconclusive (never a false "Violated").
        let outcome = run(
            "int in = 0; int out = 0;
             int main() {
                 if (in == 0) { out = 0; } else { out = 2; }
                 return out;
             }",
            SafetySpec {
                inputs: vec![("in".to_owned(), 0, 1)],
                observed: "out".to_owned(),
                allowed: vec![0, 2],
            },
        );
        // Interval [0,2] ⊆ {0,2}? The subset check enumerates 0,1,2 → 1 is
        // not allowed → abstract alarm → replay finds no violation.
        match outcome {
            PredAbsOutcome::Safe | PredAbsOutcome::Inconclusive { .. } => {}
            other => panic!("must not report a false violation: {other:?}"),
        }
    }
}
