//! Bounded model checking of mini-C programs (the CBMC baseline).
//!
//! The checker symbolically executes the IR from `main` with **guarded
//! updates** (every assignment becomes an if-then-else on the path
//! condition), inlining calls and unwinding loops up to a bound — 20 by
//! default, the limit the paper used. Raw memory is modelled as a
//! write log with Ackermann-style initial reads; unconstrained device reads
//! are exactly why "all the input variables have to be constrained in order
//! to avoid false reasoning" (paper Section 4).
//!
//! Outcomes mirror a real BMC run: a **counterexample**, a **bounded proof**,
//! or a **resource-out** (unwinding never completes, the formula explodes,
//! or the SAT budget is exhausted) — the paper's `> unwind` entries.

use std::fmt;
use std::time::{Duration, Instant};

use minic::ast::{BinOp, UnOp};
use minic::ir::{FuncId, IrExpr, IrFunction, IrProgram, IrStmt, Place, SeqId};

use crate::cnf::{BitVec, CnfBuilder};
use crate::sat::{Lit, SatResult};

/// Configuration of a BMC run.
#[derive(Clone, Debug)]
pub struct BmcConfig {
    /// Loop unwinding bound (paper: 20).
    pub unwind: u32,
    /// Maximum call-inlining depth.
    pub inline_depth: u32,
    /// SAT conflict budget.
    pub max_conflicts: u64,
    /// Clause budget for the encoding.
    pub max_clauses: usize,
    /// Wall-clock budget.
    pub wall_budget: Duration,
}

impl Default for BmcConfig {
    fn default() -> Self {
        BmcConfig {
            unwind: 20,
            inline_depth: 64,
            max_conflicts: 2_000_000,
            max_clauses: 4_000_000,
            wall_budget: Duration::from_secs(600),
        }
    }
}

/// The safety specification checked against the program.
///
/// Selected globals are made symbolic inputs (constrained to ranges, like
/// the Spec-tool-generated harness of the paper); after `main` completes,
/// the observed global must hold one of the allowed values.
#[derive(Clone, Debug)]
pub struct SafetySpec {
    /// `(global name, lo, hi)` — symbolic inputs with signed range bounds.
    pub inputs: Vec<(String, i32, i32)>,
    /// The observed global.
    pub observed: String,
    /// Allowed values of the observed global at program end.
    pub allowed: Vec<i32>,
}

/// Result of a BMC run.
#[derive(Clone, Debug)]
pub enum BmcOutcome {
    /// A violating input assignment within the bound.
    Violated {
        /// Input global values of the counterexample.
        inputs: Vec<(String, i32)>,
        /// The observed value produced.
        observed: i32,
    },
    /// No violation within the unwinding bound.
    BoundedOk {
        /// Encoded clauses.
        clauses: usize,
        /// Encoded variables.
        vars: usize,
    },
    /// The run exceeded a resource limit before reaching a verdict.
    ResourceOut {
        /// What gave out (unwinding, clause budget, SAT budget, time).
        reason: String,
        /// Time spent.
        elapsed: Duration,
    },
}

impl BmcOutcome {
    /// `true` for [`BmcOutcome::ResourceOut`].
    pub fn is_resource_out(&self) -> bool {
        matches!(self, BmcOutcome::ResourceOut { .. })
    }
}

/// Hard errors: the program uses features the encoder does not support.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnsupportedError {
    /// Description of the unsupported construct.
    pub what: String,
}

impl fmt::Display for UnsupportedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BMC does not support {}", self.what)
    }
}

impl std::error::Error for UnsupportedError {}

enum Abort {
    Resource(String),
    Unsupported(String),
}

struct MemWrite {
    enable: Lit,
    addr: BitVec,
    data: BitVec,
}

struct Frame {
    locals: Vec<BitVec>,
    returned: Lit,
    ret_val: BitVec,
}

struct Exec<'p> {
    prog: &'p IrProgram,
    b: CnfBuilder,
    globals: Vec<BitVec>,
    global_base: Vec<usize>,
    mem_writes: Vec<MemWrite>,
    initial_reads: Vec<(BitVec, BitVec)>,
    /// One literal per loop that may still iterate past the bound
    /// (CBMC-style unwinding assertions, decided by the solver).
    unwind_lits: Vec<(FuncId, Lit)>,
    config: BmcConfig,
    start: Instant,
}

/// Runs bounded model checking of `spec` against `prog`.
///
/// # Errors
///
/// Returns [`UnsupportedError`] for division/remainder (no bit-level
/// encoding provided) and for recursion beyond the inline depth.
pub fn check(
    prog: &IrProgram,
    spec: &SafetySpec,
    config: BmcConfig,
) -> Result<BmcOutcome, UnsupportedError> {
    let start = Instant::now();
    let main = match prog.main {
        Some(m) => m,
        None => {
            return Err(UnsupportedError {
                what: "programs without a main function".to_owned(),
            })
        }
    };
    let mut b = CnfBuilder::new();
    // Concrete initial globals.
    let mut globals = Vec::new();
    let mut global_base = Vec::new();
    for g in &prog.globals {
        global_base.push(globals.len());
        for &v in &g.init {
            globals.push(b.bv_const(v as u32));
        }
    }
    let mut exec = Exec {
        prog,
        b,
        globals,
        global_base,
        mem_writes: Vec::new(),
        initial_reads: Vec::new(),
        unwind_lits: Vec::new(),
        config,
        start,
    };

    // Symbolic, range-constrained inputs.
    let mut input_bvs = Vec::new();
    for (name, lo, hi) in &spec.inputs {
        let gid = match prog.global_by_name(name) {
            Some(g) => g,
            None => {
                return Err(UnsupportedError {
                    what: format!("unknown input global `{name}`"),
                })
            }
        };
        // Point ranges become constants so dead branches fold away during
        // encoding (the paper's "inputs have to be constrained").
        let fresh = if lo == hi {
            exec.b.bv_const(*lo as u32)
        } else {
            let fresh = exec.b.bv_fresh();
            let lo_bv = exec.b.bv_const(*lo as u32);
            let hi_bv = exec.b.bv_const(*hi as u32);
            let below = exec.b.bv_slt(&fresh, &lo_bv);
            let above = exec.b.bv_slt(&hi_bv, &fresh);
            exec.b.assert_lit(below.negate());
            exec.b.assert_lit(above.negate());
            fresh
        };
        exec.globals[exec.global_base[gid.0 as usize]] = fresh.clone();
        input_bvs.push((name.clone(), fresh));
    }

    // Execute main.
    let guard = exec.b.tru();
    let run = exec.exec_function(main, Vec::new(), guard, 0);
    match run {
        Err(Abort::Unsupported(what)) => return Err(UnsupportedError { what }),
        Err(Abort::Resource(reason)) => {
            return Ok(BmcOutcome::ResourceOut {
                reason,
                elapsed: start.elapsed(),
            })
        }
        Ok(_) => {}
    }

    // Property: observed ∈ allowed at the end of main.
    let observed_gid = match prog.global_by_name(&spec.observed) {
        Some(g) => g,
        None => {
            return Err(UnsupportedError {
                what: format!("unknown observed global `{}`", spec.observed),
            })
        }
    };
    let observed = exec.globals[exec.global_base[observed_gid.0 as usize]].clone();
    let mut in_set = Vec::new();
    for &v in &spec.allowed {
        let c = exec.b.bv_const(v as u32);
        in_set.push(exec.b.bv_eq(&observed, &c));
    }
    let ok = exec.b.or_many(&in_set);
    let viol = ok.negate();
    // Search for either a property violation or a violated unwinding
    // assertion (a path on which some loop iterates past the bound).
    let unwind_lits: Vec<Lit> = exec.unwind_lits.iter().map(|&(_, l)| l).collect();
    let any_unwind = exec.b.or_many(&unwind_lits);
    let target = exec.b.or2(viol, any_unwind);
    exec.b.assert_lit(target);

    if exec.b.num_clauses() > exec.config.max_clauses {
        return Ok(BmcOutcome::ResourceOut {
            reason: format!("formula exploded to {} clauses", exec.b.num_clauses()),
            elapsed: start.elapsed(),
        });
    }

    let (clauses, vars) = (exec.b.num_clauses(), exec.b.num_vars());
    match exec.b.solve(exec.config.max_conflicts) {
        SatResult::Sat(model) => {
            // Which disjunct fired? An unwinding assertion dominates: past
            // the bound the encoding no longer reflects the program.
            let lit_true = |l: Lit| model[l.var().0 as usize] ^ l.is_neg();
            if let Some(&(func, _)) = exec.unwind_lits.iter().find(|&&(_, l)| lit_true(l)) {
                return Ok(BmcOutcome::ResourceOut {
                    reason: format!(
                        "unwinding assertion: loop in `{}` can iterate past {} unrollings",
                        prog.func(func).name,
                        exec.config.unwind
                    ),
                    elapsed: start.elapsed(),
                });
            }
            let inputs = input_bvs
                .iter()
                .map(|(n, bv)| (n.clone(), CnfBuilder::bv_value(&model, bv) as i32))
                .collect();
            let observed = CnfBuilder::bv_value(&model, &observed) as i32;
            Ok(BmcOutcome::Violated { inputs, observed })
        }
        SatResult::Unsat => Ok(BmcOutcome::BoundedOk { clauses, vars }),
        SatResult::Unknown => Ok(BmcOutcome::ResourceOut {
            reason: "SAT conflict budget exhausted".to_owned(),
            elapsed: start.elapsed(),
        }),
    }
}

impl<'p> Exec<'p> {
    fn check_budget(&self) -> Result<(), Abort> {
        if self.b.num_clauses() > self.config.max_clauses {
            return Err(Abort::Resource(format!(
                "formula exploded to {} clauses during encoding",
                self.b.num_clauses()
            )));
        }
        if self.start.elapsed() > self.config.wall_budget {
            return Err(Abort::Resource("wall-clock budget exhausted".to_owned()));
        }
        Ok(())
    }

    fn exec_function(
        &mut self,
        func: FuncId,
        args: Vec<BitVec>,
        guard: Lit,
        depth: u32,
    ) -> Result<BitVec, Abort> {
        if depth > self.config.inline_depth {
            return Err(Abort::Unsupported(format!(
                "recursion deeper than {} in `{}`",
                self.config.inline_depth,
                self.prog.func(func).name
            )));
        }
        self.check_budget()?;
        let def = self.prog.func(func);
        let zero = self.b.bv_const(0);
        let mut frame = Frame {
            locals: (0..def.locals.len()).map(|_| zero.clone()).collect(),
            returned: self.b.fls(),
            ret_val: zero,
        };
        for (i, a) in args.into_iter().enumerate() {
            frame.locals[i] = a;
        }
        self.exec_seq(
            func,
            IrFunction::BODY,
            &mut frame,
            guard,
            depth,
            &mut Vec::new(),
        )?;
        Ok(frame.ret_val)
    }

    /// Executes a sequence. `loops` holds (broke, continued) flags of the
    /// enclosing loops, innermost last.
    #[allow(clippy::too_many_arguments)]
    fn exec_seq(
        &mut self,
        func: FuncId,
        seq: SeqId,
        frame: &mut Frame,
        guard: Lit,
        depth: u32,
        loops: &mut Vec<(Lit, Lit)>,
    ) -> Result<(), Abort> {
        let def = self.prog.func(func);
        let stmt_ids: Vec<_> = def.seq(seq).to_vec();
        let mut live = guard;
        for sid in stmt_ids {
            self.check_budget()?;
            // Dead paths need no encoding at all.
            if live == self.b.fls() {
                break;
            }
            let stmt = self.prog.func(func).stmt(sid).clone();
            match stmt {
                IrStmt::Assign { target, value, .. } => {
                    let v = self.eval(&value, frame)?;
                    self.store(&target, v, frame, live)?;
                }
                IrStmt::Call {
                    dst,
                    func: callee,
                    args,
                    ..
                } => {
                    let mut arg_vals = Vec::with_capacity(args.len());
                    for a in &args {
                        arg_vals.push(self.eval(a, frame)?);
                    }
                    let ret = self.exec_function(callee, arg_vals, live, depth + 1)?;
                    if let Some(place) = dst {
                        self.store(&place, ret, frame, live)?;
                    }
                }
                IrStmt::If {
                    cond,
                    then_seq,
                    else_seq,
                    ..
                } => {
                    let c = self.eval_bool(&cond, frame)?;
                    let then_guard = self.b.and2(live, c);
                    let else_guard = self.b.and2(live, c.negate());
                    self.exec_seq(func, then_seq, frame, then_guard, depth, loops)?;
                    self.exec_seq(func, else_seq, frame, else_guard, depth, loops)?;
                }
                IrStmt::While { cond, body_seq, .. } => {
                    let mut broke = self.b.fls();
                    for _ in 0..self.config.unwind {
                        let c = self.eval_bool(&cond, frame)?;
                        let nb = broke.negate();
                        let nr = frame.returned.negate();
                        let alive_parts = [live, c, nb, nr];
                        let iter_guard = self.b.and_many(&alive_parts);
                        if iter_guard == self.b.fls() {
                            break;
                        }
                        let cont = self.b.fls();
                        loops.push((broke, cont));
                        self.exec_seq(func, body_seq, frame, iter_guard, depth, loops)?;
                        let (new_broke, _cont) = loops.pop().expect("loop stack balanced");
                        broke = new_broke;
                    }
                    // Unwinding assertion: can the loop still iterate? The
                    // solver decides at the end; trivially-false literals
                    // are dropped here.
                    let c = self.eval_bool(&cond, frame)?;
                    let nb = broke.negate();
                    let nr = frame.returned.negate();
                    let still = self.b.and_many(&[live, c, nb, nr]);
                    if still != self.b.fls() {
                        self.unwind_lits.push((func, still));
                    }
                }
                IrStmt::Return { value, .. } => {
                    if let Some(e) = value {
                        let v = self.eval(&e, frame)?;
                        frame.ret_val = self.b.bv_ite(live, &v, &frame.ret_val.clone());
                    }
                    frame.returned = self.b.or2(frame.returned, live);
                }
                IrStmt::Break { .. } => {
                    let (broke, _) = loops.last_mut().expect("break inside loop");
                    *broke = self.b.or2(*broke, live);
                }
                IrStmt::Continue { .. } => {
                    let (_, cont) = loops.last_mut().expect("continue inside loop");
                    *cont = self.b.or2(*cont, live);
                }
            }
            // Recompute liveness after control-flow effects.
            live = self.b.and2(live, frame.returned.negate());
            if let Some(&(broke, cont)) = loops.last() {
                let nb = broke.negate();
                let nc = cont.negate();
                live = self.b.and2(live, nb);
                live = self.b.and2(live, nc);
            }
        }
        Ok(())
    }

    fn store(
        &mut self,
        place: &Place,
        value: BitVec,
        frame: &mut Frame,
        guard: Lit,
    ) -> Result<(), Abort> {
        match place {
            Place::Local(id) => {
                let old = frame.locals[id.0 as usize].clone();
                frame.locals[id.0 as usize] = self.b.bv_ite(guard, &value, &old);
            }
            Place::Global(id) => {
                let slot = self.global_base[id.0 as usize];
                let old = self.globals[slot].clone();
                self.globals[slot] = self.b.bv_ite(guard, &value, &old);
            }
            Place::GlobalElem(id, idx) => {
                let idx_bv = self.eval(idx, frame)?;
                let base = self.global_base[id.0 as usize];
                let len = self.prog.global(*id).len;
                for i in 0..len {
                    let i_bv = self.b.bv_const(i as u32);
                    let here = self.b.bv_eq(&idx_bv, &i_bv);
                    let g = self.b.and2(guard, here);
                    let old = self.globals[base + i].clone();
                    self.globals[base + i] = self.b.bv_ite(g, &value, &old);
                }
            }
            Place::Mem(addr) => {
                let a = self.eval(addr, frame)?;
                self.mem_writes.push(MemWrite {
                    enable: guard,
                    addr: a,
                    data: value,
                });
            }
        }
        Ok(())
    }

    fn mem_read(&mut self, addr: BitVec) -> BitVec {
        // Newest write wins; fall back to a consistent initial memory
        // (Ackermann expansion over previous initial reads), then to a
        // fresh unconstrained word — a device read can return anything.
        let fresh = self.b.bv_fresh();
        let mut result = fresh.clone();
        let initial = self.initial_reads.clone();
        for (r_addr, r_val) in initial.iter().rev() {
            let same = self.b.bv_eq(&addr, r_addr);
            result = self.b.bv_ite(same, r_val, &result);
        }
        self.initial_reads.push((addr.clone(), fresh));
        let writes: Vec<(Lit, BitVec, BitVec)> = self
            .mem_writes
            .iter()
            .map(|w| (w.enable, w.addr.clone(), w.data.clone()))
            .collect();
        for (enable, w_addr, w_data) in writes.iter() {
            let same = self.b.bv_eq(&addr, w_addr);
            let hit = self.b.and2(*enable, same);
            result = self.b.bv_ite(hit, w_data, &result);
        }
        result
    }

    fn eval_bool(&mut self, e: &IrExpr, frame: &Frame) -> Result<Lit, Abort> {
        let bv = self.eval(e, frame)?;
        Ok(self.b.bv_nonzero(&bv))
    }

    fn bv_from_lit(&mut self, l: Lit) -> BitVec {
        let mut bv = vec![self.b.fls(); crate::cnf::WIDTH];
        bv[0] = l;
        bv
    }

    fn eval(&mut self, e: &IrExpr, frame: &Frame) -> Result<BitVec, Abort> {
        Ok(match e {
            IrExpr::Const(v) => self.b.bv_const(*v as u32),
            IrExpr::Local(id) => frame.locals[id.0 as usize].clone(),
            IrExpr::Global(id) => self.globals[self.global_base[id.0 as usize]].clone(),
            IrExpr::GlobalElem(id, idx) => {
                let idx_bv = self.eval(idx, frame)?;
                let base = self.global_base[id.0 as usize];
                let len = self.prog.global(*id).len;
                let mut result = self.b.bv_const(0);
                for i in 0..len {
                    let i_bv = self.b.bv_const(i as u32);
                    let here = self.b.bv_eq(&idx_bv, &i_bv);
                    let elem = self.globals[base + i].clone();
                    result = self.b.bv_ite(here, &elem, &result);
                }
                result
            }
            IrExpr::MemRead(addr) => {
                let a = self.eval(addr, frame)?;
                self.mem_read(a)
            }
            IrExpr::Unary(op, inner) => {
                let v = self.eval(inner, frame)?;
                match op {
                    UnOp::Neg => self.b.bv_neg(&v),
                    UnOp::BitNot => self.b.bv_not(&v),
                    UnOp::Not => {
                        let nz = self.b.bv_nonzero(&v);
                        self.bv_from_lit(nz.negate())
                    }
                }
            }
            IrExpr::Binary(op, a, b) => {
                let av = self.eval(a, frame)?;
                let bv = self.eval(b, frame)?;
                match op {
                    BinOp::Add => self.b.bv_add(&av, &bv),
                    BinOp::Sub => self.b.bv_sub(&av, &bv),
                    BinOp::Mul => self.b.bv_mul(&av, &bv),
                    BinOp::Div | BinOp::Rem => {
                        return Err(Abort::Unsupported(
                            "division/remainder in bit-level encoding".to_owned(),
                        ))
                    }
                    BinOp::BitAnd => self.b.bv_and(&av, &bv),
                    BinOp::BitOr => self.b.bv_or(&av, &bv),
                    BinOp::BitXor => self.b.bv_xor(&av, &bv),
                    BinOp::Shl => self.b.bv_shl(&av, &bv),
                    BinOp::Shr => self.b.bv_sra(&av, &bv),
                    BinOp::Eq => {
                        let l = self.b.bv_eq(&av, &bv);
                        self.bv_from_lit(l)
                    }
                    BinOp::Ne => {
                        let l = self.b.bv_eq(&av, &bv);
                        self.bv_from_lit(l.negate())
                    }
                    BinOp::Lt => {
                        let l = self.b.bv_slt(&av, &bv);
                        self.bv_from_lit(l)
                    }
                    BinOp::Le => {
                        let l = self.b.bv_slt(&bv, &av);
                        self.bv_from_lit(l.negate())
                    }
                    BinOp::Gt => {
                        let l = self.b.bv_slt(&bv, &av);
                        self.bv_from_lit(l)
                    }
                    BinOp::Ge => {
                        let l = self.b.bv_slt(&av, &bv);
                        self.bv_from_lit(l.negate())
                    }
                    BinOp::And => {
                        let la = self.b.bv_nonzero(&av);
                        let lb = self.b.bv_nonzero(&bv);
                        let l = self.b.and2(la, lb);
                        self.bv_from_lit(l)
                    }
                    BinOp::Or => {
                        let la = self.b.bv_nonzero(&av);
                        let lb = self.b.bv_nonzero(&bv);
                        let l = self.b.or2(la, lb);
                        self.bv_from_lit(l)
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::{lower, parse};

    fn run(src: &str, spec: SafetySpec) -> BmcOutcome {
        let ir = lower(&parse(src).expect("parse")).expect("typeck");
        check(&ir, &spec, BmcConfig::default()).expect("supported program")
    }

    #[test]
    fn proves_simple_program_correct() {
        let outcome = run(
            "int out = 0;
             int main() { out = 2 + 3; return out; }",
            SafetySpec {
                inputs: vec![],
                observed: "out".to_owned(),
                allowed: vec![5],
            },
        );
        assert!(
            matches!(outcome, BmcOutcome::BoundedOk { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn finds_violating_input() {
        let outcome = run(
            "int in = 0; int out = 0;
             int main() {
                 if (in == 7) { out = 99; } else { out = 1; }
                 return out;
             }",
            SafetySpec {
                inputs: vec![("in".to_owned(), 0, 10)],
                observed: "out".to_owned(),
                allowed: vec![1],
            },
        );
        match outcome {
            BmcOutcome::Violated { inputs, observed } => {
                assert_eq!(inputs, vec![("in".to_owned(), 7)]);
                assert_eq!(observed, 99);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn input_constraints_exclude_violations() {
        // The bad branch needs in == 7, but inputs are constrained to <= 5.
        let outcome = run(
            "int in = 0; int out = 0;
             int main() {
                 if (in == 7) { out = 99; } else { out = 1; }
                 return out;
             }",
            SafetySpec {
                inputs: vec![("in".to_owned(), 0, 5)],
                observed: "out".to_owned(),
                allowed: vec![1],
            },
        );
        assert!(
            matches!(outcome, BmcOutcome::BoundedOk { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn bounded_loops_verify() {
        let outcome = run(
            "int out = 0;
             int main() {
                 int i = 0;
                 while (i < 10) { out = out + 2; i = i + 1; }
                 return out;
             }",
            SafetySpec {
                inputs: vec![],
                observed: "out".to_owned(),
                allowed: vec![20],
            },
        );
        assert!(
            matches!(outcome, BmcOutcome::BoundedOk { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn input_dependent_loop_hits_unwinding_limit() {
        // Loop bound depends on an input up to 100 — beyond the unwinding
        // bound of 20, reported as a resource-out, like CBMC's `> unwind`.
        let outcome = run(
            "int n = 0; int out = 0;
             int main() {
                 int i = 0;
                 while (i < n) { out = out + 1; i = i + 1; }
                 return out;
             }",
            SafetySpec {
                inputs: vec![("n".to_owned(), 0, 100)],
                observed: "out".to_owned(),
                allowed: vec![0, 1, 2, 3],
            },
        );
        match outcome {
            BmcOutcome::ResourceOut { reason, .. } => {
                assert!(reason.contains("unwinding"), "{reason}");
            }
            other => panic!("expected resource-out, got {other:?}"),
        }
    }

    #[test]
    fn function_calls_are_inlined() {
        let outcome = run(
            "int out = 0;
             int double(int x) { return x * 2; }
             int main() { out = double(double(3)); return out; }",
            SafetySpec {
                inputs: vec![],
                observed: "out".to_owned(),
                allowed: vec![12],
            },
        );
        assert!(
            matches!(outcome, BmcOutcome::BoundedOk { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn early_return_kills_later_statements() {
        let outcome = run(
            "int in = 0; int out = 0;
             int f() {
                 if (in > 5) { return 1; }
                 return 2;
             }
             int main() { out = f(); return out; }",
            SafetySpec {
                inputs: vec![("in".to_owned(), 0, 10)],
                observed: "out".to_owned(),
                allowed: vec![1, 2],
            },
        );
        assert!(
            matches!(outcome, BmcOutcome::BoundedOk { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn break_and_continue_are_modelled() {
        let outcome = run(
            "int out = 0;
             int main() {
                 int i = 0;
                 while (true) {
                     i = i + 1;
                     if (i == 3) { continue; }
                     if (i >= 5) { break; }
                     out = out + 1;
                 }
                 return out;
             }",
            SafetySpec {
                inputs: vec![],
                observed: "out".to_owned(),
                allowed: vec![3], // i = 1, 2, 4 increment
            },
        );
        assert!(
            matches!(outcome, BmcOutcome::BoundedOk { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn unconstrained_memory_reads_cause_false_reasoning() {
        // Reading a device register can return anything — without input
        // constraints the checker reports a (spurious) violation, exactly
        // the "false reasoning" the paper warns about.
        let outcome = run(
            "int out = 0;
             int main() { out = *(0x8000); return out; }",
            SafetySpec {
                inputs: vec![],
                observed: "out".to_owned(),
                allowed: vec![0],
            },
        );
        assert!(
            matches!(outcome, BmcOutcome::Violated { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn memory_write_read_round_trip() {
        let outcome = run(
            "int out = 0;
             int main() { *(0x8000) = 42; out = *(0x8000); return out; }",
            SafetySpec {
                inputs: vec![],
                observed: "out".to_owned(),
                allowed: vec![42],
            },
        );
        assert!(
            matches!(outcome, BmcOutcome::BoundedOk { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn arrays_with_symbolic_index() {
        let outcome = run(
            "int tab[4] = {10, 20, 30, 40};
             int in = 0; int out = 0;
             int main() { out = tab[in]; return out; }",
            SafetySpec {
                inputs: vec![("in".to_owned(), 0, 3)],
                observed: "out".to_owned(),
                allowed: vec![10, 20, 30, 40],
            },
        );
        assert!(
            matches!(outcome, BmcOutcome::BoundedOk { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn division_is_unsupported() {
        let ir =
            lower(&parse("int out = 0; int main() { out = 6 / 2; return out; }").unwrap()).unwrap();
        let err = check(
            &ir,
            &SafetySpec {
                inputs: vec![],
                observed: "out".to_owned(),
                allowed: vec![3],
            },
            BmcConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("division"));
    }
}
