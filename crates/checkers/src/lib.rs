//! # checkers — baseline formal verification engines
//!
//! The two state-of-the-art tools the paper compares against, rebuilt from
//! scratch on the mini-C IR:
//!
//! * [`bmc`] — bounded model checking in the CBMC mould: loop unwinding
//!   (limit 20), call inlining, bit-blasting to CNF, solved by the
//!   home-grown CDCL [`sat`] solver. Resource-outs reproduce the paper's
//!   `> unwind` rows.
//! * [`predabs`] — abstraction-based checking in the BLAST mould, with the
//!   documented 2³⁰ integer weakness and a fragment boundary that raises
//!   exceptions on memory accesses and bit operations — the paper's
//!   "Exception" rows.
//!
//! Both consume the same [`SafetySpec`](bmc::SafetySpec): constrained
//! symbolic inputs plus an allowed-value set for an observed global.
//!
//! ## Example
//!
//! ```
//! use checkers::bmc::{check, BmcConfig, BmcOutcome, SafetySpec};
//! use minic::{lower, parse};
//!
//! let ir = lower(&parse("
//!     int in = 0; int out = 0;
//!     int main() { if (in > 3) { out = 2; } else { out = 1; } return out; }
//! ")?)?;
//! let spec = SafetySpec {
//!     inputs: vec![("in".to_owned(), 0, 10)],
//!     observed: "out".to_owned(),
//!     allowed: vec![1, 2],
//! };
//! let outcome = check(&ir, &spec, BmcConfig::default()).unwrap();
//! assert!(matches!(outcome, BmcOutcome::BoundedOk { .. }));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod bmc;
pub mod cnf;
pub mod predabs;
pub mod sat;
