//! Tseitin CNF construction and 32-bit bit-vector blasting.
//!
//! [`CnfBuilder`] wraps a [`Solver`](crate::sat::Solver) and builds circuits
//! gate by gate: every gate output is a fresh literal constrained by its
//! Tseitin clauses. Bit-vectors are little-endian `Vec<Lit>` of width 32.

use crate::sat::{Lit, SatResult, Solver};

/// Bit-vector width used throughout (mini-C `int`).
pub const WIDTH: usize = 32;

/// A 32-bit symbolic word, least-significant bit first.
pub type BitVec = Vec<Lit>;

/// Circuit builder over a SAT solver.
///
/// # Examples
///
/// ```
/// use checkers::cnf::CnfBuilder;
///
/// let mut b = CnfBuilder::new();
/// let x = b.bv_fresh();
/// let seven = b.bv_const(7);
/// let ten = b.bv_const(10);
/// let sum = b.bv_add(&x, &seven);
/// let eq = b.bv_eq(&sum, &ten);
/// b.assert_lit(eq);
/// let model = b.solve(1_000_000);
/// assert!(model.is_sat());
/// ```
#[derive(Debug)]
pub struct CnfBuilder {
    solver: Solver,
    true_lit: Lit,
}

impl Default for CnfBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CnfBuilder {
    /// Creates a builder with a fresh solver.
    pub fn new() -> Self {
        let mut solver = Solver::new();
        let t = Lit::pos(solver.new_var());
        solver.add_clause(&[t]);
        CnfBuilder {
            solver,
            true_lit: t,
        }
    }

    /// The constant-true literal.
    pub fn tru(&self) -> Lit {
        self.true_lit
    }

    /// The constant-false literal.
    pub fn fls(&self) -> Lit {
        self.true_lit.negate()
    }

    /// A literal for a boolean constant.
    pub fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.tru()
        } else {
            self.fls()
        }
    }

    /// Allocates a fresh unconstrained literal.
    pub fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    /// Asserts a literal at the top level.
    pub fn assert_lit(&mut self, l: Lit) {
        self.solver.add_clause(&[l]);
    }

    /// Asserts a disjunction at the top level.
    pub fn assert_clause(&mut self, lits: &[Lit]) {
        self.solver.add_clause(lits);
    }

    /// Number of solver variables (size metric).
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Number of solver clauses (size metric).
    pub fn num_clauses(&self) -> usize {
        self.solver.num_clauses()
    }

    /// Runs the solver with a conflict budget.
    pub fn solve(&mut self, max_conflicts: u64) -> SatResult {
        self.solver.solve(max_conflicts)
    }

    /// Evaluates a bit-vector under a model.
    pub fn bv_value(model: &[bool], bv: &BitVec) -> u32 {
        bv.iter().enumerate().fold(0u32, |acc, (i, &l)| {
            let bit = model[l.var().0 as usize] ^ l.is_neg();
            if bit {
                acc | (1 << i)
            } else {
                acc
            }
        })
    }

    // ---------------------------------------------------------------
    // Gates.
    // ---------------------------------------------------------------

    /// `o = a ∧ b`
    pub fn and2(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.fls() || b == self.fls() {
            return self.fls();
        }
        if a == self.tru() {
            return b;
        }
        if b == self.tru() || a == b {
            return a;
        }
        if a == b.negate() {
            return self.fls();
        }
        let o = self.fresh();
        self.solver.add_clause(&[o.negate(), a]);
        self.solver.add_clause(&[o.negate(), b]);
        self.solver.add_clause(&[o, a.negate(), b.negate()]);
        o
    }

    /// `o = a ∨ b`
    pub fn or2(&mut self, a: Lit, b: Lit) -> Lit {
        self.and2(a.negate(), b.negate()).negate()
    }

    /// `o = a ⊕ b`
    pub fn xor2(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.fls() {
            return b;
        }
        if b == self.fls() {
            return a;
        }
        if a == self.tru() {
            return b.negate();
        }
        if b == self.tru() {
            return a.negate();
        }
        if a == b {
            return self.fls();
        }
        if a == b.negate() {
            return self.tru();
        }
        let o = self.fresh();
        self.solver.add_clause(&[o.negate(), a, b]);
        self.solver
            .add_clause(&[o.negate(), a.negate(), b.negate()]);
        self.solver.add_clause(&[o, a, b.negate()]);
        self.solver.add_clause(&[o, a.negate(), b]);
        o
    }

    /// `o = a ↔ b`
    pub fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        self.xor2(a, b).negate()
    }

    /// `o = c ? t : e`
    pub fn ite(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if c == self.tru() {
            return t;
        }
        if c == self.fls() {
            return e;
        }
        if t == e {
            return t;
        }
        let o = self.fresh();
        self.solver.add_clause(&[c.negate(), t.negate(), o]);
        self.solver.add_clause(&[c.negate(), t, o.negate()]);
        self.solver.add_clause(&[c, e.negate(), o]);
        self.solver.add_clause(&[c, e, o.negate()]);
        o
    }

    /// `o = ∧ lits`
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.tru();
        for &l in lits {
            acc = self.and2(acc, l);
        }
        acc
    }

    /// `o = ∨ lits`
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.fls();
        for &l in lits {
            acc = self.or2(acc, l);
        }
        acc
    }

    // ---------------------------------------------------------------
    // Bit-vectors.
    // ---------------------------------------------------------------

    /// A constant word.
    pub fn bv_const(&mut self, value: u32) -> BitVec {
        (0..WIDTH)
            .map(|i| self.const_lit(value >> i & 1 == 1))
            .collect()
    }

    /// A fresh unconstrained word.
    pub fn bv_fresh(&mut self) -> BitVec {
        (0..WIDTH).map(|_| self.fresh()).collect()
    }

    /// Bitwise AND / OR / XOR / NOT.
    pub fn bv_and(&mut self, a: &BitVec, b: &BitVec) -> BitVec {
        (0..WIDTH).map(|i| self.and2(a[i], b[i])).collect()
    }

    /// Bitwise OR.
    pub fn bv_or(&mut self, a: &BitVec, b: &BitVec) -> BitVec {
        (0..WIDTH).map(|i| self.or2(a[i], b[i])).collect()
    }

    /// Bitwise XOR.
    pub fn bv_xor(&mut self, a: &BitVec, b: &BitVec) -> BitVec {
        (0..WIDTH).map(|i| self.xor2(a[i], b[i])).collect()
    }

    /// Bitwise complement.
    pub fn bv_not(&mut self, a: &BitVec) -> BitVec {
        a.iter().map(|l| l.negate()).collect()
    }

    /// Wrapping addition.
    pub fn bv_add(&mut self, a: &BitVec, b: &BitVec) -> BitVec {
        let mut out = Vec::with_capacity(WIDTH);
        let mut carry = self.fls();
        for i in 0..WIDTH {
            let axb = self.xor2(a[i], b[i]);
            let sum = self.xor2(axb, carry);
            let c1 = self.and2(a[i], b[i]);
            let c2 = self.and2(axb, carry);
            carry = self.or2(c1, c2);
            out.push(sum);
        }
        out
    }

    /// Wrapping negation (two's complement).
    pub fn bv_neg(&mut self, a: &BitVec) -> BitVec {
        let inv = self.bv_not(a);
        let one = self.bv_const(1);
        self.bv_add(&inv, &one)
    }

    /// Wrapping subtraction.
    pub fn bv_sub(&mut self, a: &BitVec, b: &BitVec) -> BitVec {
        let nb = self.bv_neg(b);
        self.bv_add(a, &nb)
    }

    /// Wrapping multiplication (shift-and-add).
    pub fn bv_mul(&mut self, a: &BitVec, b: &BitVec) -> BitVec {
        let mut acc = self.bv_const(0);
        for i in 0..WIDTH {
            // Partial product: (b << i) masked by a[i].
            let mut partial = Vec::with_capacity(WIDTH);
            for k in 0..WIDTH {
                if k < i {
                    partial.push(self.fls());
                } else {
                    let bit = self.and2(a[i], b[k - i]);
                    partial.push(bit);
                }
            }
            acc = self.bv_add(&acc, &partial);
        }
        acc
    }

    /// Shift left by a variable amount (taken mod 32, like the ISS).
    pub fn bv_shl(&mut self, a: &BitVec, amount: &BitVec) -> BitVec {
        let mut cur = a.clone();
        for (stage, &sel) in amount.iter().enumerate().take(5) {
            let dist = 1usize << stage;
            let mut next = Vec::with_capacity(WIDTH);
            for i in 0..WIDTH {
                let shifted = if i >= dist { cur[i - dist] } else { self.fls() };
                next.push(self.ite(sel, shifted, cur[i]));
            }
            cur = next;
        }
        cur
    }

    /// Arithmetic shift right by a variable amount (mod 32).
    pub fn bv_sra(&mut self, a: &BitVec, amount: &BitVec) -> BitVec {
        let sign = a[WIDTH - 1];
        let mut cur = a.clone();
        for (stage, &sel) in amount.iter().enumerate().take(5) {
            let dist = 1usize << stage;
            let mut next = Vec::with_capacity(WIDTH);
            for i in 0..WIDTH {
                let shifted = if i + dist < WIDTH {
                    cur[i + dist]
                } else {
                    sign
                };
                next.push(self.ite(sel, shifted, cur[i]));
            }
            cur = next;
        }
        cur
    }

    /// Word equality.
    pub fn bv_eq(&mut self, a: &BitVec, b: &BitVec) -> Lit {
        let bits: Vec<Lit> = (0..WIDTH).map(|i| self.iff(a[i], b[i])).collect();
        self.and_many(&bits)
    }

    /// Unsigned less-than.
    pub fn bv_ult(&mut self, a: &BitVec, b: &BitVec) -> Lit {
        let mut lt = self.fls();
        for i in 0..WIDTH {
            let diff = self.xor2(a[i], b[i]);
            let bi_gt = self.and2(a[i].negate(), b[i]);
            lt = self.ite(diff, bi_gt, lt);
        }
        lt
    }

    /// Signed less-than (sign-bit flip reduces to unsigned).
    pub fn bv_slt(&mut self, a: &BitVec, b: &BitVec) -> Lit {
        let mut af = a.clone();
        let mut bf = b.clone();
        af[WIDTH - 1] = a[WIDTH - 1].negate();
        bf[WIDTH - 1] = b[WIDTH - 1].negate();
        self.bv_ult(&af, &bf)
    }

    /// Word multiplexer.
    pub fn bv_ite(&mut self, c: Lit, t: &BitVec, e: &BitVec) -> BitVec {
        (0..WIDTH).map(|i| self.ite(c, t[i], e[i])).collect()
    }

    /// `word != 0`
    pub fn bv_nonzero(&mut self, a: &BitVec) -> Lit {
        self.or_many(&a.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;

    /// Asserts that the circuit forces `out` to equal `expect` when `a`/`b`
    /// take concrete values.
    fn check_binop(
        op: impl Fn(&mut CnfBuilder, &BitVec, &BitVec) -> BitVec,
        a: u32,
        b: u32,
        expect: u32,
    ) {
        let mut c = CnfBuilder::new();
        let av = c.bv_const(a);
        let bv = c.bv_const(b);
        let out = op(&mut c, &av, &bv);
        let want = c.bv_const(expect);
        let eq = c.bv_eq(&out, &want);
        c.assert_lit(eq.negate());
        assert_eq!(
            c.solve(100_000),
            SatResult::Unsat,
            "{a:#x} op {b:#x} must equal {expect:#x}"
        );
    }

    #[test]
    fn addition_matches_wrapping_semantics() {
        check_binop(CnfBuilder::bv_add, 2, 3, 5);
        check_binop(CnfBuilder::bv_add, u32::MAX, 1, 0);
        check_binop(CnfBuilder::bv_add, 0x8000_0000, 0x8000_0000, 0);
    }

    #[test]
    fn subtraction_and_negation() {
        check_binop(CnfBuilder::bv_sub, 10, 3, 7);
        check_binop(CnfBuilder::bv_sub, 0, 1, u32::MAX);
    }

    #[test]
    fn multiplication() {
        check_binop(CnfBuilder::bv_mul, 6, 7, 42);
        check_binop(CnfBuilder::bv_mul, 0xffff, 0x10001, 0xffff_ffff);
        check_binop(CnfBuilder::bv_mul, (-3i32) as u32, 5, (-15i32) as u32);
    }

    #[test]
    fn bitwise_operations() {
        check_binop(CnfBuilder::bv_and, 0b1100, 0b1010, 0b1000);
        check_binop(CnfBuilder::bv_or, 0b1100, 0b1010, 0b1110);
        check_binop(CnfBuilder::bv_xor, 0b1100, 0b1010, 0b0110);
    }

    #[test]
    fn shifts() {
        check_binop(CnfBuilder::bv_shl, 1, 4, 16);
        check_binop(CnfBuilder::bv_shl, 0x8000_0001, 1, 2);
        check_binop(CnfBuilder::bv_sra, (-8i32) as u32, 1, (-4i32) as u32);
        check_binop(CnfBuilder::bv_sra, 64, 3, 8);
    }

    #[test]
    fn comparisons() {
        let mut c = CnfBuilder::new();
        let a = c.bv_const(3);
        let b = c.bv_const(5);
        let m = c.bv_const((-2i32) as u32);
        let ult = c.bv_ult(&a, &b);
        c.assert_lit(ult);
        let slt = c.bv_slt(&m, &a); // -2 < 3 signed
        c.assert_lit(slt);
        let not_ult = c.bv_ult(&m, &a); // 0xfffffffe < 3 unsigned is false
        c.assert_lit(not_ult.negate());
        assert!(c.solve(100_000).is_sat());
    }

    #[test]
    fn solver_finds_inverse_of_addition() {
        // x + 7 == 10 → x == 3.
        let mut c = CnfBuilder::new();
        let x = c.bv_fresh();
        let seven = c.bv_const(7);
        let ten = c.bv_const(10);
        let sum = c.bv_add(&x, &seven);
        let eq = c.bv_eq(&sum, &ten);
        c.assert_lit(eq);
        match c.solve(1_000_000) {
            SatResult::Sat(model) => assert_eq!(CnfBuilder::bv_value(&model, &x), 3),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn solver_inverts_multiplication() {
        // x * 3 == 21 has solution x = 7 (among others mod 2^32).
        let mut c = CnfBuilder::new();
        let x = c.bv_fresh();
        let three = c.bv_const(3);
        let prod = c.bv_mul(&x, &three);
        let want = c.bv_const(21);
        let eq = c.bv_eq(&prod, &want);
        c.assert_lit(eq);
        match c.solve(2_000_000) {
            SatResult::Sat(model) => {
                let v = CnfBuilder::bv_value(&model, &x);
                assert_eq!(v.wrapping_mul(3), 21);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn ite_selects() {
        let mut c = CnfBuilder::new();
        let cond = c.fresh();
        let a = c.bv_const(11);
        let b = c.bv_const(22);
        let out = c.bv_ite(cond, &a, &b);
        c.assert_lit(cond);
        let want = c.bv_const(11);
        let eq = c.bv_eq(&out, &want);
        c.assert_lit(eq);
        assert!(c.solve(10_000).is_sat());
    }

    #[test]
    fn nonzero_detector() {
        let mut c = CnfBuilder::new();
        let z = c.bv_const(0);
        let nz = c.bv_nonzero(&z);
        c.assert_lit(nz);
        assert_eq!(c.solve(10_000), SatResult::Unsat);
    }
}
