//! A minimal JSON emitter for machine-readable bench artifacts.
//!
//! The workspace builds with no registry access (CARGO_NET_OFFLINE), so
//! there is no serde; this writer covers exactly what the bench documents
//! need — objects, arrays, strings, finite numbers, null — and always
//! produces valid, pretty-printed JSON.

/// Streaming JSON writer. Call the structural methods in document order
/// and [`JsonWriter::finish`] at the end.
///
/// ```
/// use sctc_bench::json::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("answer");
/// w.number(42.0);
/// w.end_object();
/// assert_eq!(w.finish(), "{\n  \"answer\": 42\n}\n");
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    depth: usize,
    /// Whether the current container already holds a value (a comma is
    /// needed before the next one).
    needs_comma: Vec<bool>,
    /// A `key(...)` was emitted and awaits its value.
    pending_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(needs_comma) = self.needs_comma.last_mut() {
            if *needs_comma {
                self.out.push(',');
            }
            *needs_comma = true;
            self.newline_indent();
        }
    }

    /// Starts an object (`{`).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.depth += 1;
        self.needs_comma.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        let had_values = self.needs_comma.pop().unwrap_or(false);
        self.depth -= 1;
        if had_values {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Starts an array (`[`).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.depth += 1;
        self.needs_comma.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        let had_values = self.needs_comma.pop().unwrap_or(false);
        self.depth -= 1;
        if had_values {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Emits an object key; the next call must emit its value.
    pub fn key(&mut self, key: &str) {
        self.before_value();
        self.push_string(key);
        self.out.push_str(": ");
        self.pending_key = true;
    }

    /// Emits a string value.
    pub fn string(&mut self, value: &str) {
        self.before_value();
        self.push_string(value);
    }

    /// Emits a number. Non-finite values become `null` (JSON has no
    /// NaN/Inf); integral values print without a fraction.
    pub fn number(&mut self, value: f64) {
        self.before_value();
        if !value.is_finite() {
            self.out.push_str("null");
        } else if value.fract() == 0.0 && value.abs() < 9.0e15 {
            let _ = {
                use std::fmt::Write as _;
                write!(self.out, "{}", value as i64)
            };
        } else {
            let _ = {
                use std::fmt::Write as _;
                write!(self.out, "{value}")
            };
        }
    }

    /// Emits `null`.
    pub fn null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    /// Emits `true`/`false`.
    pub fn boolean(&mut self, value: bool) {
        self.before_value();
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Returns the finished document with a trailing newline.
    pub fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }

    fn push_string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    use std::fmt::Write as _;
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("rows");
        w.begin_array();
        w.begin_object();
        w.key("name");
        w.string("tb\"1000\"");
        w.key("bound");
        w.null();
        w.key("ok");
        w.boolean(true);
        w.end_object();
        w.end_array();
        w.key("rate");
        w.number(0.5);
        w.end_object();
        let doc = w.finish();
        assert!(doc.contains("\"tb\\\"1000\\\"\""));
        assert!(doc.contains("\"bound\": null"));
        assert!(doc.contains("\"rate\": 0.5"));
        assert!(doc.ends_with("}\n"));
    }

    #[test]
    fn integral_numbers_have_no_fraction() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.number(42.0);
        w.number(f64::NAN);
        w.end_array();
        let doc = w.finish();
        assert!(doc.contains("42"), "{doc}");
        assert!(!doc.contains("42.0"), "{doc}");
        assert!(doc.contains("null"), "{doc}");
    }

    #[test]
    fn empty_containers_stay_compact() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("rows");
        w.begin_array();
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), "{\n  \"rows\": []\n}\n");
    }

    #[test]
    fn control_characters_are_escaped() {
        let mut w = JsonWriter::new();
        w.string("a\u{1}b\nc");
        assert_eq!(w.finish(), "\"a\\u0001b\\nc\"\n");
    }
}
