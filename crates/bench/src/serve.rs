//! The sustained-load scenario behind `repro --serve-bench`: closed-loop
//! clients over loopback against a live [`sctc_server`] instance.
//!
//! The workload is deliberately repeat-heavy — the millions-of-users
//! shape from the ROADMAP: a small set of distinct jobs drawn with
//! replacement by several concurrent clients, so most submissions are
//! result-cache hits or single-flight joins. Every fetched digest is
//! checked against the same job run in-process; a divergence is a hard
//! failure of the artifact.
//!
//! Caveat for the latency split: pre-computing the expected digests runs
//! every job once in-process first, which warms the process-wide
//! synthesis cache. Cold server runs therefore skip AR synthesis and are
//! *faster* than a true first-contact run — which biases the cold/hit
//! ratio **down**, making the ≥ 10× cache-hit guarantee conservative.

use std::time::{Duration, Instant};

use sctc_server::job::run_job;
use sctc_server::{
    spawn, Client, JobDigest, JobOptions, JobOutcome, JobSpec, ServerConfig, Served,
};

use crate::json::JsonWriter;
use crate::{resolve_jobs, Scale};

/// One submission's measurement.
#[derive(Clone, Debug)]
struct Sample {
    latency: Duration,
    served: Served,
    diverged: bool,
}

/// Aggregated results of the sustained-load run.
#[derive(Clone, Debug)]
pub struct ServerBenchReport {
    /// Closed-loop client connections.
    pub clients: usize,
    /// Distinct job specs in the draw pool.
    pub distinct_jobs: usize,
    /// Total submissions completed.
    pub jobs_done: u64,
    /// Submissions served cold (led a flight).
    pub colds: u64,
    /// Submissions served from the finished cache.
    pub hits: u64,
    /// Submissions that joined an in-flight identical job.
    pub coalesced: u64,
    /// Digest mismatches against the in-process runs (must be 0).
    pub divergences: u64,
    /// `hits / jobs_done` — the repeat-traffic payoff.
    pub hit_rate: f64,
    /// Whole-run throughput.
    pub jobs_per_sec: f64,
    /// Wall clock of the whole campaign.
    pub wall: Duration,
    /// Latency percentiles over all submissions.
    pub p50: Duration,
    /// 99th percentile (worst-case tail: a cold run).
    pub p99: Duration,
    /// Median latency of cold submissions.
    pub cold_median: Duration,
    /// Median latency of cache-hit submissions.
    pub hit_median: Duration,
    /// `cold_median / hit_median` — the acceptance gate is ≥ 10.
    pub speedup: f64,
    /// The server's own counter snapshot at the end of the run.
    pub stats: Vec<(String, u64)>,
}

fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * pct / 100.0).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn median(mut values: Vec<Duration>) -> Duration {
    if values.is_empty() {
        return Duration::ZERO;
    }
    values.sort();
    values[values.len() / 2]
}

/// The draw pool: a few campaigns, fault campaigns, and SMC queries —
/// every job kind the server accepts, scaled off the bench `Scale`.
fn job_pool(scale: Scale) -> Vec<JobSpec> {
    let campaign_cases = (scale.derived_cases / 4).max(20);
    let faults_cases = (scale.derived_cases / 8).max(10);
    let mut pool = Vec::new();
    for i in 0..4 {
        pool.push(JobSpec::small_campaign(campaign_cases, scale.seed + i));
    }
    for i in 0..2 {
        pool.push(JobSpec::small_faults(faults_cases, scale.seed + 10 + i));
    }
    pool.push(JobSpec::planted_smc(100, scale.seed));
    pool.push(JobSpec::planted_smc(20, scale.seed + 1));
    pool
}

/// Runs the sustained-load scenario: spawn a loopback server, pre-compute
/// the expected digest of every pool job in-process, then hammer the
/// server with `clients` closed-loop connections drawing jobs with
/// replacement, and verify every digest on the way back.
pub fn serve_bench(scale: Scale) -> ServerBenchReport {
    const CLIENTS: usize = 4;
    const SUBMISSIONS_PER_CLIENT: u64 = 14;

    let pool = job_pool(scale);
    let expected: Vec<JobDigest> = pool
        .iter()
        .map(|spec| run_job(spec, &JobOptions::default()).digest)
        .collect();

    let mut server = spawn(ServerConfig::default()).expect("bind loopback server");
    let addr = server.addr();
    let options = JobOptions {
        deadline_ms: 0,
        jobs: resolve_jobs(scale.jobs),
    };

    let started = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client_index| {
            let pool = pool.clone();
            let expected = expected.clone();
            let seed = scale.seed ^ (0xC11E_0000 + client_index as u64);
            std::thread::spawn(move || {
                let mut rng = testkit::Rng::new(seed);
                let mut client = Client::connect(addr).expect("connect load client");
                let mut samples = Vec::new();
                for _ in 0..SUBMISSIONS_PER_CLIENT {
                    let pick = rng.below(pool.len() as u64) as usize;
                    let begun = Instant::now();
                    let outcome = client
                        .submit(&pool[pick], &options)
                        .expect("submit load job");
                    let latency = begun.elapsed();
                    match outcome {
                        JobOutcome::Done { served, digest, .. } => samples.push(Sample {
                            latency,
                            served,
                            diverged: digest != expected[pick],
                        }),
                        other => panic!("load job did not finish: {other:?}"),
                    }
                }
                samples
            })
        })
        .collect();

    let mut samples: Vec<Sample> = Vec::new();
    for worker in workers {
        samples.extend(worker.join().expect("load client thread"));
    }
    let wall = started.elapsed();

    let mut control = Client::connect(addr).expect("connect control client");
    let stats = control.stats().expect("stats snapshot");
    drop(control);
    server.shutdown();

    let jobs_done = samples.len() as u64;
    let colds = samples.iter().filter(|s| s.served == Served::Cold).count() as u64;
    let hits = samples.iter().filter(|s| s.served == Served::Hit).count() as u64;
    let coalesced = samples
        .iter()
        .filter(|s| s.served == Served::Coalesced)
        .count() as u64;
    let divergences = samples.iter().filter(|s| s.diverged).count() as u64;

    let mut all: Vec<Duration> = samples.iter().map(|s| s.latency).collect();
    all.sort();
    let cold_median = median(
        samples
            .iter()
            .filter(|s| s.served == Served::Cold)
            .map(|s| s.latency)
            .collect(),
    );
    let hit_median = median(
        samples
            .iter()
            .filter(|s| s.served == Served::Hit)
            .map(|s| s.latency)
            .collect(),
    );
    let speedup = if hit_median > Duration::ZERO {
        cold_median.as_secs_f64() / hit_median.as_secs_f64()
    } else {
        0.0
    };

    ServerBenchReport {
        clients: CLIENTS,
        distinct_jobs: pool.len(),
        jobs_done,
        colds,
        hits,
        coalesced,
        divergences,
        hit_rate: if jobs_done == 0 {
            0.0
        } else {
            hits as f64 / jobs_done as f64
        },
        jobs_per_sec: if wall.as_secs_f64() > 0.0 {
            jobs_done as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        wall,
        p50: percentile(&all, 50.0),
        p99: percentile(&all, 99.0),
        cold_median,
        hit_median,
        speedup,
        stats,
    }
}

/// Renders the sustained-load report as the `BENCH_server.json` document.
pub fn render_server_bench_json(report: &ServerBenchReport) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("bench-server/v1");
    w.key("host_parallelism");
    w.number(resolve_jobs(0) as f64);
    w.key("clients");
    w.number(report.clients as f64);
    w.key("distinct_jobs");
    w.number(report.distinct_jobs as f64);
    w.key("jobs_done");
    w.number(report.jobs_done as f64);
    w.key("colds");
    w.number(report.colds as f64);
    w.key("hits");
    w.number(report.hits as f64);
    w.key("coalesced");
    w.number(report.coalesced as f64);
    w.key("divergences");
    w.number(report.divergences as f64);
    w.key("hit_rate");
    w.number(report.hit_rate);
    w.key("jobs_per_sec");
    w.number(report.jobs_per_sec);
    w.key("wall_s");
    w.number(report.wall.as_secs_f64());
    w.key("p50_us");
    w.number(report.p50.as_secs_f64() * 1e6);
    w.key("p99_us");
    w.number(report.p99.as_secs_f64() * 1e6);
    w.key("cold_median_us");
    w.number(report.cold_median.as_secs_f64() * 1e6);
    w.key("hit_median_us");
    w.number(report.hit_median.as_secs_f64() * 1e6);
    w.key("hit_speedup");
    w.number(report.speedup);
    w.key("server_stats");
    w.begin_object();
    for (name, value) in &report.stats {
        w.key(name);
        w.number(*value as f64);
    }
    w.end_object();
    w.end_object();
    w.finish()
}
