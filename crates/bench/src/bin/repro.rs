//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--fig7] [--fig8] [--speedup] [--tb-sweep] [--campaign] [--faults]
//!       [--smc] [--monitor-bench] [--witness-demo] [--serve-bench]
//!       [--telemetry-bench] [--all]
//!       [--jobs N] [--micro-cases N] [--derived-cases N] [--seed S]
//!       [--budget SECS] [--json PATH|--json=false] [--faults-json PATH]
//!       [--smc-json PATH] [--server-json PATH] [--monitor-json PATH]
//!       [--obs-json PATH] [--telemetry-json PATH] [--trace-json PATH]
//!       [--vcd PATH] [--profile] [--guard-ratio R]
//! ```
//!
//! With no table flags, `--all` is assumed. Numbers are scaled-down local
//! measurements; compare shapes against the paper (see EXPERIMENTS.md).
//! The simulation-based sections run as sharded campaigns over `--jobs`
//! worker threads (default: all cores); the worker count changes
//! wall-clock only, never a verdict or a coverage number. `--campaign`
//! additionally writes the machine-readable `BENCH_campaign.json`;
//! `--faults` runs the fault-injection campaigns of both flows, enforces
//! that the serial and parallel detection matrices are fingerprint-
//! identical, and writes `BENCH_faults.json`. `--smc` runs the
//! statistical model-checking campaigns (Wald's SPRT over a planted
//! failure rate), enforces that serial and parallel report fingerprints
//! are identical *and* that the sequential test undercuts the
//! fixed-sample Chernoff budget, and writes `BENCH_smc.json`.
//! `--monitor-bench` runs every
//! campaign family under all four monitoring engines (naive, table,
//! lazy, compiled) with alternating-order min-of-4 timing, enforces that
//! their result fingerprints are identical, optionally enforces a
//! compiled-vs-table wall-clock ratio on the fig8 derived rows
//! (`--guard-ratio 1.10` fails the run if compiled is >10% slower), and
//! writes `BENCH_monitoring.json`. `--witness-demo` runs the torn-write
//! power-loss scenario with the diagnosis layer on under both flows,
//! prints the counterexample witnesses, validates the VCD round-trip and
//! the witness replay, measures the span profiler's overhead, and writes
//! `BENCH_obs.json` (plus the waveform to `--vcd PATH`). `--serve-bench`
//! spawns the verification service over loopback, hammers it with
//! closed-loop clients drawing a small repeat-heavy job pool, verifies
//! every served digest against the same job run in-process, enforces that
//! cache hits are at least 10x faster than cold runs, and writes
//! `BENCH_server.json`. `--telemetry-bench` times the standard derived
//! campaign with the trace plane disabled and enabled (min-of-10,
//! alternating order), enforces that every on/off fingerprint pair is
//! bit-identical, **fails the run if the enabled overhead exceeds 3%**,
//! and writes `BENCH_telemetry.json` plus the flight-recorder log as
//! chrome://tracing-loadable `trace.json`. `--json=false`
//! suppresses every JSON artifact and leaves only the readable tables.

use std::time::Duration;

use sctc_bench::{
    campaign_bench, decode_bench, faults_bench, fig7, fig8, monitor_bench, obs_bench,
    render_campaign_bench_json, render_chrome_trace,
    render_faults_bench_json, render_monitoring_bench_json, render_obs_json,
    render_server_bench_json, render_smc_bench_json, render_telemetry_json, secs, serve_bench,
    smc_bench, speedup, tb_sweep, telemetry_bench, witness_demo, Scale,
};
use sctc_campaign::resolve_jobs;

struct Args {
    fig7: bool,
    fig8: bool,
    speedup: bool,
    tb_sweep: bool,
    campaign: bool,
    faults: bool,
    smc: bool,
    monitor: bool,
    witness: bool,
    serve: bool,
    telemetry: bool,
    profile: bool,
    write_json: bool,
    json_path: String,
    faults_json_path: String,
    smc_json_path: String,
    server_json_path: String,
    monitor_json_path: String,
    obs_json_path: String,
    telemetry_json_path: String,
    trace_json_path: String,
    vcd_path: Option<String>,
    /// `--guard-ratio R`: fail `--monitor-bench` if the compiled engine's
    /// wall exceeds `R ×` the table engine's wall summed over the fig8
    /// derived rows.
    guard_ratio: Option<f64>,
    scale: Scale,
}

fn parse_args() -> Args {
    let mut args = Args {
        fig7: false,
        fig8: false,
        speedup: false,
        tb_sweep: false,
        campaign: false,
        faults: false,
        smc: false,
        monitor: false,
        witness: false,
        serve: false,
        telemetry: false,
        profile: false,
        write_json: true,
        json_path: "BENCH_campaign.json".to_owned(),
        faults_json_path: "BENCH_faults.json".to_owned(),
        smc_json_path: "BENCH_smc.json".to_owned(),
        server_json_path: "BENCH_server.json".to_owned(),
        monitor_json_path: "BENCH_monitoring.json".to_owned(),
        obs_json_path: "BENCH_obs.json".to_owned(),
        telemetry_json_path: "BENCH_telemetry.json".to_owned(),
        trace_json_path: "trace.json".to_owned(),
        vcd_path: None,
        guard_ratio: None,
        scale: Scale::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next_u64 = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects a number"))
        };
        match arg.as_str() {
            "--fig7" => args.fig7 = true,
            "--fig8" => args.fig8 = true,
            "--speedup" => args.speedup = true,
            "--tb-sweep" => args.tb_sweep = true,
            "--campaign" => args.campaign = true,
            "--faults" => args.faults = true,
            "--smc" => args.smc = true,
            "--monitor-bench" => args.monitor = true,
            "--witness-demo" => args.witness = true,
            "--serve-bench" => args.serve = true,
            "--telemetry-bench" => args.telemetry = true,
            "--profile" => args.profile = true,
            "--all" => {
                args.fig7 = true;
                args.fig8 = true;
                args.speedup = true;
                args.tb_sweep = true;
                args.campaign = true;
                args.faults = true;
                args.smc = true;
                args.monitor = true;
                args.witness = true;
                args.serve = true;
                args.telemetry = true;
            }
            "--jobs" => args.scale.jobs = next_u64("--jobs") as usize,
            "--micro-cases" => args.scale.micro_cases = next_u64("--micro-cases"),
            "--derived-cases" => args.scale.derived_cases = next_u64("--derived-cases"),
            "--seed" => args.scale.seed = next_u64("--seed"),
            "--budget" => args.scale.checker_budget = Duration::from_secs(next_u64("--budget")),
            "--guard-ratio" => {
                let v = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--guard-ratio expects a number like 1.10");
                args.guard_ratio = Some(v);
            }
            "--json=false" => args.write_json = false,
            "--json=true" => args.write_json = true,
            "--json" => {
                args.json_path = it.next().expect("--json expects a path");
            }
            "--faults-json" => {
                args.faults_json_path = it.next().expect("--faults-json expects a path");
            }
            "--smc-json" => {
                args.smc_json_path = it.next().expect("--smc-json expects a path");
            }
            "--server-json" => {
                args.server_json_path = it.next().expect("--server-json expects a path");
            }
            "--monitor-json" => {
                args.monitor_json_path = it.next().expect("--monitor-json expects a path");
            }
            "--obs-json" => {
                args.obs_json_path = it.next().expect("--obs-json expects a path");
            }
            "--telemetry-json" => {
                args.telemetry_json_path = it.next().expect("--telemetry-json expects a path");
            }
            "--trace-json" => {
                args.trace_json_path = it.next().expect("--trace-json expects a path");
            }
            "--vcd" => {
                args.vcd_path = Some(it.next().expect("--vcd expects a path"));
            }
            "--help" | "-h" => {
                println!(
                    "repro [--fig7] [--fig8] [--speedup] [--tb-sweep] [--campaign] [--faults]\n      \
                     [--smc] [--monitor-bench] [--witness-demo] [--serve-bench]\n      \
                     [--telemetry-bench] [--all] [--jobs N]\n      \
                     [--micro-cases N] [--derived-cases N] [--seed S] [--budget SECS]\n      \
                     [--json PATH|--json=false] [--faults-json PATH] [--smc-json PATH]\n      \
                     [--server-json PATH] [--monitor-json PATH] [--obs-json PATH]\n      \
                     [--telemetry-json PATH] [--trace-json PATH]\n      \
                     [--vcd PATH] [--profile]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    if !(args.fig7
        || args.fig8
        || args.speedup
        || args.tb_sweep
        || args.campaign
        || args.faults
        || args.smc
        || args.monitor
        || args.witness
        || args.serve
        || args.telemetry)
    {
        args.fig7 = true;
        args.fig8 = true;
        args.speedup = true;
        args.tb_sweep = true;
        args.campaign = true;
        args.faults = true;
        args.smc = true;
        args.monitor = true;
        args.witness = true;
        args.serve = true;
        args.telemetry = true;
    }
    args
}

fn main() {
    let args = parse_args();
    let jobs = resolve_jobs(args.scale.jobs);
    println!("Reproduction of \"Verification of Temporal Properties in Automotive");
    println!("Embedded Software\" (DATE 2008) — scaled local measurements.");
    println!(
        "campaign workers: {jobs} (host parallelism {})\n",
        resolve_jobs(0)
    );

    if args.fig7 {
        println!("== Fig. 7: BLAST- and CBMC-baseline results ==");
        println!(
            "{:<10} {:>12} {:<14} {:>12} {:<20}",
            "Property", "BLAST V.T.(s)", "Result", "CBMC V.T.(s)", "Result"
        );
        for row in fig7(args.scale) {
            println!(
                "{:<10} {:>12} {:<14} {:>12} {:<20}",
                row.op.to_string(),
                secs(row.blast_time),
                row.blast_result,
                secs(row.cbmc_time),
                row.cbmc_result
            );
        }
        println!(
            "(paper: every BLAST run aborted with an exception; every CBMC run\n\
             exceeded 5 h unwinding loops at bound 20)\n"
        );
    }

    if args.fig8 {
        println!("== Fig. 8: 1st and 2nd approach results ==");
        println!(
            "(scaled: {} cases for approach 1, {} for approach 2 TB-1000;\n\
             paper used 100,000 and 1,000,000; sharded over {jobs} workers)",
            args.scale.micro_cases, args.scale.derived_cases
        );
        for column in fig8(args.scale) {
            println!("\n-- {} --", column.label);
            println!(
                "{:<10} {:>10} {:>12} {:>8} {:>8} {:>10} {:>6} {:>10}",
                "Property", "V.T.(s)", "synth(s)", "T.C.", "C.(%)", "verdict", "viol", "cases/s"
            );
            for cell in &column.cells {
                println!(
                    "{:<10} {:>10} {:>12} {:>8} {:>8.1} {:>10} {:>6} {:>10.0}",
                    cell.op.to_string(),
                    secs(cell.vt),
                    secs(cell.synthesis),
                    cell.tc,
                    cell.coverage,
                    cell.verdict,
                    cell.violations,
                    cell.cases_per_sec
                );
            }
        }
        println!();
    }

    if args.speedup {
        println!("== Speedup: approach 2 vs approach 1 (Section 4.3) ==");
        let s = speedup(args.scale.micro_cases, args.scale.seed, args.scale.jobs);
        println!(
            "approach 1: {} s over {} processor ticks",
            secs(s.micro),
            s.micro_ticks
        );
        println!(
            "approach 2: {} s over {} statements",
            secs(s.derived),
            s.derived_ticks
        );
        println!(
            "speedup: {:.1}x  (paper: up to 900x; shape check — approach 2 must win)\n",
            s.factor
        );
    }

    if args.tb_sweep {
        println!("== Time-bound sweep (Section 4.3 trends) ==");
        println!(
            "{:>10} {:>10} {:>14} {:>12} {:>10} {:>10} {:>8}",
            "bound", "AR states", "AR gen (s)", "coverage(%)", "run (s)", "synth(s)", "hit%"
        );
        for row in tb_sweep(args.scale.derived_cases, args.scale.seed, args.scale.jobs) {
            println!(
                "{:>10} {:>10} {:>14} {:>12.1} {:>10} {:>10} {:>8.0}",
                row.bound
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "none".to_owned()),
                row.synthesis.states,
                format!("{:.4}", row.synthesis.generation_time.as_secs_f64()),
                row.coverage,
                secs(row.wall),
                secs(row.synthesis_wall),
                100.0 * row.cache_hit_rate
            );
        }
        println!(
            "(paper: larger bounds cost AR generation time; coverage grows with\n\
             the number of test cases a configuration runs; registration-time\n\
             synthesis is reported separately, summed over shards)\n"
        );
    }

    if args.campaign {
        println!("== Parallel campaigns: jobs=1 vs jobs={jobs} ==");
        let rows = campaign_bench(args.scale);
        println!(
            "{:<8} {:<9} {:>5} {:>8} {:>9} {:>10} {:>10} {:>10} {:>6} {:>8}",
            "flow",
            "config",
            "jobs",
            "cases",
            "wall(s)",
            "synth(s)",
            "cases/s",
            "hit rate",
            "viol",
            "C.(%)"
        );
        for row in &rows {
            println!(
                "{:<8} {:<9} {:>5} {:>8} {:>9} {:>10} {:>10.0} {:>9.0}% {:>6} {:>8.1}",
                row.flow,
                row.config,
                row.jobs,
                row.test_cases,
                secs(row.wall),
                secs(row.synthesis_wall),
                row.cases_per_sec,
                100.0 * row.cache_hit_rate,
                row.violations,
                row.coverage
            );
        }
        for (serial, parallel) in rows.iter().filter(|r| r.jobs == 1).filter_map(|s| {
            rows.iter()
                .find(|p| p.jobs != 1 && p.flow == s.flow && p.config == s.config)
                .map(|p| (s, p))
        }) {
            println!(
                "{} {}: {:.2}x speedup at jobs={} (identical verdicts/coverage by construction)",
                serial.flow,
                serial.config,
                serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9),
                parallel.jobs
            );
        }
        if args.write_json {
            let doc = render_campaign_bench_json(&rows);
            match std::fs::write(&args.json_path, &doc) {
                Ok(()) => println!("wrote {}", args.json_path),
                Err(e) => eprintln!("could not write {}: {e}", args.json_path),
            }
        }
    }

    if args.faults {
        println!("== Fault injection & recovery: jobs=1 vs jobs={jobs} ==");
        let rows = faults_bench(args.scale);
        println!(
            "{:<8} {:>5} {:>8} {:>9} {:>7} {:>6} {:>5} {:>5} {:>5} {:>5} {:>10} {:>8}",
            "flow",
            "jobs",
            "cases",
            "wall(s)",
            "planned",
            "fired",
            "det",
            "cuts",
            "rec",
            "corr",
            "recovery",
            "intact"
        );
        for row in &rows {
            println!(
                "{:<8} {:>5} {:>8} {:>9} {:>7} {:>6} {:>5} {:>5} {:>5} {:>5} {:>10} {:>8}",
                row.flow,
                row.jobs,
                row.test_cases,
                secs(row.wall),
                row.planned,
                row.fired,
                row.detected,
                row.power_losses,
                row.recovered,
                row.corrupted,
                row.recovery_verdict,
                row.intact_verdict
            );
        }
        // Worker-count independence is a hard guarantee, not a hope:
        // refuse to write benchmark artifacts from a broken merge.
        let mut broken = false;
        for serial in rows.iter().filter(|r| r.jobs == 1) {
            for parallel in rows.iter().filter(|p| p.jobs != 1 && p.flow == serial.flow) {
                if serial.fingerprint != parallel.fingerprint {
                    eprintln!(
                        "FAIL: {} fault matrix diverges between jobs=1 ({}) and jobs={} ({})",
                        serial.flow, serial.fingerprint, parallel.jobs, parallel.fingerprint
                    );
                    broken = true;
                } else {
                    println!(
                        "{}: matrix fingerprint {} identical at jobs=1 and jobs={}",
                        serial.flow, serial.fingerprint, parallel.jobs
                    );
                }
            }
        }
        if broken {
            std::process::exit(1);
        }
        println!("\n-- derived-flow detection matrix (jobs={jobs}) --");
        let report = faults::run_fault_campaign(
            &faults::FaultCampaignSpec::derived(args.scale.derived_cases, args.scale.seed)
                .with_jobs(args.scale.jobs),
        );
        println!("{}", report.matrix.to_table());
        if args.write_json {
            let doc = render_faults_bench_json(&rows);
            match std::fs::write(&args.faults_json_path, &doc) {
                Ok(()) => println!("wrote {}", args.faults_json_path),
                Err(e) => eprintln!("could not write {}: {e}", args.faults_json_path),
            }
        }
    }

    if args.smc {
        println!("== Statistical model checking: SPRT vs Chernoff budget, jobs=1 vs jobs={jobs} ==");
        let rows = smc_bench(args.scale);
        println!(
            "{:<16} {:>6} {:>5} {:>10} {:>8} {:>8} {:>7} {:>8} {:>7} {:>6} {:>9}",
            "query",
            "theta",
            "jobs",
            "verdict",
            "samples",
            "chernoff",
            "p_hat",
            "issued",
            "disc",
            "wall",
            "saved"
        );
        for row in &rows {
            println!(
                "{:<16} {:>6.3} {:>5} {:>10} {:>8} {:>8} {:>7.4} {:>8} {:>7} {:>6} {:>9}",
                row.label,
                row.theta,
                row.jobs,
                row.verdict,
                row.samples,
                row.chernoff_bound,
                row.p_hat,
                row.issued,
                row.discarded,
                secs(row.wall),
                row.chernoff_bound.saturating_sub(row.samples)
            );
        }
        // Two hard guarantees gate the artifact: the report must be
        // worker-count independent, and the sequential test must actually
        // beat the fixed-sample budget it exists to undercut.
        let mut broken = false;
        for serial in rows.iter().filter(|r| r.jobs == 1) {
            for parallel in rows.iter().filter(|p| p.jobs != 1 && p.label == serial.label) {
                if serial.fingerprint != parallel.fingerprint {
                    eprintln!(
                        "FAIL: {} report diverges between jobs=1 ({}) and jobs={} ({})",
                        serial.label, serial.fingerprint, parallel.jobs, parallel.fingerprint
                    );
                    broken = true;
                } else {
                    println!(
                        "{}: report fingerprint {} identical at jobs=1 and jobs={}",
                        serial.label, serial.fingerprint, parallel.jobs
                    );
                }
            }
        }
        for row in rows.iter().filter(|r| r.method == "sprt") {
            if row.verdict == "undecided" {
                eprintln!(
                    "FAIL: {} left undecided after {} samples (budget {})",
                    row.label, row.samples, row.chernoff_bound
                );
                broken = true;
            }
            if row.samples >= row.chernoff_bound {
                eprintln!(
                    "FAIL: {} spent {} samples, no better than the Chernoff bound {}",
                    row.label, row.samples, row.chernoff_bound
                );
                broken = true;
            }
        }
        if broken {
            std::process::exit(1);
        }
        if let Some(row) = rows.first() {
            println!(
                "\nearly stopping: {} decided \"{}\" in {} samples vs a {}-sample fixed budget",
                row.label, row.verdict, row.samples, row.chernoff_bound
            );
        }
        println!("\n-- fails-direction report (jobs={jobs}) --");
        let report = sctc_smc::run_smc_campaign(
            &sctc_smc::SmcSpec::planted_torn(
                sctc_campaign::FlowKind::Derived,
                100,
                args.scale.seed,
            )
            .with_query(sctc_smc::SmcQuery::new(0.95, 0.025))
            .with_jobs(args.scale.jobs),
        );
        println!("{}", report.to_table());
        if args.write_json {
            let doc = render_smc_bench_json(&rows);
            match std::fs::write(&args.smc_json_path, &doc) {
                Ok(()) => println!("wrote {}", args.smc_json_path),
                Err(e) => eprintln!("could not write {}: {e}", args.smc_json_path),
            }
        }
    }

    if args.monitor {
        println!("== Monitoring engines: naive vs table vs lazy vs compiled ==");
        let rows = monitor_bench(args.scale);
        println!(
            "{:<18} {:<9} {:<8} {:>8} {:>12} {:>6} {:>12} {:>9} {:>9} {:>9} {:>9} {:>6} {:>6}",
            "campaign",
            "config",
            "flow",
            "cases",
            "atoms eval",
            "eval%",
            "compressed",
            "naive(s)",
            "table(s)",
            "lazy(s)",
            "compl(s)",
            "c/t",
            "equal"
        );
        let mut diverged = false;
        let mut guard_broken = false;
        for row in &rows {
            let pct = if row.driven.atoms_total == 0 {
                0.0
            } else {
                100.0 * row.driven.atoms_evaluated as f64 / row.driven.atoms_total as f64
            };
            let ratio = row.compiled_wall.as_secs_f64() / row.driven_wall.as_secs_f64().max(1e-9);
            println!(
                "{:<18} {:<9} {:<8} {:>8} {:>12} {:>5.1}% {:>12} {:>9} {:>9} {:>9} {:>9} {:>6.2} {:>6}",
                row.campaign,
                row.config,
                row.flow,
                row.cases,
                row.driven.atoms_evaluated,
                pct,
                row.driven.steps_compressed,
                secs(row.naive_wall),
                secs(row.driven_wall),
                secs(row.lazy_wall),
                secs(row.compiled_wall),
                ratio,
                row.fingerprints_equal
            );
            if !row.fingerprints_equal {
                eprintln!(
                    "FAIL: {} {} ({}) — monitoring engines diverge",
                    row.campaign, row.config, row.flow
                );
                diverged = true;
            }
        }
        // The perf guard bites on the fig8 derived rows only: they are
        // long enough to time reliably, and the compiled tier's whole
        // reason to exist is beating the table engine there. Summing the
        // rows' min-of-4 walls before taking the ratio halves the
        // relative noise of a single ±ms-scale row.
        if let Some(max_ratio) = args.guard_ratio {
            let (compiled, table) = rows
                .iter()
                .filter(|r| r.campaign == "fig8" && r.flow == "derived")
                .fold((0.0, 0.0), |(c, t), r| {
                    (
                        c + r.compiled_wall.as_secs_f64(),
                        t + r.driven_wall.as_secs_f64(),
                    )
                });
            let ratio = compiled / table.max(1e-9);
            if ratio > max_ratio {
                eprintln!(
                    "FAIL: fig8 derived — compiled/table wall ratio {ratio:.3} \
                     (summed over rows) exceeds the --guard-ratio {max_ratio:.3}"
                );
                guard_broken = true;
            } else {
                println!(
                    "perf guard: compiled/table = {ratio:.3} on fig8 derived \
                     (limit {max_ratio:.3})"
                );
            }
        }
        println!("\n-- instruction decode: table vs legacy on the clocked SoC --");
        let (decode_rows, decode_equal) = decode_bench();
        println!(
            "{:<14} {:<7} {:<7} {:>10} {:>12} {:>9} {:>14}",
            "variant", "isa", "legacy", "text(B)", "cycles", "wall(s)", "cycles/s"
        );
        for row in &decode_rows {
            println!(
                "{:<14} {:<7} {:<7} {:>10} {:>12} {:>9} {:>14.0}",
                row.variant,
                row.isa,
                row.legacy_decode,
                row.text_bytes,
                row.cycles,
                secs(row.wall),
                row.cycles_per_sec
            );
        }
        if !decode_equal {
            eprintln!("FAIL: decode bench — encoding/decoder variants serve different values");
            diverged = true;
        }
        // Engine equivalence is the pipeline's hard contract: refuse to
        // publish benchmark numbers from diverging engines. The perf
        // guard is a softer contract enforced only when CI asks for it.
        if diverged || guard_broken {
            std::process::exit(1);
        }
        println!(
            "(all result fingerprints identical across the four engines; walls\n\
             are min-of-4 with alternating engine order; c/t is compiled/table)"
        );
        if args.write_json {
            let doc = render_monitoring_bench_json(&rows, &decode_rows, decode_equal);
            match std::fs::write(&args.monitor_json_path, &doc) {
                Ok(()) => println!("wrote {}", args.monitor_json_path),
                Err(e) => eprintln!("could not write {}: {e}", args.monitor_json_path),
            }
        }
    }

    if args.witness {
        println!("== Diagnosis layer: witnesses, VCD, profiler ==");
        let demos = witness_demo(args.profile);
        let mut failed = false;
        for demo in &demos {
            println!(
                "-- {} flow: intact violated={} decided@{} replay={} vcd={} provenance={} --",
                demo.flow,
                demo.violated,
                demo.decided_at,
                demo.replay_ok,
                demo.vcd_ok,
                demo.provenance_ok
            );
            print!("{}", demo.witness_report);
            println!("monitoring counters:");
            print!("{}", demo.report.monitoring);
            if !demo.report.spans.is_empty() {
                println!("span profile:");
                print!("{}", demo.report.spans);
            }
            println!();
            if !demo.ok() {
                eprintln!("FAIL: {} flow diagnosis checks did not all pass", demo.flow);
                failed = true;
            }
        }
        if let Some(path) = &args.vcd_path {
            // The derived flow's waveform is the canonical artifact; the
            // microprocessor flow's document was validated in memory.
            let text = demos
                .iter()
                .find(|d| d.flow == "derived")
                .map(|d| d.vcd_text.clone())
                .unwrap_or_default();
            match std::fs::write(path, &text) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        let obs = obs_bench(args.scale);
        println!(
            "profiler overhead: plain {} s, profiled {} s ({:+.2}% on {} cases; disabled = 0 by construction)",
            secs(obs.plain_wall),
            secs(obs.profiled_wall),
            obs.overhead_percent,
            obs.cases
        );
        if !obs.spans.is_empty() {
            println!("span profile (merged over shards):");
            print!("{}", obs.spans);
        }
        println!("metrics registry snapshot:");
        print!("{}", obs.metrics);
        if args.write_json {
            let doc = render_obs_json(&obs, &demos);
            match std::fs::write(&args.obs_json_path, &doc) {
                Ok(()) => println!("wrote {}", args.obs_json_path),
                Err(e) => eprintln!("could not write {}: {e}", args.obs_json_path),
            }
        }
        if failed {
            std::process::exit(1);
        }
    }

    if args.serve {
        println!("== Verification service: sustained load over loopback ==");
        let report = serve_bench(args.scale);
        println!(
            "{} clients x {} jobs over {} distinct specs: {:.1} jobs/s in {} s",
            report.clients,
            report.jobs_done / report.clients.max(1) as u64,
            report.distinct_jobs,
            report.jobs_per_sec,
            secs(report.wall)
        );
        println!(
            "served: {} cold, {} hit, {} coalesced (hit rate {:.1}%)",
            report.colds,
            report.hits,
            report.coalesced,
            report.hit_rate * 100.0
        );
        println!(
            "latency: p50 {:.0} us, p99 {:.0} us; cold median {:.0} us, hit median {:.0} us ({:.1}x)",
            report.p50.as_secs_f64() * 1e6,
            report.p99.as_secs_f64() * 1e6,
            report.cold_median.as_secs_f64() * 1e6,
            report.hit_median.as_secs_f64() * 1e6,
            report.speedup
        );
        println!("server counters:");
        for (name, value) in &report.stats {
            println!("  {name} = {value}");
        }
        let mut broken = false;
        if report.divergences > 0 {
            eprintln!(
                "FAIL: {} served digests diverged from in-process runs",
                report.divergences
            );
            broken = true;
        }
        if report.hits == 0 {
            eprintln!("FAIL: repeat-heavy workload produced no cache hits");
            broken = true;
        }
        if report.speedup < 10.0 {
            eprintln!(
                "FAIL: cache-hit latency must be >= 10x lower than cold (got {:.1}x)",
                report.speedup
            );
            broken = true;
        }
        if broken {
            std::process::exit(1);
        }
        println!(
            "(all {} served digests match their in-process runs; cache hits are {:.1}x faster than cold)",
            report.jobs_done, report.speedup
        );
        if args.write_json {
            let doc = render_server_bench_json(&report);
            match std::fs::write(&args.server_json_path, &doc) {
                Ok(()) => println!("wrote {}", args.server_json_path),
                Err(e) => eprintln!("could not write {}: {e}", args.server_json_path),
            }
        }
    }

    if args.telemetry {
        println!("== Telemetry overhead: trace plane off vs on ==");
        let report = telemetry_bench(args.scale);
        println!(
            "{} cases: off {} s, on {} s ({:+.2}% overhead, min-of-10 alternating)",
            report.cases,
            secs(report.off_wall),
            secs(report.on_wall),
            report.overhead_percent
        );
        println!(
            "{} events recorded on the last enabled run; all on/off fingerprints bit-identical",
            report.events.len()
        );
        if args.write_json {
            let doc = render_telemetry_json(&report);
            match std::fs::write(&args.telemetry_json_path, &doc) {
                Ok(()) => println!("wrote {}", args.telemetry_json_path),
                Err(e) => eprintln!("could not write {}: {e}", args.telemetry_json_path),
            }
            let doc = render_chrome_trace(&report.events);
            match std::fs::write(&args.trace_json_path, &doc) {
                Ok(()) => println!("wrote {} (load in chrome://tracing)", args.trace_json_path),
                Err(e) => eprintln!("could not write {}: {e}", args.trace_json_path),
            }
        }
        if report.overhead_percent > 3.0 {
            eprintln!(
                "FAIL: telemetry overhead must stay <= 3% (got {:.2}%)",
                report.overhead_percent
            );
            std::process::exit(1);
        }
    }
}
