//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--fig7] [--fig8] [--speedup] [--tb-sweep] [--all]
//!       [--micro-cases N] [--derived-cases N] [--seed S] [--budget SECS]
//! ```
//!
//! With no table flags, `--all` is assumed. Numbers are scaled-down local
//! measurements; compare shapes against the paper (see EXPERIMENTS.md).

use std::time::Duration;

use sctc_bench::{fig7, fig8, secs, speedup, tb_sweep, Scale};

struct Args {
    fig7: bool,
    fig8: bool,
    speedup: bool,
    tb_sweep: bool,
    scale: Scale,
}

fn parse_args() -> Args {
    let mut args = Args {
        fig7: false,
        fig8: false,
        speedup: false,
        tb_sweep: false,
        scale: Scale::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next_u64 = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects a number"))
        };
        match arg.as_str() {
            "--fig7" => args.fig7 = true,
            "--fig8" => args.fig8 = true,
            "--speedup" => args.speedup = true,
            "--tb-sweep" => args.tb_sweep = true,
            "--all" => {
                args.fig7 = true;
                args.fig8 = true;
                args.speedup = true;
                args.tb_sweep = true;
            }
            "--micro-cases" => args.scale.micro_cases = next_u64("--micro-cases"),
            "--derived-cases" => args.scale.derived_cases = next_u64("--derived-cases"),
            "--seed" => args.scale.seed = next_u64("--seed"),
            "--budget" => {
                args.scale.checker_budget = Duration::from_secs(next_u64("--budget"))
            }
            "--help" | "-h" => {
                println!(
                    "repro [--fig7] [--fig8] [--speedup] [--tb-sweep] [--all]\n      \
                     [--micro-cases N] [--derived-cases N] [--seed S] [--budget SECS]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    if !(args.fig7 || args.fig8 || args.speedup || args.tb_sweep) {
        args.fig7 = true;
        args.fig8 = true;
        args.speedup = true;
        args.tb_sweep = true;
    }
    args
}

fn main() {
    let args = parse_args();
    println!("Reproduction of \"Verification of Temporal Properties in Automotive");
    println!("Embedded Software\" (DATE 2008) — scaled local measurements.\n");

    if args.fig7 {
        println!("== Fig. 7: BLAST- and CBMC-baseline results ==");
        println!(
            "{:<10} {:>12} {:<14} {:>12} {:<20}",
            "Property", "BLAST V.T.(s)", "Result", "CBMC V.T.(s)", "Result"
        );
        for row in fig7(args.scale) {
            println!(
                "{:<10} {:>12} {:<14} {:>12} {:<20}",
                row.op.to_string(),
                secs(row.blast_time),
                row.blast_result,
                secs(row.cbmc_time),
                row.cbmc_result
            );
        }
        println!(
            "(paper: every BLAST run aborted with an exception; every CBMC run\n\
             exceeded 5 h unwinding loops at bound 20)\n"
        );
    }

    if args.fig8 {
        println!("== Fig. 8: 1st and 2nd approach results ==");
        println!(
            "(scaled: {} cases for approach 1, {} for approach 2 TB-1000;\n\
             paper used 100,000 and 1,000,000)",
            args.scale.micro_cases, args.scale.derived_cases
        );
        for column in fig8(args.scale) {
            println!("\n-- {} --", column.label);
            println!(
                "{:<10} {:>10} {:>12} {:>8} {:>8} {:>10} {:>6}",
                "Property", "V.T.(s)", "synth(s)", "T.C.", "C.(%)", "verdict", "viol"
            );
            for cell in &column.cells {
                println!(
                    "{:<10} {:>10} {:>12} {:>8} {:>8.1} {:>10} {:>6}",
                    cell.op.to_string(),
                    secs(cell.vt),
                    secs(cell.synthesis),
                    cell.tc,
                    cell.coverage,
                    cell.verdict,
                    cell.violations
                );
            }
        }
        println!();
    }

    if args.speedup {
        println!("== Speedup: approach 2 vs approach 1 (Section 4.3) ==");
        let s = speedup(args.scale.micro_cases, args.scale.seed);
        println!(
            "approach 1: {} s over {} processor ticks",
            secs(s.micro),
            s.micro_ticks
        );
        println!(
            "approach 2: {} s over {} statements",
            secs(s.derived),
            s.derived_ticks
        );
        println!(
            "speedup: {:.1}x  (paper: up to 900x; shape check — approach 2 must win)\n",
            s.factor
        );
    }

    if args.tb_sweep {
        println!("== Time-bound sweep (Section 4.3 trends) ==");
        println!(
            "{:>10} {:>10} {:>14} {:>12} {:>10}",
            "bound", "AR states", "AR gen (s)", "coverage(%)", "wall (s)"
        );
        for row in tb_sweep(args.scale.derived_cases, args.scale.seed) {
            println!(
                "{:>10} {:>10} {:>14} {:>12.1} {:>10}",
                row.bound
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "none".to_owned()),
                row.synthesis.states,
                format!("{:.4}", row.synthesis.generation_time.as_secs_f64()),
                row.coverage,
                secs(row.wall)
            );
        }
        println!(
            "(paper: larger bounds cost AR generation time; coverage grows with\n\
             the number of test cases a configuration runs)"
        );
    }
}
