//! # sctc-bench — the reproduction harness
//!
//! One runner per table/figure of the paper's evaluation (Section 4),
//! returning structured rows that the `repro` binary renders and the
//! bench targets time (via the in-tree [`timing`] harness — see the
//! `bench-criterion` feature note in the manifest):
//!
//! * [`fig7`] — BLAST/CBMC baseline table (exceptions and unwinding
//!   resource-outs per property),
//! * [`fig8`] — the 1st/2nd-approach table: verification time, test cases
//!   and return-value coverage per property and configuration,
//! * [`speedup`] — the "up to 900×" approach-2-vs-approach-1 comparison,
//! * [`tb_sweep`] — coverage and AR-synthesis cost versus the time bound.
//!
//! Scaling: the paper's runs took hours on 2008 hardware with up to 10^5
//! (approach 1) and 10^6 (approach 2) test cases. The runners scale test
//! cases and budgets down by a configurable factor and compare *shapes*,
//! not absolute numbers; see EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod json;
pub mod serve;
pub mod timing;

pub use serve::{render_server_bench_json, serve_bench, ServerBenchReport};

use std::time::Duration;

use checkers::bmc::{self, BmcConfig, BmcOutcome, SafetySpec};
use checkers::predabs::{self, PredAbsConfig, PredAbsOutcome};
use eee::{build_ir, ExperimentConfig, Op};
use faults::{run_fault_campaign, FaultCampaignReport, FaultCampaignSpec};
use sctc_campaign::{resolve_jobs, run_campaign, CampaignReport, CampaignSpec, FlowKind};
use sctc_core::{EngineKind, MonitorCounters};
use sctc_cpu::IsaKind;
use sctc_temporal::{ArAutomaton, CacheStats, SynthesisCache, SynthesisStats};

/// Scale factors for a local run.
#[derive(Copy, Clone, Debug)]
pub struct Scale {
    /// Test cases for approach 1 (paper: 100,000).
    pub micro_cases: u64,
    /// Test cases for approach 2 (paper: 1,000,000).
    pub derived_cases: u64,
    /// Wall budget per baseline-checker property (paper: >5 h).
    pub checker_budget: Duration,
    /// Testbench seed.
    pub seed: u64,
    /// Campaign worker threads (`0` = all available cores). Changes
    /// wall-clock only: verdicts, coverage and case counts are
    /// bit-identical for any value.
    pub jobs: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            micro_cases: 40,
            derived_cases: 400,
            checker_budget: Duration::from_secs(10),
            seed: 20080310,
            jobs: 0,
        }
    }
}

/// The mailbox input constraints used for every baseline-checker property:
/// the operation code is pinned, the arguments range over the constrained
/// input space (paper: "all the input variables have to be constrained").
pub fn spec_for(op: Op) -> SafetySpec {
    let mut allowed: Vec<i32> = op.specified_returns().iter().map(|r| r.code()).collect();
    // The dispatcher also reports parameter errors for out-of-range ids.
    if !allowed.contains(&eee::RetCode::ErrorParam.code()) {
        allowed.push(eee::RetCode::ErrorParam.code());
    }
    SafetySpec {
        inputs: vec![
            ("req_op".to_owned(), op.code(), op.code()),
            ("req_arg0".to_owned(), -2, 20),
            ("req_arg1".to_owned(), 0, 1000),
            // The operation must be checked from an arbitrary reachable
            // emulation state, not only from cold boot.
            ("eee_ready".to_owned(), 0, 1),
            ("eee_su1_done".to_owned(), 0, 1),
            ("eee_active_page".to_owned(), 0, 3),
            ("eee_recv_page".to_owned(), -1, 3),
            ("eee_used".to_owned(), 0, 15),
        ],
        observed: "eee_last_ret".to_owned(),
        allowed,
    }
}

/// One row of the Fig. 7 table.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Property (operation).
    pub op: Op,
    /// BLAST-baseline verification time.
    pub blast_time: Duration,
    /// BLAST-baseline result rendered like the paper ("Exception", ...).
    pub blast_result: String,
    /// CBMC-baseline verification time.
    pub cbmc_time: Duration,
    /// CBMC-baseline result ("> unwind", ...).
    pub cbmc_result: String,
}

/// Reproduces Fig. 7: both baseline checkers on every property.
pub fn fig7(scale: Scale) -> Vec<Fig7Row> {
    let ir = build_ir();
    Op::ALL
        .into_iter()
        .map(|op| {
            let spec = spec_for(op);
            let t0 = std::time::Instant::now();
            let blast = predabs::check(
                &ir,
                &spec,
                PredAbsConfig {
                    wall_budget: scale.checker_budget,
                    ..PredAbsConfig::default()
                },
            );
            let blast_time = t0.elapsed();
            let blast_result = match blast {
                PredAbsOutcome::Safe => "Safe".to_owned(),
                PredAbsOutcome::Violated { .. } => "Violated".to_owned(),
                PredAbsOutcome::Inconclusive { .. } => "Inconclusive".to_owned(),
                PredAbsOutcome::Exception(_) => "Exception".to_owned(),
                PredAbsOutcome::ResourceOut { .. } => "Timeout".to_owned(),
            };
            let t0 = std::time::Instant::now();
            let cbmc = bmc::check(
                &ir,
                &spec,
                BmcConfig {
                    wall_budget: scale.checker_budget,
                    max_conflicts: 500_000,
                    max_clauses: 3_000_000,
                    ..BmcConfig::default()
                },
            );
            let cbmc_time = t0.elapsed();
            let cbmc_result = match cbmc {
                Ok(BmcOutcome::BoundedOk { .. }) => "Bounded OK".to_owned(),
                Ok(BmcOutcome::Violated { .. }) => "Violated".to_owned(),
                Ok(BmcOutcome::ResourceOut { reason, .. }) => {
                    // The paper's table renders every resource-out as
                    // "> unwind": the bound is never exhausted in budget.
                    if reason.contains("unwinding") {
                        "> unwind".to_owned()
                    } else {
                        "> unwind (budget)".to_owned()
                    }
                }
                Err(e) => format!("unsupported ({e})"),
            };
            Fig7Row {
                op,
                blast_time,
                blast_result,
                cbmc_time,
                cbmc_result,
            }
        })
        .collect()
}

/// One cell group of the Fig. 8 table.
#[derive(Clone, Debug)]
pub struct Fig8Cell {
    /// Property (operation).
    pub op: Op,
    /// Verification time: campaign wall plus synthesis wall.
    pub vt: Duration,
    /// Time spent synthesizing AR-automata (reported separately; near
    /// zero once the shared cache is warm).
    pub synthesis: Duration,
    /// Test cases applied.
    pub tc: u64,
    /// Return-value coverage of this operation in percent.
    pub coverage: f64,
    /// Monitor verdict rendered as text (safety properties stay pending).
    pub verdict: String,
    /// Violations observed (must be none).
    pub violations: usize,
    /// Completed cases per second of campaign wall.
    pub cases_per_sec: f64,
}

/// One configuration (column group) of Fig. 8.
#[derive(Clone, Debug)]
pub struct Fig8Column {
    /// Configuration label, e.g. "2nd TB-1000".
    pub label: String,
    /// Per-operation cells.
    pub cells: Vec<Fig8Cell>,
}

/// The campaign spec matching one Fig. 8 configuration with a single
/// property registered (the paper reports per-property verification runs).
fn fig8_spec(micro: bool, op: Op, bound: Option<u64>, cases: u64, seed: u64) -> CampaignSpec {
    let spec = if micro {
        CampaignSpec::micro(cases, seed)
    } else {
        CampaignSpec::derived(cases, seed)
    };
    spec.with_op(op).with_bound(bound)
}

/// Runs one flow configuration as a sharded campaign — one campaign per
/// property, fanned out over `jobs` workers.
fn fig8_column(
    label: &str,
    micro: bool,
    bound: Option<u64>,
    cases: u64,
    seed: u64,
    jobs: usize,
) -> Fig8Column {
    let cells = Op::ALL
        .into_iter()
        .map(|op| {
            let report = run_campaign(&fig8_spec(micro, op, bound, cases, seed).with_jobs(jobs));
            let prop = &report.properties[0];
            Fig8Cell {
                op,
                vt: report.wall + report.synthesis_wall,
                synthesis: report.synthesis_wall,
                tc: report.test_cases,
                coverage: report
                    .coverage_percent
                    .iter()
                    .find(|(o, _)| *o == op)
                    .map(|(_, pct)| *pct)
                    .unwrap_or(0.0),
                verdict: prop.verdict.to_string(),
                violations: report.violations.len(),
                cases_per_sec: report.cases_per_sec(),
            }
        })
        .collect();
    Fig8Column {
        label: label.to_owned(),
        cells,
    }
}

/// Runs one flow with exactly one operation's property registered.
pub fn run_one_property(
    micro: bool,
    op: Op,
    bound: Option<u64>,
    cases: u64,
    seed: u64,
) -> eee::ExperimentOutcome {
    // Reuse the assembled experiments but restrict properties by running
    // the full set and reporting the one of interest? No — per-property
    // timing matters; use a dedicated config instead.
    let config = ExperimentConfig {
        seed,
        cases,
        bound,
        fault_percent: 10,
        engine: EngineKind::Table,
        isa: IsaKind::Word32,
        max_ticks: u64::MAX / 2,
        profile: false,
    };
    if micro {
        eee::run_micro_single(op, config)
    } else {
        eee::run_derived_single(op, config)
    }
}

/// Reproduces Fig. 8: approach 1 without time bound, approach 2 with
/// TB-1000 / TB-10000 / no bound.
pub fn fig8(scale: Scale) -> Vec<Fig8Column> {
    let jobs = scale.jobs;
    vec![
        fig8_column("1st No-TB", true, None, scale.micro_cases, scale.seed, jobs),
        fig8_column(
            "2nd TB-1000",
            false,
            Some(1000),
            scale.derived_cases,
            scale.seed,
            jobs,
        ),
        fig8_column(
            "2nd TB-10000",
            false,
            Some(10_000),
            // The paper ran more cases for the larger-bound configuration.
            scale.derived_cases * 2,
            scale.seed,
            jobs,
        ),
        fig8_column(
            "2nd No-TB",
            false,
            None,
            // ... and the most for the pure-LTL configuration.
            scale.derived_cases * 4,
            scale.seed,
            jobs,
        ),
    ]
}

/// Result of the speedup comparison (Section 4.3: "speedup of up to 900").
#[derive(Clone, Debug)]
pub struct SpeedupResult {
    /// Wall time of approach 1.
    pub micro: Duration,
    /// Wall time of approach 2.
    pub derived: Duration,
    /// Simulated processor cycles in approach 1.
    pub micro_ticks: u64,
    /// Executed statements in approach 2.
    pub derived_ticks: u64,
    /// micro / derived wall-time ratio.
    pub factor: f64,
}

/// Measures both flows on identical workloads (same property, same cases),
/// each run as a campaign over `jobs` workers (`0` = all cores).
pub fn speedup(cases: u64, seed: u64, jobs: usize) -> SpeedupResult {
    let micro = run_campaign(&fig8_spec(true, Op::Read, None, cases, seed).with_jobs(jobs));
    let derived = run_campaign(&fig8_spec(false, Op::Read, None, cases, seed).with_jobs(jobs));
    let m = micro.wall;
    let d = derived.wall.max(Duration::from_micros(1));
    SpeedupResult {
        micro: m,
        derived: derived.wall,
        micro_ticks: micro.sim_ticks,
        derived_ticks: derived.sim_ticks,
        factor: m.as_secs_f64() / d.as_secs_f64(),
    }
}

/// One row of the time-bound sweep.
#[derive(Clone, Debug)]
pub struct TbSweepRow {
    /// The bound (`None` = pure LTL).
    pub bound: Option<u64>,
    /// AR-automaton synthesis statistics of the Read property.
    pub synthesis: SynthesisStats,
    /// Overall coverage after the run.
    pub coverage: f64,
    /// Campaign fan-out wall-clock (cold synthesis inside shards overlaps
    /// it; the per-shard sum is reported separately).
    pub wall: Duration,
    /// Summed per-shard registration-time synthesis wall (near zero once
    /// the shared cache is warm).
    pub synthesis_wall: Duration,
    /// Completed cases per second of campaign wall.
    pub cases_per_sec: f64,
    /// Synthesis-cache hit rate during this row's campaign.
    pub cache_hit_rate: f64,
}

/// Sweeps the time bound: AR-synthesis cost grows with the bound (the
/// "large AR-automaton generation time" of Section 4.3) while the runtime
/// behaviour stays unchanged. Each row is a sharded campaign over `jobs`
/// workers (`0` = all cores).
pub fn tb_sweep(cases: u64, seed: u64, jobs: usize) -> Vec<TbSweepRow> {
    [Some(100), Some(1000), Some(10_000), None]
        .into_iter()
        .map(|bound| {
            let stats = synthesis_stats_for_bound(bound);
            let report =
                run_campaign(&fig8_spec(false, Op::Read, bound, cases, seed).with_jobs(jobs));
            TbSweepRow {
                bound,
                synthesis: stats,
                coverage: report.overall_coverage,
                wall: report.wall,
                synthesis_wall: report.synthesis_wall,
                cases_per_sec: report.cases_per_sec(),
                cache_hit_rate: report.cache.hit_rate(),
            }
        })
        .collect()
}

/// Synthesizes the Read response property's AR-automaton for a bound.
pub fn synthesis_stats_for_bound(bound: Option<u64>) -> SynthesisStats {
    let f = eee::response_property(Op::Read, bound);
    ArAutomaton::synthesize(&f)
        .expect("response property synthesizes")
        .stats()
}

/// One row of `BENCH_campaign.json`: one campaign configuration measured
/// at one worker count.
#[derive(Clone, Debug)]
pub struct CampaignBenchRow {
    /// Flow name (`"derived"` or `"micro"`).
    pub flow: String,
    /// Configuration label (`"TB-1000"`, `"no-TB"`, ...).
    pub config: String,
    /// The time bound (`None` = pure LTL).
    pub bound: Option<u64>,
    /// Worker threads used.
    pub jobs: usize,
    /// Planned case budget.
    pub cases: u64,
    /// Test cases actually completed.
    pub test_cases: u64,
    /// Campaign fan-out wall-clock.
    pub wall: Duration,
    /// Sum of individual shard walls (≈ CPU time).
    pub shard_wall_sum: Duration,
    /// Summed per-shard registration-time synthesis wall.
    pub synthesis_wall: Duration,
    /// Completed cases per second of campaign wall.
    pub cases_per_sec: f64,
    /// Synthesis-cache hits during the campaign.
    pub cache_hits: u64,
    /// Synthesis-cache misses during the campaign.
    pub cache_misses: u64,
    /// Cache hit rate during the campaign.
    pub cache_hit_rate: f64,
    /// Mean return-value coverage over all operations, in percent.
    pub coverage: f64,
    /// Property violations observed (must stay zero).
    pub violations: usize,
}

impl CampaignBenchRow {
    fn from_report(flow: &str, config: &str, bound: Option<u64>, report: &CampaignReport) -> Self {
        CampaignBenchRow {
            flow: flow.to_owned(),
            config: config.to_owned(),
            bound,
            jobs: report.jobs,
            cases: report.total_cases,
            test_cases: report.test_cases,
            wall: report.wall,
            shard_wall_sum: report.shard_wall_sum,
            synthesis_wall: report.synthesis_wall,
            cases_per_sec: report.cases_per_sec(),
            cache_hits: report.cache.hits,
            cache_misses: report.cache.misses,
            cache_hit_rate: report.cache.hit_rate(),
            coverage: report.overall_coverage,
            violations: report.violations.len(),
        }
    }
}

/// Runs the paper's campaign configurations at `jobs = 1` and at the
/// scale's worker count, producing the rows of `BENCH_campaign.json`.
/// All seven response properties are registered at once in every
/// campaign, so the synthesis cache's `properties × shards` collapse is
/// visible in the cache columns.
pub fn campaign_bench(scale: Scale) -> Vec<CampaignBenchRow> {
    let parallel = resolve_jobs(scale.jobs);
    let mut job_counts = vec![1usize];
    if parallel != 1 {
        job_counts.push(parallel);
    }
    let configs: [(&str, &str, Option<u64>, u64); 4] = [
        ("derived", "TB-1000", Some(1000), scale.derived_cases),
        ("derived", "TB-10000", Some(10_000), scale.derived_cases),
        ("derived", "no-TB", None, scale.derived_cases),
        ("micro", "no-TB", None, scale.micro_cases),
    ];
    let mut rows = Vec::new();
    for jobs in job_counts {
        for (flow, config, bound, cases) in configs {
            let spec = if flow == "micro" {
                CampaignSpec::micro(cases, scale.seed)
            } else {
                CampaignSpec::derived(cases, scale.seed)
            };
            let report = run_campaign(&spec.with_bound(bound).with_jobs(jobs));
            rows.push(CampaignBenchRow::from_report(flow, config, bound, &report));
        }
    }
    rows
}

/// Renders campaign-bench rows as the `BENCH_campaign.json` document.
pub fn render_campaign_bench_json(rows: &[CampaignBenchRow]) -> String {
    use json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("bench-campaign/v1");
    w.key("host_parallelism");
    w.number(resolve_jobs(0) as f64);
    w.key("rows");
    w.begin_array();
    for row in rows {
        w.begin_object();
        w.key("flow");
        w.string(&row.flow);
        w.key("config");
        w.string(&row.config);
        w.key("bound");
        match row.bound {
            Some(b) => w.number(b as f64),
            None => w.null(),
        }
        w.key("jobs");
        w.number(row.jobs as f64);
        w.key("cases");
        w.number(row.cases as f64);
        w.key("test_cases");
        w.number(row.test_cases as f64);
        w.key("wall_s");
        w.number(row.wall.as_secs_f64());
        w.key("shard_wall_sum_s");
        w.number(row.shard_wall_sum.as_secs_f64());
        w.key("synthesis_wall_s");
        w.number(row.synthesis_wall.as_secs_f64());
        w.key("cases_per_sec");
        w.number(row.cases_per_sec);
        w.key("cache_hits");
        w.number(row.cache_hits as f64);
        w.key("cache_misses");
        w.number(row.cache_misses as f64);
        w.key("cache_hit_rate");
        w.number(row.cache_hit_rate);
        w.key("coverage_percent");
        w.number(row.coverage);
        w.key("violations");
        w.number(row.violations as f64);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// One row of `BENCH_faults.json`: one fault campaign measured at one
/// worker count, with the detection matrix summarised and fingerprinted.
#[derive(Clone, Debug)]
pub struct FaultsBenchRow {
    /// Flow name (`"derived"` or `"micro"`).
    pub flow: String,
    /// Worker threads used.
    pub jobs: usize,
    /// Planned case budget (recovery cases come on top).
    pub cases: u64,
    /// Test cases actually completed, recovery protocol included.
    pub test_cases: u64,
    /// Campaign fan-out wall-clock.
    pub wall: Duration,
    /// Faults scheduled by the plan.
    pub planned: usize,
    /// Faults that actually fired.
    pub fired: usize,
    /// Faults detected in their own test case.
    pub detected: usize,
    /// Deviations attributed to an earlier fault.
    pub late_detections: u64,
    /// Power losses that fired.
    pub power_losses: usize,
    /// Power losses whose recovery protocol succeeded.
    pub recovered: usize,
    /// Committed records that survived all power losses.
    pub survived: u64,
    /// Records corrupted (torn write served, value mismatch, lost).
    pub corrupted: u64,
    /// Merged verdict of `G (reset -> F[<=b] initialized)`, as text.
    pub recovery_verdict: String,
    /// Merged verdict of `G intact`, as text.
    pub intact_verdict: String,
    /// FNV-1a fingerprint of the canonical matrix, as 16 hex digits —
    /// identical for every `jobs` value by construction.
    pub fingerprint: String,
}

impl FaultsBenchRow {
    /// Summarises one fault-campaign report into a bench row.
    pub fn from_report(flow: &str, cases: u64, report: &FaultCampaignReport) -> Self {
        let m = &report.matrix;
        let verdict_text = |name: &str| {
            m.verdict_of(name)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".to_owned())
        };
        FaultsBenchRow {
            flow: flow.to_owned(),
            jobs: report.jobs,
            cases,
            test_cases: m.test_cases,
            wall: report.wall,
            planned: m.records.len(),
            fired: m.records.iter().filter(|r| r.fired).count(),
            detected: m.records.iter().filter(|r| r.detected).count(),
            late_detections: m.records.iter().map(|r| u64::from(r.late_detections)).sum(),
            power_losses: m
                .records
                .iter()
                .filter(|r| r.class == "power-loss" && r.fired)
                .count(),
            recovered: m
                .records
                .iter()
                .filter(|r| r.recovered == Some(true))
                .count(),
            survived: m.records.iter().map(|r| u64::from(r.survived)).sum(),
            corrupted: m.records.iter().map(|r| u64::from(r.corrupted)).sum(),
            recovery_verdict: verdict_text("recovery"),
            intact_verdict: verdict_text("intact"),
            fingerprint: format!("{:016x}", m.fingerprint()),
        }
    }
}

/// Runs the fault campaigns (both flows) at `jobs = 1` and at the scale's
/// worker count, producing the rows of `BENCH_faults.json`. The serial
/// and parallel fingerprints of a flow must be identical — `repro
/// --faults` enforces this.
pub fn faults_bench(scale: Scale) -> Vec<FaultsBenchRow> {
    let parallel = resolve_jobs(scale.jobs);
    let mut job_counts = vec![1usize];
    if parallel != 1 {
        job_counts.push(parallel);
    }
    let mut rows = Vec::new();
    for jobs in job_counts {
        for (flow, cases) in [
            ("derived", scale.derived_cases),
            ("micro", scale.micro_cases),
        ] {
            let spec = if flow == "micro" {
                FaultCampaignSpec::micro(cases, scale.seed)
            } else {
                FaultCampaignSpec::derived(cases, scale.seed)
            };
            let report = run_fault_campaign(&spec.with_jobs(jobs));
            rows.push(FaultsBenchRow::from_report(flow, cases, &report));
        }
    }
    rows
}

/// Renders fault-bench rows as the `BENCH_faults.json` document.
pub fn render_faults_bench_json(rows: &[FaultsBenchRow]) -> String {
    use json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("bench-faults/v1");
    w.key("host_parallelism");
    w.number(resolve_jobs(0) as f64);
    w.key("rows");
    w.begin_array();
    for row in rows {
        w.begin_object();
        w.key("flow");
        w.string(&row.flow);
        w.key("jobs");
        w.number(row.jobs as f64);
        w.key("cases");
        w.number(row.cases as f64);
        w.key("test_cases");
        w.number(row.test_cases as f64);
        w.key("wall_s");
        w.number(row.wall.as_secs_f64());
        w.key("faults_planned");
        w.number(row.planned as f64);
        w.key("faults_fired");
        w.number(row.fired as f64);
        w.key("faults_detected");
        w.number(row.detected as f64);
        w.key("late_detections");
        w.number(row.late_detections as f64);
        w.key("power_losses");
        w.number(row.power_losses as f64);
        w.key("recovered");
        w.number(row.recovered as f64);
        w.key("records_survived");
        w.number(row.survived as f64);
        w.key("records_corrupted");
        w.number(row.corrupted as f64);
        w.key("recovery_verdict");
        w.string(&row.recovery_verdict);
        w.key("intact_verdict");
        w.string(&row.intact_verdict);
        w.key("matrix_fingerprint");
        w.string(&row.fingerprint);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// One row of `BENCH_smc.json`: one statistical campaign measured at one
/// worker count, with the hypothesis-test answer and the sequential
/// test's sample spend against the fixed-sample Chernoff budget.
#[derive(Clone, Debug)]
pub struct SmcBenchRow {
    /// Query label (`"fails-direction"` / `"holds-direction"`).
    pub label: String,
    /// Flow name.
    pub flow: String,
    /// Workload label.
    pub workload: String,
    /// Estimation method (`"sprt"` / `"chernoff"`).
    pub method: String,
    /// Worker threads used.
    pub jobs: usize,
    /// Threshold under test.
    pub theta: f64,
    /// The campaign's answer, as text.
    pub verdict: String,
    /// Samples accepted by the canonical-order fold.
    pub samples: u64,
    /// Successes among them.
    pub successes: u64,
    /// Empirical success rate.
    pub p_hat: f64,
    /// Hoeffding interval around `p_hat`.
    pub ci: (f64, f64),
    /// The fixed-sample Chernoff budget of the query.
    pub chernoff_bound: u64,
    /// Samples issued to workers (accepted + raced tail).
    pub issued: u64,
    /// Speculative samples discarded after the decision.
    pub discarded: u64,
    /// Campaign wall-clock.
    pub wall: Duration,
    /// Report fingerprint, 16 hex digits — identical for every `jobs`
    /// value by construction.
    pub fingerprint: String,
}

impl SmcBenchRow {
    fn from_report(label: &str, report: &sctc_smc::SmcReport) -> Self {
        SmcBenchRow {
            label: label.to_owned(),
            flow: report.flow.clone(),
            workload: report.workload.clone(),
            method: report.method.clone(),
            jobs: report.jobs,
            theta: report.query.theta,
            verdict: report.verdict.to_string(),
            samples: report.samples,
            successes: report.successes,
            p_hat: report.p_hat(),
            ci: report.confidence_interval(),
            chernoff_bound: report.chernoff_bound,
            issued: report.issued,
            discarded: report.discarded,
            wall: report.wall,
            fingerprint: format!("{:016x}", report.fingerprint()),
        }
    }
}

/// Runs the statistical campaigns of `repro --smc` at `jobs = 1` and at
/// the scale's worker count: a planted 10% failure rate probed from both
/// directions — `theta = 0.95` (the SPRT must answer *fails* far below
/// the Chernoff budget) and `theta = 0.8` (it must answer *holds*). The
/// serial and parallel fingerprints of each query must be identical —
/// `repro --smc` enforces this, plus the early-stopping sample saving.
pub fn smc_bench(scale: Scale) -> Vec<SmcBenchRow> {
    use sctc_smc::{run_smc_campaign, SmcQuery, SmcSpec};
    const PLANT_PER_MILLE: u32 = 100;
    let parallel = resolve_jobs(scale.jobs);
    let mut job_counts = vec![1usize];
    if parallel != 1 {
        job_counts.push(parallel);
    }
    let queries = [
        ("fails-direction", SmcQuery::new(0.95, 0.025)),
        ("holds-direction", SmcQuery::new(0.8, 0.05)),
    ];
    let mut rows = Vec::new();
    for (label, query) in queries {
        for &jobs in &job_counts {
            let spec = SmcSpec::planted_torn(FlowKind::Derived, PLANT_PER_MILLE, scale.seed)
                .with_query(query)
                .with_jobs(jobs);
            let report = run_smc_campaign(&spec);
            rows.push(SmcBenchRow::from_report(label, &report));
        }
    }
    rows
}

/// Renders SMC bench rows as the `BENCH_smc.json` document.
pub fn render_smc_bench_json(rows: &[SmcBenchRow]) -> String {
    use json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("bench-smc/v1");
    w.key("host_parallelism");
    w.number(resolve_jobs(0) as f64);
    w.key("rows");
    w.begin_array();
    for row in rows {
        w.begin_object();
        w.key("label");
        w.string(&row.label);
        w.key("flow");
        w.string(&row.flow);
        w.key("workload");
        w.string(&row.workload);
        w.key("method");
        w.string(&row.method);
        w.key("jobs");
        w.number(row.jobs as f64);
        w.key("theta");
        w.number(row.theta);
        w.key("verdict");
        w.string(&row.verdict);
        w.key("samples");
        w.number(row.samples as f64);
        w.key("successes");
        w.number(row.successes as f64);
        w.key("p_hat");
        w.number(row.p_hat);
        w.key("ci_lo");
        w.number(row.ci.0);
        w.key("ci_hi");
        w.number(row.ci.1);
        w.key("chernoff_bound");
        w.number(row.chernoff_bound as f64);
        w.key("samples_saved");
        w.number(row.chernoff_bound.saturating_sub(row.samples) as f64);
        w.key("issued");
        w.number(row.issued as f64);
        w.key("discarded");
        w.number(row.discarded as f64);
        w.key("wall_s");
        w.number(row.wall.as_secs_f64());
        w.key("report_fingerprint");
        w.string(&row.fingerprint);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// One row of `BENCH_monitoring.json`: one campaign configuration run
/// under all four monitoring engines (change-driven `Table`, `Naive`
/// re-evaluation, memoized `Lazy` progression, and the `Compiled` kernel
/// tier), with per-engine work counters, per-engine min-of-4 walls, and
/// the four-way result-fingerprint comparison.
#[derive(Clone, Debug)]
pub struct MonitorBenchRow {
    /// Campaign family (`"fig8"`, `"tb-sweep"`, `"bounded-response"`,
    /// `"faults"`).
    pub campaign: String,
    /// Configuration label (`"TB-1000"`, `"TB-20000"`, ...).
    pub config: String,
    /// Flow name (`"derived"` or `"micro"`).
    pub flow: String,
    /// Planned case budget.
    pub cases: u64,
    /// Work counters of the change-driven (default) `Table` engine.
    pub driven: MonitorCounters,
    /// Work counters of the naive engine (`atoms_evaluated ==
    /// atoms_total` by construction).
    pub naive: MonitorCounters,
    /// Work counters of the memoized lazy-progression engine.
    pub lazy: MonitorCounters,
    /// Work counters of the compiled-kernel engine.
    pub compiled: MonitorCounters,
    /// Fastest of four alternating-order repetitions of the `Table` run.
    pub driven_wall: Duration,
    /// Fastest of four alternating-order repetitions of the naive run.
    pub naive_wall: Duration,
    /// Fastest of four alternating-order repetitions of the lazy run.
    pub lazy_wall: Duration,
    /// Fastest of four alternating-order repetitions of the compiled run.
    pub compiled_wall: Duration,
    /// Synthesis-cache activity across this row's legs: compiled-kernel
    /// hits/misses and the lowering / lazy-stutter-table build walls.
    pub cache: CacheStats,
    /// Whether all four engines produced the identical result
    /// fingerprint. `repro --monitor-bench` exits non-zero when any row
    /// diverges.
    pub fingerprints_equal: bool,
}

/// The fixed engine order of the bench; `walls[i]`/`reports[i]` in
/// [`timed_engines`] line up with this.
const BENCH_ENGINES: [EngineKind; 4] = [
    EngineKind::Table,
    EngineKind::Naive,
    EngineKind::Lazy,
    EngineKind::Compiled,
];

/// Times `run` once per engine per repetition, rotating which engine goes
/// first on each of the four repetitions, and keeps the fastest wall per
/// engine: single-shot timings on a shared machine are ±20% noisy and
/// drift over time, and the minimum over alternated runs is the stable
/// estimator of intrinsic cost (same methodology as [`obs_bench`]).
fn timed_engines<R>(mut run: impl FnMut(EngineKind) -> R) -> ([Duration; 4], [R; 4]) {
    let mut walls = [Duration::MAX; 4];
    let mut reports: [Option<R>; 4] = [None, None, None, None];
    for rep in 0..4 {
        for slot in 0..4 {
            let i = (slot + rep) % 4;
            let t0 = std::time::Instant::now();
            let report = run(BENCH_ENGINES[i]);
            walls[i] = walls[i].min(t0.elapsed());
            reports[i] = Some(report);
        }
    }
    (walls, reports.map(|r| r.expect("every engine ran")))
}

fn flow_label(flow: FlowKind) -> &'static str {
    match flow {
        FlowKind::Derived => "derived",
        FlowKind::Microprocessor => "micro",
    }
}

/// Runs every campaign family under all four monitoring engines and
/// compares result fingerprints: the fig8 configurations, one tb-sweep
/// row, the 20k-cycle bounded-response property on the microprocessor
/// flow (the stutter-compression stress), and both fault campaigns.
pub fn monitor_bench(scale: Scale) -> Vec<MonitorBenchRow> {
    let jobs = scale.jobs;
    let mut rows = Vec::new();
    let eee_configs: Vec<(&str, &str, CampaignSpec)> = vec![
        (
            "fig8",
            "TB-1000",
            CampaignSpec::derived(scale.derived_cases, scale.seed),
        ),
        (
            "fig8",
            "TB-10000",
            CampaignSpec::derived(scale.derived_cases, scale.seed).with_bound(Some(10_000)),
        ),
        (
            "fig8",
            "no-TB",
            CampaignSpec::micro(scale.micro_cases, scale.seed),
        ),
        (
            "tb-sweep",
            "TB-100",
            CampaignSpec::derived(scale.derived_cases, scale.seed)
                .with_op(Op::Read)
                .with_bound(Some(100)),
        ),
        // The 20,000-cycle bounded-response property samples every clock
        // cycle of the microprocessor flow: the long clean stretches while
        // the software computes are where stutter compression pays.
        (
            "bounded-response",
            "TB-20000",
            CampaignSpec::micro(scale.micro_cases, scale.seed).with_bound(Some(20_000)),
        ),
    ];
    for (campaign, config, spec) in eee_configs {
        // Warm the shared synthesis cache with a single-case run so the
        // timed legs compare monitoring work, not who pays the one-off
        // AR-synthesis cache miss. (The compiled-kernel lowering miss is
        // absorbed by the min-of-4 repetitions: only the first compiled
        // leg pays it, and the minimum discards that leg.)
        let mut warmup = spec.clone().with_jobs(1);
        warmup.cases = 1;
        run_campaign(&warmup);
        let before = SynthesisCache::global().stats();
        let (walls, reports) =
            timed_engines(|engine| run_campaign(&spec.clone().with_engine(engine).with_jobs(jobs)));
        let cache = SynthesisCache::global().stats().since(&before);
        let fingerprints = reports.each_ref().map(|r| r.fingerprint());
        let [table, naive, lazy, compiled] = reports;
        rows.push(MonitorBenchRow {
            campaign: campaign.to_owned(),
            config: config.to_owned(),
            flow: flow_label(spec.flow).to_owned(),
            cases: table.total_cases,
            driven: table.monitoring,
            naive: naive.monitoring,
            lazy: lazy.monitoring,
            compiled: compiled.monitoring,
            driven_wall: walls[0],
            naive_wall: walls[1],
            lazy_wall: walls[2],
            compiled_wall: walls[3],
            cache,
            fingerprints_equal: fingerprints.iter().all(|f| *f == fingerprints[0]),
        });
    }
    for (flow, cases) in [
        ("derived", scale.derived_cases),
        ("micro", scale.micro_cases),
    ] {
        let spec = if flow == "micro" {
            FaultCampaignSpec::micro(cases, scale.seed)
        } else {
            FaultCampaignSpec::derived(cases, scale.seed)
        };
        let mut warmup = spec.clone().with_jobs(1);
        warmup.cases = 1;
        run_fault_campaign(&warmup);
        let before = SynthesisCache::global().stats();
        let (walls, reports) = timed_engines(|engine| {
            run_fault_campaign(&spec.clone().with_engine(engine).with_jobs(jobs))
        });
        let cache = SynthesisCache::global().stats().since(&before);
        let fingerprints = reports.each_ref().map(|r| r.matrix.fingerprint());
        let [table, naive, lazy, compiled] = reports;
        rows.push(MonitorBenchRow {
            campaign: "faults".to_owned(),
            config: "inject".to_owned(),
            flow: flow.to_owned(),
            cases,
            driven: table.matrix.monitoring,
            naive: naive.matrix.monitoring,
            lazy: lazy.matrix.monitoring,
            compiled: compiled.matrix.monitoring,
            driven_wall: walls[0],
            naive_wall: walls[1],
            lazy_wall: walls[2],
            compiled_wall: walls[3],
            cache,
            fingerprints_equal: fingerprints.iter().all(|f| *f == fingerprints[0]),
        });
    }
    rows
}

/// One row of the instruction-decode benchmark: the compiled EEE program
/// driven through a fixed request script on the clocked SoC, once per
/// encoding × decoder variant.
#[derive(Clone, Debug)]
pub struct DecodeBenchRow {
    /// Variant label (`"word32-table"`, `"word32-legacy"`, `"comp16-table"`).
    pub variant: String,
    /// Instruction-encoding name (`"word32"` / `"comp16"`).
    pub isa: String,
    /// Whether the hand-written legacy decoder ran instead of the
    /// description-table decoder (32-bit encoding only).
    pub legacy_decode: bool,
    /// Flash footprint of the encoded program in bytes.
    pub text_bytes: u64,
    /// Processor cycles executed by one scripted run (identical for the
    /// two word32 variants; smaller text, same cycle count, for comp16).
    pub cycles: u64,
    /// Fastest of four alternating-order repetitions.
    pub wall: Duration,
    /// Cycles per second of the fastest repetition.
    pub cycles_per_sec: f64,
}

/// Runs the compiled EEE program through one fixed request script on the
/// clocked SoC under one encoding/decoder variant, returning the cycle
/// count, the flash footprint, and the per-request observations.
/// (cycles, flash text bytes, per-request `(ret, read_value)` observations).
type DecodeRun = (u64, u64, Vec<(i32, i32)>);

fn run_decode_variant(isa: IsaKind, legacy: bool, script: &[(eee::Op, i32, i32)]) -> DecodeRun {
    use eee::driver::MailboxAddrs;
    use eee::{
        share_flash, DataFlash, FlashMmio, FlashReadWindow, FLASH_READ_BASE, FLASH_READ_LEN,
        FLASH_REG_BASE, FLASH_REG_LEN,
    };
    use minic::codegen::{compile, CodegenOptions};
    use sctc_cpu::{Cpu, Soc};

    let ir = build_ir();
    let compiled = compile(
        &ir,
        CodegenOptions {
            isa,
            ..CodegenOptions::default()
        },
    )
    .expect("EEE compiles");
    let addrs = MailboxAddrs::from_compiled(&compiled);
    let read_value_addr = compiled.global_addr("eee_read_value");
    let text_bytes = compiled.text.len() as u64 * 4;
    let flash = share_flash(DataFlash::new());
    let mut mem = compiled.build_memory(0x0004_0000);
    mem.map_device(
        FLASH_REG_BASE,
        FLASH_REG_LEN,
        Box::new(FlashMmio::new(flash.clone())),
    );
    mem.map_device(
        FLASH_READ_BASE,
        FLASH_READ_LEN,
        Box::new(FlashReadWindow::new(flash)),
    );
    let mut soc = Soc::new(mem);
    soc.cpu = Cpu::with_isa(0, isa);
    soc.cpu.set_legacy_decode(legacy);
    let mut cycles = 0u64;
    let obs = script
        .iter()
        .map(|&(op, arg0, arg1)| {
            soc.mem
                .write_u32(addrs.req_op, op.code() as u32)
                .expect("mailbox in RAM");
            soc.mem
                .write_u32(addrs.req_arg0, arg0 as u32)
                .expect("mailbox in RAM");
            soc.mem
                .write_u32(addrs.req_arg1, arg1 as u32)
                .expect("mailbox in RAM");
            soc.reset_cpu();
            while !soc.cpu.is_halted() {
                assert!(soc.fault.is_none(), "CPU fault in decode bench");
                soc.cycle();
                cycles += 1;
            }
            let peek = |addr: u32| soc.mem.peek_u32(addr).expect("mailbox in RAM") as i32;
            (peek(addrs.eee_last_ret), peek(read_value_addr))
        })
        .collect();
    (cycles, text_bytes, obs)
}

/// Times instruction decode on the clocked microprocessor flow: the
/// table-driven decoder against the retired hand-written one on the
/// 32-bit encoding, plus the compressed encoding's table decoder. Walls
/// are min-of-4 with alternating variant order (same methodology as the
/// engine bench). The second return is the cross-variant observation
/// agreement — the three runs must serve identical return codes and read
/// values; `repro --monitor-bench` exits non-zero when they diverge.
pub fn decode_bench() -> (Vec<DecodeBenchRow>, bool) {
    use eee::{Op, NUM_IDS};
    let mut script: Vec<(Op, i32, i32)> = vec![
        (Op::Format, 0, 0),
        (Op::Startup1, 0, 0),
        (Op::Startup2, 0, 0),
    ];
    for round in 0..4 {
        for id in 0..NUM_IDS {
            script.push((Op::Write, id, round * 1000 + id));
            script.push((Op::Read, id, 0));
        }
    }
    let variants: [(&str, IsaKind, bool); 3] = [
        ("word32-table", IsaKind::Word32, false),
        ("word32-legacy", IsaKind::Word32, true),
        ("comp16-table", IsaKind::Comp16, false),
    ];
    let mut walls = [Duration::MAX; 3];
    let mut runs: [Option<DecodeRun>; 3] = [None, None, None];
    for rep in 0..4 {
        for slot in 0..3 {
            let i = (slot + rep) % 3;
            let (_, isa, legacy) = variants[i];
            let t0 = std::time::Instant::now();
            let out = run_decode_variant(isa, legacy, &script);
            walls[i] = walls[i].min(t0.elapsed());
            runs[i] = Some(out);
        }
    }
    let runs = runs.map(|r| r.expect("every variant ran"));
    let equal = runs.iter().all(|(_, _, obs)| *obs == runs[0].2);
    let rows = variants
        .iter()
        .zip(runs.iter().zip(walls))
        .map(|(&(variant, isa, legacy), (&(cycles, text_bytes, _), wall))| DecodeBenchRow {
            variant: variant.to_owned(),
            isa: isa.name().to_owned(),
            legacy_decode: legacy,
            text_bytes,
            cycles,
            wall,
            cycles_per_sec: cycles as f64 / wall.as_secs_f64().max(1e-9),
        })
        .collect();
    (rows, equal)
}

/// Renders monitoring-bench rows as the `BENCH_monitoring.json` document
/// (`bench-monitoring/v3`: every v2 field is kept — per-engine
/// `engines.{table,naive,lazy,compiled}` objects with min-of-4 `wall_s`
/// and `steps_compressed`, compiled-kernel cache counters — and the
/// document gains a top-level `decode` array with the table-vs-legacy
/// instruction-decode rows).
pub fn render_monitoring_bench_json(
    rows: &[MonitorBenchRow],
    decode: &[DecodeBenchRow],
    decode_equal: bool,
) -> String {
    use json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("bench-monitoring/v3");
    w.key("host_parallelism");
    w.number(resolve_jobs(0) as f64);
    w.key("fingerprints_equal");
    w.boolean(rows.iter().all(|r| r.fingerprints_equal));
    w.key("rows");
    w.begin_array();
    for row in rows {
        w.begin_object();
        w.key("campaign");
        w.string(&row.campaign);
        w.key("config");
        w.string(&row.config);
        w.key("flow");
        w.string(&row.flow);
        w.key("cases");
        w.number(row.cases as f64);
        w.key("atoms_evaluated");
        w.number(row.driven.atoms_evaluated as f64);
        w.key("atoms_total");
        w.number(row.driven.atoms_total as f64);
        w.key("atoms_evaluated_fraction");
        w.number(if row.driven.atoms_total == 0 {
            0.0
        } else {
            row.driven.atoms_evaluated as f64 / row.driven.atoms_total as f64
        });
        w.key("steps_compressed");
        w.number(row.driven.steps_compressed as f64);
        w.key("dirty_wakeups");
        w.number(row.driven.dirty_wakeups as f64);
        w.key("naive_atoms_evaluated");
        w.number(row.naive.atoms_evaluated as f64);
        w.key("driven_wall_s");
        w.number(row.driven_wall.as_secs_f64());
        w.key("naive_wall_s");
        w.number(row.naive_wall.as_secs_f64());
        w.key("engines");
        w.begin_object();
        for (name, counters, wall) in [
            ("table", &row.driven, row.driven_wall),
            ("naive", &row.naive, row.naive_wall),
            ("lazy", &row.lazy, row.lazy_wall),
            ("compiled", &row.compiled, row.compiled_wall),
        ] {
            w.key(name);
            w.begin_object();
            w.key("wall_s");
            w.number(wall.as_secs_f64());
            w.key("steps_compressed");
            w.number(counters.steps_compressed as f64);
            w.key("dirty_wakeups");
            w.number(counters.dirty_wakeups as f64);
            w.end_object();
        }
        w.end_object();
        w.key("compiled_cache_hits");
        w.number(row.cache.compiled_hits as f64);
        w.key("compiled_cache_misses");
        w.number(row.cache.compiled_misses as f64);
        w.key("compiled_build_wall_s");
        w.number(row.cache.compiled_build_wall.as_secs_f64());
        w.key("stutter_build_wall_s");
        w.number(row.cache.stutter_build_wall.as_secs_f64());
        w.key("compiled_speedup_vs_table");
        w.number(row.driven_wall.as_secs_f64() / row.compiled_wall.as_secs_f64().max(1e-9));
        w.key("fingerprints_equal");
        w.boolean(row.fingerprints_equal);
        w.end_object();
    }
    w.end_array();
    w.key("decode_observations_equal");
    w.boolean(decode_equal);
    w.key("decode");
    w.begin_array();
    for row in decode {
        w.begin_object();
        w.key("variant");
        w.string(&row.variant);
        w.key("isa");
        w.string(&row.isa);
        w.key("legacy_decode");
        w.boolean(row.legacy_decode);
        w.key("text_bytes");
        w.number(row.text_bytes as f64);
        w.key("cycles");
        w.number(row.cycles as f64);
        w.key("wall_s");
        w.number(row.wall.as_secs_f64());
        w.key("cycles_per_sec");
        w.number(row.cycles_per_sec);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// The observability benchmark: profiler overhead on the standard
/// derived-flow campaign plus one unified metrics-registry snapshot.
#[derive(Clone, Debug)]
pub struct ObsBenchReport {
    /// Planned case budget of the measured campaign.
    pub cases: u64,
    /// Campaign wall with observability fully disabled.
    pub plain_wall: Duration,
    /// Wall of the identical campaign with the span profiler enabled.
    pub profiled_wall: Duration,
    /// `(profiled - plain) / plain` in percent; noise can push it
    /// slightly negative.
    pub overhead_percent: f64,
    /// Merged span profile of the profiled campaign.
    pub spans: sctc_core::SpanStats,
    /// The unified metrics snapshot of the profiled campaign.
    pub metrics: sctc_core::Metrics,
}

/// Measures the span profiler's overhead: the same derived campaign runs
/// once with observability disabled and once with the profiler enabled,
/// and the registry collects every scattered counter of the profiled run
/// into one [`sctc_core::Metrics`] snapshot.
pub fn obs_bench(scale: Scale) -> ObsBenchReport {
    let spec = CampaignSpec::derived(scale.derived_cases, scale.seed);
    // Warm the shared synthesis cache so neither timed run pays the
    // one-off AR-synthesis miss.
    let mut warmup = spec.clone().with_jobs(1);
    warmup.cases = 1;
    run_campaign(&warmup);
    // Interleave plain/profiled repetitions — alternating which goes
    // first — and keep the fastest wall of each: single-shot timings on
    // a shared machine are ±20% noisy and drift over time, and the
    // minimum over alternated runs is the stable estimator of intrinsic
    // cost.
    let mut plain_wall = std::time::Duration::MAX;
    let mut profiled_wall = std::time::Duration::MAX;
    let mut plain = None;
    let mut profiled = None;
    for rep in 0..4 {
        for leg in 0..2 {
            if (rep + leg) % 2 == 0 {
                let t0 = std::time::Instant::now();
                let p = run_campaign(&spec.clone().with_jobs(scale.jobs));
                plain_wall = plain_wall.min(t0.elapsed());
                plain = Some(p);
            } else {
                let t0 = std::time::Instant::now();
                let p = run_campaign(&spec.clone().with_jobs(scale.jobs).with_profile(true));
                profiled_wall = profiled_wall.min(t0.elapsed());
                profiled = Some(p);
            }
        }
    }
    let (plain, profiled) = (plain.expect("ran"), profiled.expect("ran"));
    // Zero-cost-when-disabled is a structural guarantee, not a hope.
    assert!(
        plain.spans.is_empty(),
        "unprofiled campaign must not collect spans"
    );
    assert_eq!(
        plain.fingerprint(),
        profiled.fingerprint(),
        "profiling must not change what the campaign finds"
    );
    let overhead_percent = 100.0 * (profiled_wall.as_secs_f64() - plain_wall.as_secs_f64())
        / plain_wall.as_secs_f64().max(1e-9);

    let mut metrics = sctc_core::Metrics::new();
    profiled.monitoring.record(&mut metrics);
    metrics.counter_add("campaign.test_cases", profiled.test_cases);
    metrics.counter_add("campaign.samples", profiled.samples);
    metrics.counter_add("campaign.sim_ticks", profiled.sim_ticks);
    metrics.counter_add("kernel.resumes", profiled.kernel.resumes);
    metrics.counter_add("kernel.delta_cycles", profiled.kernel.delta_cycles);
    metrics.counter_add("synthesis.cache_hits", profiled.cache.hits);
    metrics.counter_add("synthesis.cache_misses", profiled.cache.misses);
    metrics.gauge_set("coverage.overall_percent", profiled.overall_coverage);
    for (path, entry) in profiled.spans.iter() {
        metrics.counter_add(&format!("span.{path}.count"), entry.count);
        metrics.gauge_set(&format!("span.{path}.wall_s"), entry.wall.as_secs_f64());
    }
    ObsBenchReport {
        cases: profiled.total_cases,
        plain_wall,
        profiled_wall,
        overhead_percent,
        spans: profiled.spans,
        metrics,
    }
}

/// The diagnosis-layer demo on one flow: the torn-write mutant violates
/// `G intact`, and the witness/VCD pipeline must explain the failure.
#[derive(Clone, Debug)]
pub struct WitnessDemo {
    /// Flow name (`"derived"` / `"micro"`).
    pub flow: String,
    /// `G intact` went `False` in the run itself.
    pub violated: bool,
    /// Sample index at which `intact` decided.
    pub decided_at: u64,
    /// Replaying the witness through a fresh AR-automaton reproduced
    /// `False` at the same sample index.
    pub replay_ok: bool,
    /// The exported VCD survived a parser round-trip with the `intact`
    /// verdict channel transitioning to `0` at `decided_at`.
    pub vcd_ok: bool,
    /// The deciding trigger's provenance names the read-value write.
    pub provenance_ok: bool,
    /// The human-readable witness report.
    pub witness_report: String,
    /// The rendered VCD document.
    pub vcd_text: String,
    /// The scenario's full run report (counters, spans).
    pub report: sctc_core::RunReport,
}

impl WitnessDemo {
    /// All demo checks passed.
    pub fn ok(&self) -> bool {
        self.violated && self.replay_ok && self.vcd_ok && self.provenance_ok
    }
}

/// Runs the torn-write power-loss scenario with the diagnosis layer on,
/// under both flows, and validates the full witness/VCD contract.
pub fn witness_demo(profile: bool) -> Vec<WitnessDemo> {
    use faults::scenario::{run_scenario_observed, torn_write_ir, ScenarioObs};
    use sctc_core::{VcdDoc, VcdValue, WitnessConfig};
    use sctc_temporal::{TableMonitor, Verdict};

    let obs = ScenarioObs {
        witnesses: Some(WitnessConfig::default()),
        vcd: true,
        profile,
        ..ScenarioObs::default()
    };
    let flows: [(FlowKind, &str, u64, &str); 2] = [
        (FlowKind::Derived, "derived", 5_000, "eee_read_value"),
        (FlowKind::Microprocessor, "micro", 200_000, "eee_read_value write"),
    ];
    flows
        .into_iter()
        .map(|(flow, name, bound, source_marker)| {
            let (outcome, report) = run_scenario_observed(flow, torn_write_ir(), bound, obs);
            let violated = outcome.verdict_of("intact") == Verdict::False;
            let witness = report.witnesses.iter().find(|w| w.property == "intact");
            let (decided_at, replay_ok, provenance_ok, witness_report) = match witness {
                Some(w) => {
                    let mut fresh = TableMonitor::new(&faults::intact_property())
                        .expect("intact property synthesizes");
                    let replay = w.replay_with(&mut fresh);
                    (
                        w.decided_at.unwrap_or(0),
                        replay.verdict == Verdict::False && replay.decided_at == w.decided_at,
                        w.provenance
                            .iter()
                            .any(|p| p.atom == "intact" && p.source.contains(source_marker)),
                        w.to_report(),
                    )
                }
                None => (0, false, false, "(no witness captured)".to_owned()),
            };
            let vcd_text = report.vcd.as_ref().map(VcdDoc::render).unwrap_or_default();
            let vcd_ok = VcdDoc::parse(&vcd_text)
                .map(|doc| {
                    doc.changes_for("intact", "verdict").last().copied()
                        == Some((decided_at, VcdValue::V0))
                })
                .unwrap_or(false);
            WitnessDemo {
                flow: name.to_owned(),
                violated,
                decided_at,
                replay_ok,
                vcd_ok,
                provenance_ok,
                witness_report,
                vcd_text,
                report,
            }
        })
        .collect()
}

/// Renders the observability benchmark and the witness-demo verdicts as
/// the `BENCH_obs.json` document.
pub fn render_obs_json(report: &ObsBenchReport, demos: &[WitnessDemo]) -> String {
    use json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("bench-obs/v1");
    w.key("host_parallelism");
    w.number(resolve_jobs(0) as f64);
    w.key("profiler_overhead");
    w.begin_object();
    w.key("cases");
    w.number(report.cases as f64);
    w.key("plain_wall_s");
    w.number(report.plain_wall.as_secs_f64());
    w.key("profiled_wall_s");
    w.number(report.profiled_wall.as_secs_f64());
    w.key("overhead_percent");
    w.number(report.overhead_percent);
    w.end_object();
    w.key("spans");
    w.begin_array();
    for (path, entry) in report.spans.iter() {
        w.begin_object();
        w.key("path");
        w.string(path);
        w.key("count");
        w.number(entry.count as f64);
        w.key("wall_s");
        w.number(entry.wall.as_secs_f64());
        w.end_object();
    }
    w.end_array();
    w.key("metrics");
    w.begin_array();
    for (name, value) in report.metrics.iter() {
        w.begin_object();
        w.key("name");
        w.string(name);
        match value {
            sctc_core::MetricValue::Counter(n) => {
                w.key("type");
                w.string("counter");
                w.key("value");
                w.number(n as f64);
            }
            sctc_core::MetricValue::Gauge(v) => {
                w.key("type");
                w.string("gauge");
                w.key("value");
                w.number(v);
            }
            sctc_core::MetricValue::Histogram(h) => {
                w.key("type");
                w.string("histogram");
                w.key("count");
                w.number(h.count as f64);
                w.key("sum");
                w.number(h.sum);
                w.key("min");
                w.number(h.min);
                w.key("max");
                w.number(h.max);
            }
        }
        w.end_object();
    }
    w.end_array();
    w.key("witness_demo");
    w.begin_array();
    for demo in demos {
        w.begin_object();
        w.key("flow");
        w.string(&demo.flow);
        w.key("violated");
        w.boolean(demo.violated);
        w.key("decided_at");
        w.number(demo.decided_at as f64);
        w.key("replay_ok");
        w.boolean(demo.replay_ok);
        w.key("vcd_ok");
        w.boolean(demo.vcd_ok);
        w.key("provenance_ok");
        w.boolean(demo.provenance_ok);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// The telemetry-overhead benchmark: the same campaign timed with the
/// trace plane disabled and enabled, plus the flight-recorder log of the
/// final enabled run.
#[derive(Clone, Debug)]
pub struct TelemetryBenchReport {
    /// Planned case budget of the measured campaign.
    pub cases: u64,
    /// Min-of-10 campaign wall with event emission disabled.
    pub off_wall: Duration,
    /// Min-of-10 campaign wall with event emission enabled.
    pub on_wall: Duration,
    /// `(on - off) / off` in percent; noise can push it slightly
    /// negative.
    pub overhead_percent: f64,
    /// Events drained from the last enabled campaign run — the
    /// `trace.json` input.
    pub events: Vec<sctc_core::TraceEvent>,
}

/// Measures the trace plane's overhead and proves its zero-cost
/// discipline: fingerprints must be bit-identical with telemetry on and
/// off, for the campaign under test **and** for quick fault-injection
/// and SMC runs (the other two instrumented paths).
///
/// Methodology matches [`obs_bench`], with more repetitions: a
/// full-size untimed warmup, then ten interleaved off/on repetitions —
/// alternating which goes first — keeping the fastest wall of each.
/// The measured delta is sub-percent, far below the run-to-run wall
/// variance of a noisy shared machine, so only a deep min-of converges
/// both legs to their floor.
///
/// # Panics
///
/// Panics if any on/off fingerprint pair diverges — that would mean
/// telemetry feeds back into verification.
pub fn telemetry_bench(scale: Scale) -> TelemetryBenchReport {
    use sctc_core::trace;
    let spec = CampaignSpec::derived(scale.derived_cases, scale.seed);
    // Warm up with one full-size untimed run: the on/off delta being
    // measured is small (sub-percent), so beyond the one-off
    // AR-synthesis miss the legs must also not be skewed by cold page
    // cache, allocator growth, or CPU-frequency ramp on the first leg.
    run_campaign(&spec.clone().with_jobs(scale.jobs));

    let mut off_wall = Duration::MAX;
    let mut on_wall = Duration::MAX;
    let mut off = None;
    let mut on = None;
    let mut events = Vec::new();
    for rep in 0..10 {
        for leg in 0..2 {
            let enabled = (rep + leg) % 2 == 1;
            trace::set_enabled(enabled);
            // Start each timed leg from an empty recorder so ring
            // evictions are comparable across legs.
            trace::drain();
            let t0 = std::time::Instant::now();
            let report = run_campaign(&spec.clone().with_jobs(scale.jobs));
            let wall = t0.elapsed();
            if enabled {
                on_wall = on_wall.min(wall);
                on = Some(report);
                events = trace::drain();
            } else {
                off_wall = off_wall.min(wall);
                off = Some(report);
            }
        }
    }
    trace::set_enabled(true);
    let (off, on) = (off.expect("ran"), on.expect("ran"));
    assert_eq!(
        off.fingerprint(),
        on.fingerprint(),
        "telemetry must not change what the campaign finds"
    );
    assert!(
        !events.is_empty(),
        "an enabled campaign run must record events"
    );

    // The other two instrumented paths get the same on/off treatment at
    // smoke scale: fault-injection matrices and SMC verdict streams.
    let faults_spec = FaultCampaignSpec::derived(24, scale.seed)
        .with_chunk(8)
        .with_fault_percent(50)
        .with_jobs(2);
    trace::set_enabled(false);
    let faults_off = run_fault_campaign(&faults_spec).matrix.fingerprint();
    trace::set_enabled(true);
    let faults_on = run_fault_campaign(&faults_spec).matrix.fingerprint();
    assert_eq!(
        faults_off, faults_on,
        "telemetry must not change fault-injection results"
    );
    let smc_spec = sctc_smc::SmcSpec::planted_torn(FlowKind::Derived, 200, scale.seed)
        .with_max_samples(60)
        .with_jobs(2);
    trace::set_enabled(false);
    let smc_off = sctc_smc::run_smc_campaign(&smc_spec);
    trace::set_enabled(true);
    let smc_on = sctc_smc::run_smc_campaign(&smc_spec);
    assert_eq!(
        (smc_off.fingerprint(), smc_off.verdict, smc_off.samples),
        (smc_on.fingerprint(), smc_on.verdict, smc_on.samples),
        "telemetry must not change SMC results"
    );

    let overhead_percent = 100.0 * (on_wall.as_secs_f64() - off_wall.as_secs_f64())
        / off_wall.as_secs_f64().max(1e-9);
    TelemetryBenchReport {
        cases: on.total_cases,
        off_wall,
        on_wall,
        overhead_percent,
        events,
    }
}

/// Renders the telemetry-overhead benchmark as the
/// `BENCH_telemetry.json` document.
pub fn render_telemetry_json(report: &TelemetryBenchReport) -> String {
    use json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("bench-telemetry/v1");
    w.key("host_parallelism");
    w.number(resolve_jobs(0) as f64);
    w.key("cases");
    w.number(report.cases as f64);
    w.key("off_wall_s");
    w.number(report.off_wall.as_secs_f64());
    w.key("on_wall_s");
    w.number(report.on_wall.as_secs_f64());
    w.key("overhead_percent");
    w.number(report.overhead_percent);
    w.key("events_recorded");
    w.number(report.events.len() as f64);
    w.key("stages");
    w.begin_array();
    {
        let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for event in &report.events {
            *counts.entry(event.stage).or_default() += 1;
        }
        for (stage, count) in counts {
            w.begin_object();
            w.key("stage");
            w.string(stage);
            w.key("count");
            w.number(count as f64);
            w.end_object();
        }
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Renders a flight-recorder log in the chrome://tracing JSON object
/// format (load the file via `chrome://tracing` or Perfetto): one
/// instant event per [`sctc_core::TraceEvent`], with the trace/span ids
/// and numeric fields under `args`.
pub fn render_chrome_trace(events: &[sctc_core::TraceEvent]) -> String {
    use json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();
    for event in events {
        w.begin_object();
        w.key("name");
        w.string(event.stage);
        w.key("cat");
        w.string("sctc");
        w.key("ph");
        w.string("i");
        w.key("ts");
        w.number(event.t_us as f64);
        w.key("pid");
        w.number(1.0);
        w.key("tid");
        w.number(event.tid as f64);
        w.key("s");
        w.string("t");
        w.key("args");
        w.begin_object();
        w.key("trace");
        w.number(event.trace_id as f64);
        w.key("span");
        w.number(event.span_id as f64);
        w.key("parent");
        w.number(event.parent as f64);
        for (key, value) in &event.fields {
            w.key(key);
            w.number(*value as f64);
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.key("displayTimeUnit");
    w.string("ms");
    w.end_object();
    w.finish()
}

/// Renders a duration the way the paper's tables do (seconds).
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;

    /// The chrome://tracing JSON object format requires `traceEvents`
    /// plus `name`/`cat`/`ph`/`ts`/`pid`/`tid` per event; instant events
    /// additionally carry a scope `s`. Schema-check the renderer against
    /// that field set.
    #[test]
    fn chrome_trace_export_matches_the_tracing_field_set() {
        let events = vec![
            sctc_core::TraceEvent {
                trace_id: 7,
                span_id: 1,
                parent: 0,
                stage: "job.admit",
                t_us: 10,
                tid: 1,
                fields: vec![("job", 3)],
            },
            sctc_core::TraceEvent {
                trace_id: 7,
                span_id: 2,
                parent: 1,
                stage: "shard.dispatch",
                t_us: 25,
                tid: 2,
                fields: vec![("shard", 0), ("cases", 25)],
            },
        ];
        let rendered = render_chrome_trace(&events);
        for required in [
            "\"traceEvents\":",
            "\"name\":\"job.admit\"",
            "\"name\":\"shard.dispatch\"",
            "\"cat\":\"sctc\"",
            "\"ph\":\"i\"",
            "\"ts\":10",
            "\"ts\":25",
            "\"pid\":1",
            "\"tid\":2",
            "\"s\":\"t\"",
            "\"args\":",
            "\"trace\":7",
            "\"parent\":1",
            "\"shard\":0",
            "\"displayTimeUnit\":\"ms\"",
        ] {
            assert!(
                rendered.contains(required),
                "chrome trace missing {required}: {rendered}"
            );
        }
        assert_eq!(
            rendered.matches("\"ph\":\"i\"").count(),
            events.len(),
            "one instant event per trace event"
        );
        // Structural sanity without a JSON parser: balanced braces and
        // brackets.
        let opens = rendered.matches('{').count();
        let closes = rendered.matches('}').count();
        assert_eq!(opens, closes, "balanced braces");
        assert_eq!(
            rendered.matches('[').count(),
            rendered.matches(']').count(),
            "balanced brackets"
        );
    }

    #[test]
    fn telemetry_json_carries_the_headline_numbers() {
        let report = TelemetryBenchReport {
            cases: 400,
            off_wall: Duration::from_micros(900),
            on_wall: Duration::from_micros(910),
            overhead_percent: 1.11,
            events: vec![sctc_core::TraceEvent {
                trace_id: 1,
                span_id: 1,
                parent: 0,
                stage: "shard.done",
                t_us: 5,
                tid: 1,
                fields: vec![],
            }],
        };
        let rendered = render_telemetry_json(&report);
        for required in [
            "\"schema\":\"bench-telemetry/v1\"",
            "\"overhead_percent\":1.11",
            "\"events_recorded\":1",
            "\"stage\":\"shard.done\"",
        ] {
            assert!(rendered.contains(required), "missing {required}: {rendered}");
        }
    }
}
