//! # sctc-bench — the reproduction harness
//!
//! One runner per table/figure of the paper's evaluation (Section 4),
//! returning structured rows that the `repro` binary renders and the
//! bench targets time (via the in-tree [`timing`] harness — see the
//! `bench-criterion` feature note in the manifest):
//!
//! * [`fig7`] — BLAST/CBMC baseline table (exceptions and unwinding
//!   resource-outs per property),
//! * [`fig8`] — the 1st/2nd-approach table: verification time, test cases
//!   and return-value coverage per property and configuration,
//! * [`speedup`] — the "up to 900×" approach-2-vs-approach-1 comparison,
//! * [`tb_sweep`] — coverage and AR-synthesis cost versus the time bound.
//!
//! Scaling: the paper's runs took hours on 2008 hardware with up to 10^5
//! (approach 1) and 10^6 (approach 2) test cases. The runners scale test
//! cases and budgets down by a configurable factor and compare *shapes*,
//! not absolute numbers; see EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod timing;

use std::time::Duration;

use checkers::bmc::{self, BmcConfig, BmcOutcome, SafetySpec};
use checkers::predabs::{self, PredAbsConfig, PredAbsOutcome};
use eee::{build_ir, ExperimentConfig, Op};
use sctc_core::EngineKind;
use sctc_temporal::{ArAutomaton, SynthesisStats};

/// Scale factors for a local run.
#[derive(Copy, Clone, Debug)]
pub struct Scale {
    /// Test cases for approach 1 (paper: 100,000).
    pub micro_cases: u64,
    /// Test cases for approach 2 (paper: 1,000,000).
    pub derived_cases: u64,
    /// Wall budget per baseline-checker property (paper: >5 h).
    pub checker_budget: Duration,
    /// Testbench seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            micro_cases: 40,
            derived_cases: 400,
            checker_budget: Duration::from_secs(10),
            seed: 20080310,
        }
    }
}

/// The mailbox input constraints used for every baseline-checker property:
/// the operation code is pinned, the arguments range over the constrained
/// input space (paper: "all the input variables have to be constrained").
pub fn spec_for(op: Op) -> SafetySpec {
    let mut allowed: Vec<i32> = op.specified_returns().iter().map(|r| r.code()).collect();
    // The dispatcher also reports parameter errors for out-of-range ids.
    if !allowed.contains(&eee::RetCode::ErrorParam.code()) {
        allowed.push(eee::RetCode::ErrorParam.code());
    }
    SafetySpec {
        inputs: vec![
            ("req_op".to_owned(), op.code(), op.code()),
            ("req_arg0".to_owned(), -2, 20),
            ("req_arg1".to_owned(), 0, 1000),
            // The operation must be checked from an arbitrary reachable
            // emulation state, not only from cold boot.
            ("eee_ready".to_owned(), 0, 1),
            ("eee_su1_done".to_owned(), 0, 1),
            ("eee_active_page".to_owned(), 0, 3),
            ("eee_recv_page".to_owned(), -1, 3),
            ("eee_used".to_owned(), 0, 15),
        ],
        observed: "eee_last_ret".to_owned(),
        allowed,
    }
}

/// One row of the Fig. 7 table.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Property (operation).
    pub op: Op,
    /// BLAST-baseline verification time.
    pub blast_time: Duration,
    /// BLAST-baseline result rendered like the paper ("Exception", ...).
    pub blast_result: String,
    /// CBMC-baseline verification time.
    pub cbmc_time: Duration,
    /// CBMC-baseline result ("> unwind", ...).
    pub cbmc_result: String,
}

/// Reproduces Fig. 7: both baseline checkers on every property.
pub fn fig7(scale: Scale) -> Vec<Fig7Row> {
    let ir = build_ir();
    Op::ALL
        .into_iter()
        .map(|op| {
            let spec = spec_for(op);
            let t0 = std::time::Instant::now();
            let blast = predabs::check(
                &ir,
                &spec,
                PredAbsConfig {
                    wall_budget: scale.checker_budget,
                    ..PredAbsConfig::default()
                },
            );
            let blast_time = t0.elapsed();
            let blast_result = match blast {
                PredAbsOutcome::Safe => "Safe".to_owned(),
                PredAbsOutcome::Violated { .. } => "Violated".to_owned(),
                PredAbsOutcome::Inconclusive { .. } => "Inconclusive".to_owned(),
                PredAbsOutcome::Exception(_) => "Exception".to_owned(),
                PredAbsOutcome::ResourceOut { .. } => "Timeout".to_owned(),
            };
            let t0 = std::time::Instant::now();
            let cbmc = bmc::check(
                &ir,
                &spec,
                BmcConfig {
                    wall_budget: scale.checker_budget,
                    max_conflicts: 500_000,
                    max_clauses: 3_000_000,
                    ..BmcConfig::default()
                },
            );
            let cbmc_time = t0.elapsed();
            let cbmc_result = match cbmc {
                Ok(BmcOutcome::BoundedOk { .. }) => "Bounded OK".to_owned(),
                Ok(BmcOutcome::Violated { .. }) => "Violated".to_owned(),
                Ok(BmcOutcome::ResourceOut { reason, .. }) => {
                    // The paper's table renders every resource-out as
                    // "> unwind": the bound is never exhausted in budget.
                    if reason.contains("unwinding") {
                        "> unwind".to_owned()
                    } else {
                        "> unwind (budget)".to_owned()
                    }
                }
                Err(e) => format!("unsupported ({e})"),
            };
            Fig7Row {
                op,
                blast_time,
                blast_result,
                cbmc_time,
                cbmc_result,
            }
        })
        .collect()
}

/// One cell group of the Fig. 8 table.
#[derive(Clone, Debug)]
pub struct Fig8Cell {
    /// Property (operation).
    pub op: Op,
    /// Verification time (wall clock).
    pub vt: Duration,
    /// Time spent synthesizing the AR-automaton (included in `vt`).
    pub synthesis: Duration,
    /// Test cases applied.
    pub tc: u64,
    /// Return-value coverage of this operation in percent.
    pub coverage: f64,
    /// Monitor verdict rendered as text (safety properties stay pending).
    pub verdict: String,
    /// Violations observed (must be none).
    pub violations: usize,
}

/// One configuration (column group) of Fig. 8.
#[derive(Clone, Debug)]
pub struct Fig8Column {
    /// Configuration label, e.g. "2nd TB-1000".
    pub label: String,
    /// Per-operation cells.
    pub cells: Vec<Fig8Cell>,
}

/// Runs one flow configuration with a single property registered (the
/// paper reports per-property verification runs).
fn fig8_column(
    label: &str,
    micro: bool,
    bound: Option<u64>,
    cases: u64,
    seed: u64,
) -> Fig8Column {
    let cells = Op::ALL
        .into_iter()
        .map(|op| {
            let outcome = run_one_property(micro, op, bound, cases, seed);
            let prop = &outcome.report.properties[0];
            Fig8Cell {
                op,
                vt: outcome.report.wall + outcome.report.synthesis_wall,
                synthesis: outcome.report.synthesis_wall,
                tc: outcome.report.test_cases,
                coverage: outcome.coverage_of(op),
                verdict: prop.verdict.to_string(),
                violations: outcome.violations.len(),
            }
        })
        .collect();
    Fig8Column {
        label: label.to_owned(),
        cells,
    }
}

/// Runs one flow with exactly one operation's property registered.
pub fn run_one_property(
    micro: bool,
    op: Op,
    bound: Option<u64>,
    cases: u64,
    seed: u64,
) -> eee::ExperimentOutcome {
    // Reuse the assembled experiments but restrict properties by running
    // the full set and reporting the one of interest? No — per-property
    // timing matters; use a dedicated config instead.
    let config = ExperimentConfig {
        seed,
        cases,
        bound,
        fault_percent: 10,
        engine: EngineKind::Table,
        max_ticks: u64::MAX / 2,
    };
    if micro {
        eee::run_micro_single(op, config)
    } else {
        eee::run_derived_single(op, config)
    }
}

/// Reproduces Fig. 8: approach 1 without time bound, approach 2 with
/// TB-1000 / TB-10000 / no bound.
pub fn fig8(scale: Scale) -> Vec<Fig8Column> {
    vec![
        fig8_column("1st No-TB", true, None, scale.micro_cases, scale.seed),
        fig8_column(
            "2nd TB-1000",
            false,
            Some(1000),
            scale.derived_cases,
            scale.seed,
        ),
        fig8_column(
            "2nd TB-10000",
            false,
            Some(10_000),
            // The paper ran more cases for the larger-bound configuration.
            scale.derived_cases * 2,
            scale.seed,
        ),
        fig8_column(
            "2nd No-TB",
            false,
            None,
            // ... and the most for the pure-LTL configuration.
            scale.derived_cases * 4,
            scale.seed,
        ),
    ]
}

/// Result of the speedup comparison (Section 4.3: "speedup of up to 900").
#[derive(Clone, Debug)]
pub struct SpeedupResult {
    /// Wall time of approach 1.
    pub micro: Duration,
    /// Wall time of approach 2.
    pub derived: Duration,
    /// Simulated processor cycles in approach 1.
    pub micro_ticks: u64,
    /// Executed statements in approach 2.
    pub derived_ticks: u64,
    /// micro / derived wall-time ratio.
    pub factor: f64,
}

/// Measures both flows on identical workloads (same property, same cases).
pub fn speedup(cases: u64, seed: u64) -> SpeedupResult {
    let micro = run_one_property(true, Op::Read, None, cases, seed);
    let derived = run_one_property(false, Op::Read, None, cases, seed);
    let m = micro.report.wall;
    let d = derived.report.wall.max(Duration::from_micros(1));
    SpeedupResult {
        micro: m,
        derived: derived.report.wall,
        micro_ticks: micro.report.sim_ticks,
        derived_ticks: derived.report.sim_ticks,
        factor: m.as_secs_f64() / d.as_secs_f64(),
    }
}

/// One row of the time-bound sweep.
#[derive(Clone, Debug)]
pub struct TbSweepRow {
    /// The bound (`None` = pure LTL).
    pub bound: Option<u64>,
    /// AR-automaton synthesis statistics of the Read property.
    pub synthesis: SynthesisStats,
    /// Overall coverage after the run.
    pub coverage: f64,
    /// Wall time of the run.
    pub wall: Duration,
}

/// Sweeps the time bound: AR-synthesis cost grows with the bound (the
/// "large AR-automaton generation time" of Section 4.3) while the runtime
/// behaviour stays unchanged.
pub fn tb_sweep(cases: u64, seed: u64) -> Vec<TbSweepRow> {
    [Some(100), Some(1000), Some(10_000), None]
        .into_iter()
        .map(|bound| {
            let stats = synthesis_stats_for_bound(bound);
            let outcome = run_one_property(false, Op::Read, bound, cases, seed);
            TbSweepRow {
                bound,
                synthesis: stats,
                coverage: outcome.overall_coverage,
                wall: outcome.report.wall + outcome.report.synthesis_wall,
            }
        })
        .collect()
}

/// Synthesizes the Read response property's AR-automaton for a bound.
pub fn synthesis_stats_for_bound(bound: Option<u64>) -> SynthesisStats {
    let f = eee::response_property(Op::Read, bound);
    ArAutomaton::synthesize(&f)
        .expect("response property synthesizes")
        .stats()
}

/// Renders a duration the way the paper's tables do (seconds).
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}
