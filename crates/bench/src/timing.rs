//! A dependency-free wall-clock micro-benchmark harness.
//!
//! The offline substitute for Criterion (see the `bench-criterion` feature
//! note in this crate's manifest): warm up, run a fixed number of samples,
//! report min / mean / max. No statistics beyond that — the workspace's
//! bench targets compare *shapes and orders of magnitude*, which min/mean
//! already expose, and the harness must build with no registry access.

use std::time::{Duration, Instant};

/// Timing summary of one benchmark.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark label.
    pub name: String,
    /// Samples taken.
    pub samples: u32,
    /// Fastest sample.
    pub min: Duration,
    /// Mean over all samples.
    pub mean: Duration,
    /// Slowest sample.
    pub max: Duration,
}

impl std::fmt::Display for Sample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} {:>12?} min {:>12?} mean {:>12?} max ({} samples)",
            self.name, self.min, self.mean, self.max, self.samples
        )
    }
}

/// A group of benchmarks printed as one table, mirroring the
/// `criterion_group!` layout the benches previously used.
#[derive(Debug, Default)]
pub struct Bench {
    results: Vec<Sample>,
}

impl Bench {
    /// An empty benchmark group.
    pub fn new(title: &str) -> Self {
        println!("== {title}");
        Bench::default()
    }

    /// Times `f` (one warm-up call, then `samples` measured calls) and
    /// prints the row immediately.
    pub fn run<R>(&mut self, name: &str, samples: u32, mut f: impl FnMut() -> R) -> &Sample {
        assert!(samples > 0, "need at least one sample");
        let _warmup = f();
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..samples {
            let t0 = Instant::now();
            let r = f();
            let dt = t0.elapsed();
            std::hint::black_box(&r);
            min = min.min(dt);
            max = max.max(dt);
            total += dt;
        }
        let sample = Sample {
            name: name.to_owned(),
            samples,
            min,
            mean: total / samples,
            max,
        };
        println!("   {sample}");
        self.results.push(sample);
        self.results.last().expect("just pushed")
    }

    /// All rows measured so far.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }
}

/// Number of samples per bench, scaled by `TESTKIT_CASES` the same way the
/// property suites scale: quick by default, deeper when asked.
pub fn samples(default: u32) -> u32 {
    std::env::var("TESTKIT_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(|v| (v / 10).clamp(1, 10_000) as u32)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_times() {
        let mut b = Bench::new("timing-selftest");
        let s = b.run("spin", 3, || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert_eq!(b.results().len(), 1);
    }
}
