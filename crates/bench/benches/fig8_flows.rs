//! Fig. 8 benchmarks: the two simulation-based verification flows.
//!
//! * per-approach verification runs (the table's V.T. column),
//! * the approach-2-vs-approach-1 speedup pair on identical workloads,
//! * an ablation on the number of concurrently monitored properties.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eee::{run_derived_single, run_derived_with_ops, run_micro_single, ExperimentConfig, Op};
use sctc_core::EngineKind;

fn config(cases: u64, bound: Option<u64>) -> ExperimentConfig {
    ExperimentConfig {
        seed: 7,
        cases,
        bound,
        fault_percent: 10,
        engine: EngineKind::Table,
        max_ticks: u64::MAX / 2,
    }
}

fn bench_approach2_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/approach2");
    group.sample_size(10);
    for (label, bound) in [
        ("tb1000", Some(1000u64)),
        ("tb10000", Some(10_000)),
        ("no_tb", None),
    ] {
        group.bench_function(BenchmarkId::new("read", label), |b| {
            b.iter(|| {
                let outcome = run_derived_single(Op::Read, config(20, bound));
                assert!(outcome.violations.is_empty());
                outcome
            })
        });
    }
    group.finish();
}

fn bench_approach1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/approach1");
    group.sample_size(10);
    group.bench_function("read_no_tb", |b| {
        b.iter(|| {
            let outcome = run_micro_single(Op::Read, config(3, None));
            assert!(outcome.violations.is_empty());
            outcome
        })
    });
    group.finish();
}

fn bench_speedup_pair(c: &mut Criterion) {
    // Identical workload (same seed, same cases, same property) — the wall
    // time ratio between these two benches is the Section 4.3 speedup.
    let mut group = c.benchmark_group("fig8/speedup_pair");
    group.sample_size(10);
    group.bench_function("approach1", |b| {
        b.iter(|| run_micro_single(Op::Read, config(5, None)))
    });
    group.bench_function("approach2", |b| {
        b.iter(|| run_derived_single(Op::Read, config(5, None)))
    });
    group.finish();
}

fn bench_monitor_count_ablation(c: &mut Criterion) {
    // How does checking 1..7 properties at once scale? (Design ablation —
    // the paper runs one property per experiment.)
    let mut group = c.benchmark_group("fig8/monitor_count");
    group.sample_size(10);
    for n in [1usize, 4, 7] {
        let ops = &Op::ALL[..n];
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| run_derived_with_ops(config(20, Some(1000)), ops))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_approach2_bounds,
    bench_approach1,
    bench_speedup_pair,
    bench_monitor_count_ablation
);
criterion_main!(benches);
