//! Fig. 8 benchmarks: the two simulation-based verification flows.
//!
//! * per-approach verification runs (the table's V.T. column),
//! * the approach-2-vs-approach-1 speedup pair on identical workloads,
//! * an ablation on the number of concurrently monitored properties.

use eee::{run_derived_single, run_derived_with_ops, run_micro_single, ExperimentConfig, Op};
use sctc_bench::timing::{samples, Bench};
use sctc_core::EngineKind;
use sctc_cpu::IsaKind;

fn config(cases: u64, bound: Option<u64>) -> ExperimentConfig {
    ExperimentConfig {
        seed: 7,
        cases,
        bound,
        fault_percent: 10,
        engine: EngineKind::Table,
        isa: IsaKind::Word32,
        max_ticks: u64::MAX / 2,
        profile: false,
    }
}

fn bench_approach2_bounds(b: &mut Bench) {
    for (label, bound) in [
        ("tb1000", Some(1000u64)),
        ("tb10000", Some(10_000)),
        ("no_tb", None),
    ] {
        b.run(&format!("fig8/approach2/read/{label}"), samples(10), || {
            let outcome = run_derived_single(Op::Read, config(20, bound));
            assert!(outcome.violations.is_empty());
            outcome
        });
    }
}

fn bench_approach1(b: &mut Bench) {
    b.run("fig8/approach1/read_no_tb", samples(5), || {
        let outcome = run_micro_single(Op::Read, config(3, None));
        assert!(outcome.violations.is_empty());
        outcome
    });
}

fn bench_speedup_pair(b: &mut Bench) {
    // Identical workload (same seed, same cases, same property) — the wall
    // time ratio between these two benches is the Section 4.3 speedup.
    b.run("fig8/speedup_pair/approach1", samples(5), || {
        run_micro_single(Op::Read, config(5, None))
    });
    b.run("fig8/speedup_pair/approach2", samples(5), || {
        run_derived_single(Op::Read, config(5, None))
    });
}

fn bench_monitor_count_ablation(b: &mut Bench) {
    // How does checking 1..7 properties at once scale? (Design ablation —
    // the paper runs one property per experiment.)
    for n in [1usize, 4, 7] {
        let ops = &Op::ALL[..n];
        b.run(&format!("fig8/monitor_count/{n}"), samples(10), || {
            run_derived_with_ops(config(20, Some(1000)), ops)
        });
    }
}

fn main() {
    let mut b = Bench::new("fig8_flows");
    bench_approach2_bounds(&mut b);
    bench_approach1(&mut b);
    bench_speedup_pair(&mut b);
    bench_monitor_count_ablation(&mut b);
}
