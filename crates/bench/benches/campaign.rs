//! Campaign benchmarks: sharded fan-out overhead and the shared
//! AR-automaton synthesis cache.
//!
//! * the same derived-model campaign at increasing worker counts (on a
//!   multi-core host the wall time drops; verdicts are identical by
//!   construction),
//! * cold vs warm synthesis of the costly TB-10000 automaton through the
//!   process-wide cache — the warm path is the per-shard registration
//!   cost of a campaign.

use eee::{response_property, Op};
use sctc_bench::timing::{samples, Bench};
use sctc_campaign::{run_campaign, CampaignSpec};
use sctc_temporal::SynthesisCache;

fn bench_worker_scaling(b: &mut Bench) {
    for jobs in [1usize, 2, 4] {
        b.run(
            &format!("campaign/derived_400/jobs{jobs}"),
            samples(5),
            || {
                let report = run_campaign(&CampaignSpec::derived(400, 7).with_jobs(jobs));
                assert!(report.violations.is_empty());
                report
            },
        );
    }
    b.run("campaign/micro_8/jobs2", samples(3), || {
        run_campaign(&CampaignSpec::micro(8, 7).with_jobs(2))
    });
}

fn bench_synthesis_cache(b: &mut Bench) {
    let formula = response_property(Op::Read, Some(10_000));
    b.run("campaign/synthesis/tb10000_cold", samples(3), || {
        SynthesisCache::global().clear();
        SynthesisCache::global().synthesize(&formula).unwrap()
    });
    // Warm the cache once, then measure pure lookups.
    SynthesisCache::global().synthesize(&formula).unwrap();
    b.run("campaign/synthesis/tb10000_warm", samples(20), || {
        SynthesisCache::global().synthesize(&formula).unwrap()
    });
}

fn main() {
    let mut b = Bench::new("campaign");
    bench_worker_scaling(&mut b);
    bench_synthesis_cache(&mut b);
}
