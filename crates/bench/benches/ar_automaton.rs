//! AR-automaton benchmarks: synthesis cost versus the time bound
//! (the "large AR-automaton generation time" of Section 4.3) and the
//! lazy-versus-table monitoring-engine ablation.

use eee::{response_property, Op};
use sctc_bench::timing::{samples, Bench};
use sctc_temporal::{ArAutomaton, Monitor, TableMonitor, TraceMonitor};
use testkit::Rng;

fn bench_synthesis_vs_bound(b: &mut Bench) {
    for bound in [10u64, 100, 1000, 5000] {
        let f = response_property(Op::Read, Some(bound));
        b.run(&format!("ar/synthesis/{bound}"), samples(10), || {
            ArAutomaton::synthesize(&f).expect("synthesizes")
        });
    }
}

fn bench_engines(b: &mut Bench) {
    // Step throughput of the two monitoring engines on the same seeded
    // random trace (sparse triggers, like the EEE testbench produces).
    let f = response_property(Op::Read, Some(1000));
    let mut rng = Rng::new(0x1337);
    let trace: Vec<u64> = (0..2000)
        .map(|_| if rng.chance(3) { 0b01 } else { 0b10 })
        .collect();
    let aut = ArAutomaton::synthesize(&f).expect("synthesizes");
    b.run("ar/engine_steps/table", samples(20), || {
        let mut m = TableMonitor::from_automaton(aut.clone());
        for &v in &trace {
            m.step(v);
        }
        m.verdict()
    });
    b.run("ar/engine_steps/lazy", samples(20), || {
        let mut m = Monitor::new(&f).expect("binds");
        for &v in &trace {
            m.step(v);
        }
        m.verdict()
    });
}

fn main() {
    let mut b = Bench::new("ar_automaton");
    bench_synthesis_vs_bound(&mut b);
    bench_engines(&mut b);
}
