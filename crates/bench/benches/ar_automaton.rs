//! AR-automaton benchmarks: synthesis cost versus the time bound
//! (the "large AR-automaton generation time" of Section 4.3) and the
//! lazy-versus-table monitoring-engine ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eee::{response_property, Op};
use sctc_temporal::{ArAutomaton, Monitor, TableMonitor, TraceMonitor};

fn bench_synthesis_vs_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("ar/synthesis");
    group.sample_size(10);
    for bound in [10u64, 100, 1000, 5000] {
        let f = response_property(Op::Read, Some(bound));
        group.bench_function(BenchmarkId::from_parameter(bound), |b| {
            b.iter(|| ArAutomaton::synthesize(&f).expect("synthesizes"))
        });
    }
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    // Step throughput of the two monitoring engines on the same trace.
    let f = response_property(Op::Read, Some(1000));
    let trace: Vec<u64> = (0..2000u64).map(|i| if i % 37 == 0 { 0b01 } else { 0b10 }).collect();
    let mut group = c.benchmark_group("ar/engine_steps");
    group.sample_size(20);
    group.bench_function("table", |b| {
        let aut = ArAutomaton::synthesize(&f).expect("synthesizes");
        b.iter(|| {
            let mut m = TableMonitor::from_automaton(aut.clone());
            for &v in &trace {
                m.step(v);
            }
            m.verdict()
        })
    });
    group.bench_function("lazy", |b| {
        b.iter(|| {
            let mut m = Monitor::new(&f).expect("binds");
            for &v in &trace {
                m.step(v);
            }
            m.verdict()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_synthesis_vs_bound, bench_engines);
criterion_main!(benches);
