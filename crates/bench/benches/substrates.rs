//! Substrate microbenchmarks: simulation kernel, instruction-set simulator,
//! statement interpreter and SAT solver throughput. These quantify the cost
//! gap between the two timing references (clock cycle vs statement event)
//! that drives the paper's speedup.

use std::rc::Rc;

use checkers::sat::{Lit, SatResult, Solver, Var};
use minic::codegen::{compile, CodegenOptions};
use minic::{lower, parse, Interp};
use sctc_bench::timing::{samples, Bench};
use sctc_cpu::Cpu;
use sctc_sim::{Activation, Duration, ProcessContext, Simulation};

const WORKLOAD: &str = "
    int acc = 0;
    int main() {
        int i = 0;
        while (i < 200) {
            acc = acc + i * 3 - (i >> 1);
            i = i + 1;
        }
        return acc;
    }
";

fn bench_kernel_events(b: &mut Bench) {
    b.run("substrate/kernel_10k_timed_wakeups", samples(10), || {
        let mut sim = Simulation::new();
        let mut remaining = 10_000u32;
        sim.spawn(
            "ticker",
            Box::new(move |_: &mut ProcessContext<'_>| {
                remaining -= 1;
                if remaining == 0 {
                    Activation::Terminate
                } else {
                    Activation::WaitTime(Duration::from_ticks(1))
                }
            }),
        );
        sim.run_to_completion().expect("no scheduler error");
        sim.stats().resumes
    });
}

fn bench_interp_statements(b: &mut Bench) {
    let ir = Rc::new(lower(&parse(WORKLOAD).expect("parse")).expect("typeck"));
    b.run("substrate/interp_statements", samples(10), || {
        let mut interp = Interp::with_virtual_memory(Rc::clone(&ir));
        interp.start_main().expect("main exists");
        interp.run(1_000_000)
    });
}

fn bench_cpu_instructions(b: &mut Bench) {
    let ir = lower(&parse(WORKLOAD).expect("parse")).expect("typeck");
    let compiled = compile(&ir, CodegenOptions::default()).expect("compiles");
    b.run("substrate/cpu_instructions", samples(10), || {
        let mut mem = compiled.build_memory(0x40000);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut mem, 10_000_000).expect("no fault");
        assert!(cpu.is_halted());
        cpu.retired()
    });
}

fn bench_sat_pigeonhole(b: &mut Bench) {
    b.run("substrate/sat_php_6_5", samples(10), || {
        let (pigeons, holes) = (6usize, 5usize);
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..pigeons * holes).map(|_| s.new_var()).collect();
        let v = |p: usize, h: usize| Lit::pos(vars[p * holes + h]);
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| v(p, h)).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[v(p1, h).negate(), v(p2, h).negate()]);
                }
            }
        }
        assert_eq!(s.solve(10_000_000), SatResult::Unsat);
        s.stats().conflicts
    });
}

fn main() {
    let mut b = Bench::new("substrates");
    bench_kernel_events(&mut b);
    bench_interp_statements(&mut b);
    bench_cpu_instructions(&mut b);
    bench_sat_pigeonhole(&mut b);
}
