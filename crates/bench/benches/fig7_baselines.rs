//! Fig. 7 benchmark: the baseline formal checkers on the case study.
//!
//! Times how quickly the BLAST-style engine aborts with a prover exception
//! on each property, and how the CBMC-style engine burns its budget on
//! unwinding — the two failure shapes of the paper's baseline table.

use std::time::Duration;

use checkers::bmc::{self, BmcConfig};
use checkers::predabs::{self, PredAbsConfig, PredAbsOutcome};
use criterion::{criterion_group, criterion_main, Criterion};
use eee::{build_ir, Op};
use sctc_bench::spec_for;

fn bench_blast_baseline(c: &mut Criterion) {
    let ir = build_ir();
    let mut group = c.benchmark_group("fig7/blast_baseline");
    group.sample_size(10);
    for op in [Op::Read, Op::Write, Op::Format] {
        let spec = spec_for(op);
        group.bench_function(op.to_string(), |b| {
            b.iter(|| {
                let outcome = predabs::check(&ir, &spec, PredAbsConfig::default());
                assert!(
                    matches!(outcome, PredAbsOutcome::Exception(_)),
                    "EEE must abort the BLAST baseline, got {outcome:?}"
                );
                outcome
            })
        });
    }
    group.finish();
}

fn bench_cbmc_baseline(c: &mut Criterion) {
    let ir = build_ir();
    let mut group = c.benchmark_group("fig7/cbmc_baseline");
    group.sample_size(10);
    // One representative property with a tight budget: the measured time is
    // the cost of discovering that unwinding does not converge.
    let spec = spec_for(Op::Read);
    let config = BmcConfig {
        wall_budget: Duration::from_secs(2),
        max_conflicts: 50_000,
        max_clauses: 1_500_000,
        ..BmcConfig::default()
    };
    group.bench_function("Read", |b| {
        b.iter(|| {
            let outcome = bmc::check(&ir, &spec, config.clone()).expect("supported");
            assert!(
                outcome.is_resource_out(),
                "EEE must exhaust the CBMC baseline, got {outcome:?}"
            );
            outcome
        })
    });
    group.finish();
}

criterion_group!(benches, bench_blast_baseline, bench_cbmc_baseline);
criterion_main!(benches);
