//! Fig. 7 benchmark: the baseline formal checkers on the case study.
//!
//! Times how quickly the BLAST-style engine aborts with a prover exception
//! on each property, and how the CBMC-style engine burns its budget on
//! unwinding — the two failure shapes of the paper's baseline table.

use std::time::Duration;

use checkers::bmc::{self, BmcConfig};
use checkers::predabs::{self, PredAbsConfig, PredAbsOutcome};
use eee::{build_ir, Op};
use sctc_bench::spec_for;
use sctc_bench::timing::{samples, Bench};

fn bench_blast_baseline(b: &mut Bench) {
    let ir = build_ir();
    for op in [Op::Read, Op::Write, Op::Format] {
        let spec = spec_for(op);
        b.run(&format!("fig7/blast_baseline/{op}"), samples(10), || {
            let outcome = predabs::check(&ir, &spec, PredAbsConfig::default());
            assert!(
                matches!(outcome, PredAbsOutcome::Exception(_)),
                "EEE must abort the BLAST baseline, got {outcome:?}"
            );
            outcome
        });
    }
}

fn bench_cbmc_baseline(b: &mut Bench) {
    let ir = build_ir();
    // One representative property with a tight budget: the measured time is
    // the cost of discovering that unwinding does not converge.
    let spec = spec_for(Op::Read);
    let config = BmcConfig {
        wall_budget: Duration::from_secs(2),
        max_conflicts: 50_000,
        max_clauses: 1_500_000,
        ..BmcConfig::default()
    };
    b.run("fig7/cbmc_baseline/Read", samples(5), || {
        let outcome = bmc::check(&ir, &spec, config.clone()).expect("supported");
        assert!(
            outcome.is_resource_out(),
            "EEE must exhaust the CBMC baseline, got {outcome:?}"
        );
        outcome
    });
}

fn main() {
    let mut b = Bench::new("fig7_baselines");
    bench_blast_baseline(&mut b);
    bench_cbmc_baseline(&mut b);
}
