//! # stimuli — constrained-random stimulus generation and coverage
//!
//! The paper's testbenches generate constrained-random values "for all the
//! external input variables and hardware (i.e. Data Flash) elements" and
//! report coverage as "the percentage of the return values that we
//! received". This crate provides both halves:
//!
//! * [`Stimulus`] — a seeded, reproducible generator with the constraint
//!   shapes a testbench needs (ranges, weighted choices, probabilities),
//! * [`ReturnCoverage`] — the C.(%) metric: per key (operation), which of
//!   the specified return values have been observed.
//!
//! ## Example
//!
//! ```
//! use stimuli::{ReturnCoverage, Stimulus};
//!
//! let mut stim = Stimulus::new(42);
//! let id = stim.int_in(0, 15);
//! assert!((0..=15).contains(&id));
//!
//! let mut cov = ReturnCoverage::new();
//! cov.declare("read", &[1, 3, 5]);
//! cov.record("read", 1);
//! cov.record("read", 3);
//! assert!((cov.percent("read") - 66.66).abs() < 1.0);
//! ```

#![warn(missing_docs)]

mod coverage;
mod generator;

pub use coverage::ReturnCoverage;
pub use generator::{derive_seed, derive_seed_salted, Stimulus};
