//! Seeded constrained-random stimulus generation.

use testkit::{mix_seed, Rng};

/// Derives an independent sub-seed from a campaign seed and a shard/case
/// index (testkit's SplitMix64 mixer).
///
/// Campaign runners use this to give every shard its own stimulus stream
/// while keeping the whole campaign a pure function of `(base, index)` —
/// results are bit-identical no matter how many worker threads pull the
/// shards.
///
/// # Examples
///
/// ```
/// use stimuli::derive_seed;
///
/// assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
/// assert_ne!(derive_seed(7, 3), derive_seed(7, 4));
/// ```
pub fn derive_seed(base: u64, index: u64) -> u64 {
    mix_seed(base, index)
}

/// Derives an independent sub-seed separated by a stream salt: two
/// consumers of the same `(base, index)` pair (e.g. a shard's request
/// stimulus and that shard's randomized fault plan) stay statistically
/// independent by mixing under different salts.
///
/// # Examples
///
/// ```
/// use stimuli::{derive_seed, derive_seed_salted};
///
/// assert_eq!(derive_seed_salted(7, 0xA5, 3), derive_seed_salted(7, 0xA5, 3));
/// assert_ne!(derive_seed_salted(7, 0xA5, 3), derive_seed_salted(7, 0xA6, 3));
/// assert_ne!(derive_seed_salted(7, 0xA5, 3), derive_seed(7, 3));
/// ```
pub fn derive_seed_salted(base: u64, salt: u64, index: u64) -> u64 {
    mix_seed(mix_seed(base, salt), index)
}

/// A reproducible constrained-random generator.
///
/// All draws go through one seeded PRNG, so a test case sequence is fully
/// determined by its seed — essential for debugging failing runs.
///
/// # Examples
///
/// ```
/// use stimuli::Stimulus;
///
/// let mut a = Stimulus::new(7);
/// let mut b = Stimulus::new(7);
/// assert_eq!(a.int_in(0, 100), b.int_in(0, 100));
/// ```
#[derive(Debug)]
pub struct Stimulus {
    rng: Rng,
    seed: u64,
    draws: u64,
}

impl Stimulus {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Stimulus {
            rng: Rng::new(seed),
            seed,
            draws: 0,
        }
    }

    /// Creates the generator for one indexed sub-stream (shard or test
    /// case) of a campaign: shorthand for `Stimulus::new(derive_seed(base,
    /// index))`.
    pub fn for_case(base: u64, index: u64) -> Self {
        Stimulus::new(derive_seed(base, index))
    }

    /// Returns the seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the number of random draws taken so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Draws an integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_in(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo <= hi, "empty range");
        self.draws += 1;
        self.rng.i32_in(lo, hi)
    }

    /// Draws one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        let i = self.int_in(0, items.len() as i32 - 1) as usize;
        items[i]
    }

    /// Draws one element according to integer weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or the slice is empty.
    pub fn weighted<T: Copy>(&mut self, items: &[(T, u32)]) -> T {
        let total: u64 = items.iter().map(|&(_, w)| u64::from(w)).sum();
        assert!(total > 0, "weighted choice needs a positive total weight");
        self.draws += 1;
        let mut point = self.rng.below(total);
        for &(item, w) in items {
            let w = u64::from(w);
            if point < w {
                return item;
            }
            point -= w;
        }
        unreachable!("point always falls inside the total weight")
    }

    /// Returns `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: u32) -> bool {
        self.draws += 1;
        self.rng.below(100) < u64::from(percent.min(100))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Stimulus::new(1234);
        let mut b = Stimulus::new(1234);
        for _ in 0..100 {
            assert_eq!(a.int_in(-50, 50), b.int_in(-50, 50));
        }
        assert_eq!(a.draws(), 100);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Stimulus::new(1);
        let mut b = Stimulus::new(2);
        let va: Vec<i32> = (0..32).map(|_| a.int_in(0, 1000)).collect();
        let vb: Vec<i32> = (0..32).map(|_| b.int_in(0, 1000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn int_in_respects_bounds() {
        let mut s = Stimulus::new(9);
        for _ in 0..1000 {
            let v = s.int_in(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut s = Stimulus::new(5);
        for _ in 0..200 {
            let v = s.weighted(&[("never", 0), ("always", 10)]);
            assert_eq!(v, "always");
        }
    }

    #[test]
    fn weighted_roughly_follows_weights() {
        let mut s = Stimulus::new(11);
        let mut heavy = 0;
        for _ in 0..1000 {
            if s.weighted(&[(true, 90), (false, 10)]) {
                heavy += 1;
            }
        }
        assert!(heavy > 800, "heavy arm drawn {heavy}/1000");
    }

    #[test]
    fn chance_extremes() {
        let mut s = Stimulus::new(3);
        assert!(!(0..100).any(|_| s.chance(0)));
        assert!((0..100).all(|_| s.chance(100)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Stimulus::new(0).int_in(5, 4);
    }
}
