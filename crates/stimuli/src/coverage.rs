//! Return-value coverage — the paper's C.(%) metric.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Tracks, per key (operation), which of the specified return values have
/// been observed.
///
/// # Examples
///
/// ```
/// use stimuli::ReturnCoverage;
///
/// let mut cov = ReturnCoverage::new();
/// cov.declare("write", &[1, 2, 4]);
/// cov.record("write", 1);
/// cov.record("write", 7); // unspecified values are counted separately
/// assert!((cov.percent("write") - 33.33).abs() < 0.1);
/// assert_eq!(cov.unspecified("write"), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ReturnCoverage {
    entries: BTreeMap<String, Entry>,
}

#[derive(Clone, Debug, Default)]
struct Entry {
    spec: BTreeSet<i32>,
    seen: BTreeSet<i32>,
    unspecified: u64,
    observations: u64,
}

impl ReturnCoverage {
    /// Creates an empty collector.
    pub fn new() -> Self {
        ReturnCoverage::default()
    }

    /// Declares the specified return values for a key. Re-declaring a key
    /// extends its specification.
    pub fn declare(&mut self, key: &str, spec: &[i32]) {
        let entry = self.entries.entry(key.to_owned()).or_default();
        entry.spec.extend(spec.iter().copied());
    }

    /// Records an observed return value.
    ///
    /// # Panics
    ///
    /// Panics if the key was never declared (harness bug).
    pub fn record(&mut self, key: &str, value: i32) {
        let entry = self
            .entries
            .get_mut(key)
            .unwrap_or_else(|| panic!("coverage key `{key}` not declared"));
        entry.observations += 1;
        if entry.spec.contains(&value) {
            entry.seen.insert(value);
        } else {
            entry.unspecified += 1;
        }
    }

    /// Coverage of one key in percent (0 when nothing is specified).
    ///
    /// # Panics
    ///
    /// Panics if the key was never declared.
    pub fn percent(&self, key: &str) -> f64 {
        let entry = self
            .entries
            .get(key)
            .unwrap_or_else(|| panic!("coverage key `{key}` not declared"));
        if entry.spec.is_empty() {
            return 0.0;
        }
        100.0 * entry.seen.len() as f64 / entry.spec.len() as f64
    }

    /// Coverage of one key in percent; `None` if the key was never
    /// declared. The non-panicking form of [`ReturnCoverage::percent`],
    /// for callers merging collectors that may not all declare the same
    /// keys (for example a campaign whose shard list is empty).
    pub fn percent_of(&self, key: &str) -> Option<f64> {
        self.entries.get(key)?;
        Some(self.percent(key))
    }

    /// Number of observations outside the specification for a key.
    pub fn unspecified(&self, key: &str) -> u64 {
        self.entries.get(key).map_or(0, |e| e.unspecified)
    }

    /// Number of observations recorded for a key.
    pub fn observations(&self, key: &str) -> u64 {
        self.entries.get(key).map_or(0, |e| e.observations)
    }

    /// The specified values not yet observed for a key.
    pub fn missing(&self, key: &str) -> Vec<i32> {
        self.entries
            .get(key)
            .map(|e| e.spec.difference(&e.seen).copied().collect())
            .unwrap_or_default()
    }

    /// Folds another collector into this one: specifications are unioned,
    /// observed values are unioned, unspecified/observation counts are
    /// summed. Campaign runners use this to reduce per-shard coverage into
    /// one campaign-wide C.(%) table.
    pub fn merge(&mut self, other: &ReturnCoverage) {
        for (key, theirs) in &other.entries {
            let entry = self.entries.entry(key.clone()).or_default();
            entry.spec.extend(theirs.spec.iter().copied());
            entry.seen.extend(theirs.seen.iter().copied());
            entry.unspecified += theirs.unspecified;
            entry.observations += theirs.observations;
        }
    }

    /// Mean coverage over all declared keys, in percent.
    pub fn overall_percent(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.entries.keys().map(|k| self.percent(k)).sum();
        sum / self.entries.len() as f64
    }

    /// Iterates over declared keys.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }
}

impl fmt::Display for ReturnCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (key, entry) in &self.entries {
            writeln!(
                f,
                "{key}: {}/{} specified values seen ({:.1}%), {} unspecified",
                entry.seen.len(),
                entry.spec.len(),
                self.percent(key),
                entry.unspecified
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_counts_distinct_specified_values() {
        let mut cov = ReturnCoverage::new();
        cov.declare("op", &[1, 2, 3, 4]);
        cov.record("op", 1);
        cov.record("op", 1);
        cov.record("op", 2);
        assert!((cov.percent("op") - 50.0).abs() < f64::EPSILON);
        assert_eq!(cov.observations("op"), 3);
        assert_eq!(cov.missing("op"), vec![3, 4]);
    }

    #[test]
    fn unspecified_values_do_not_count() {
        let mut cov = ReturnCoverage::new();
        cov.declare("op", &[1]);
        cov.record("op", 9);
        assert_eq!(cov.percent("op"), 0.0);
        assert_eq!(cov.unspecified("op"), 1);
    }

    #[test]
    fn overall_is_mean_over_keys() {
        let mut cov = ReturnCoverage::new();
        cov.declare("a", &[1, 2]);
        cov.declare("b", &[1]);
        cov.record("a", 1);
        cov.record("b", 1);
        assert!((cov.overall_percent() - 75.0).abs() < f64::EPSILON);
        assert_eq!(cov.keys().count(), 2);
    }

    #[test]
    fn merge_unions_seen_and_sums_counts() {
        let mut a = ReturnCoverage::new();
        a.declare("op", &[1, 2, 3, 4]);
        a.record("op", 1);
        a.record("op", 9);
        let mut b = ReturnCoverage::new();
        b.declare("op", &[1, 2, 3, 4]);
        b.declare("other", &[7]);
        b.record("op", 2);
        b.record("op", 1);
        b.record("other", 7);
        a.merge(&b);
        assert!((a.percent("op") - 50.0).abs() < f64::EPSILON);
        assert_eq!(a.observations("op"), 4);
        assert_eq!(a.unspecified("op"), 1);
        assert!((a.percent("other") - 100.0).abs() < f64::EPSILON);
        assert_eq!(a.missing("op"), vec![3, 4]);
    }

    #[test]
    fn merge_with_empty_collector_is_identity_both_ways() {
        let mut a = ReturnCoverage::new();
        a.declare("op", &[1, 2]);
        a.record("op", 1);
        a.merge(&ReturnCoverage::new());
        assert!((a.percent("op") - 50.0).abs() < f64::EPSILON);
        assert_eq!(a.observations("op"), 1);

        let mut empty = ReturnCoverage::new();
        empty.merge(&a);
        assert!((empty.percent("op") - 50.0).abs() < f64::EPSILON);
        assert_eq!(empty.observations("op"), 1);
        assert_eq!(empty.keys().count(), 1);
    }

    #[test]
    fn merge_with_disjoint_keys_keeps_both_sides_intact() {
        let mut a = ReturnCoverage::new();
        a.declare("read", &[1, 3]);
        a.record("read", 1);
        let mut b = ReturnCoverage::new();
        b.declare("write", &[1, 2, 4, 5]);
        b.record("write", 2);
        b.record("write", 4);
        a.merge(&b);
        assert_eq!(a.keys().count(), 2);
        assert!((a.percent("read") - 50.0).abs() < f64::EPSILON);
        assert!((a.percent("write") - 50.0).abs() < f64::EPSILON);
        assert_eq!(a.missing("read"), vec![3]);
        assert_eq!(a.missing("write"), vec![1, 5]);
        // `b` was only borrowed: its own state is untouched.
        assert_eq!(b.keys().count(), 1);
        assert_eq!(b.observations("write"), 2);
    }

    #[test]
    fn merge_extends_a_declared_but_unobserved_key() {
        // A shard that declared coverage but completed zero cases must not
        // erase another shard's observations — and vice versa.
        let mut a = ReturnCoverage::new();
        a.declare("op", &[1, 2]);
        let mut b = ReturnCoverage::new();
        b.declare("op", &[1, 2, 3]);
        b.record("op", 3);
        a.merge(&b);
        assert_eq!(a.missing("op"), vec![1, 2]);
        assert!((a.percent("op") - (100.0 / 3.0)).abs() < 1e-9);
        assert_eq!(a.unspecified("op"), 0);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn recording_unknown_key_panics() {
        ReturnCoverage::new().record("nope", 1);
    }

    #[test]
    fn display_summarises() {
        let mut cov = ReturnCoverage::new();
        cov.declare("read", &[1, 3]);
        cov.record("read", 3);
        let text = cov.to_string();
        assert!(text.contains("read"));
        assert!(text.contains("50.0%"));
    }
}
