//! Property-based kernel tests: determinism and time-ordering of the
//! scheduler under randomized models.

use std::cell::RefCell;
use std::rc::Rc;

use sctc_sim::{Activation, Duration, Notify, ProcessContext, Simulation};
use testkit::{Checker, Source};

/// A randomized model: a set of processes, each with a wake-up schedule.
#[derive(Clone, Debug)]
struct Model {
    /// Per process: wait durations between steps.
    schedules: Vec<Vec<u64>>,
    /// Timed event notifications (delay per event).
    events: Vec<u64>,
}

/// 1–4 processes with 1–5 waits of 0–19 ticks, plus 0–5 timed events.
fn gen_model(src: &mut Source<'_>) -> Model {
    let nproc = src.usize_in(1, 4);
    let schedules = (0..nproc)
        .map(|_| {
            let steps = src.usize_in(1, 5);
            (0..steps).map(|_| src.u64_in(0, 19)).collect()
        })
        .collect();
    let nevents = src.usize_in(0, 5);
    let events = (0..nevents).map(|_| src.u64_in(0, 49)).collect();
    Model { schedules, events }
}

/// Runs the model, recording (time, process tag) for every step.
fn run(model: &Model) -> (Vec<(u64, usize)>, u64) {
    let mut sim = Simulation::new();
    let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
    for (tag, schedule) in model.schedules.iter().enumerate() {
        let log = log.clone();
        let schedule = schedule.clone();
        let mut idx = 0usize;
        sim.spawn(
            &format!("p{tag}"),
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                log.borrow_mut().push((ctx.now().ticks(), tag));
                if idx >= schedule.len() {
                    return Activation::Terminate;
                }
                let d = schedule[idx];
                idx += 1;
                Activation::WaitTime(Duration::from_ticks(d))
            }),
        );
    }
    for &delay in &model.events {
        let e = sim.create_event("e");
        sim.notify(e, Notify::After(Duration::from_ticks(delay)));
    }
    sim.run_to_completion().expect("no scheduler error");
    let out = log.borrow().clone();
    (out, sim.now().ticks())
}

/// Identical models produce bit-identical schedules.
#[test]
fn scheduling_is_deterministic() {
    Checker::new("scheduling_is_deterministic")
        .cases(128)
        .run(gen_model, |model| {
            let (log_a, end_a) = run(model);
            let (log_b, end_b) = run(model);
            assert_eq!(log_a, log_b);
            assert_eq!(end_a, end_b);
        });
}

/// Observed times never decrease, and no step happens after the end.
#[test]
fn time_is_monotone() {
    Checker::new("time_is_monotone")
        .cases(128)
        .run(gen_model, |model| {
            let (log, end) = run(model);
            let mut last = 0u64;
            for &(t, _) in &log {
                assert!(t >= last, "time went backwards: {t} < {last}");
                assert!(t <= end);
                last = t;
            }
        });
}

/// Every scheduled process step happens exactly once per schedule entry
/// (plus the initial step).
#[test]
fn all_steps_execute() {
    Checker::new("all_steps_execute")
        .cases(128)
        .run(gen_model, |model| {
            let (log, _) = run(model);
            for (tag, schedule) in model.schedules.iter().enumerate() {
                let count = log.iter().filter(|&&(_, t)| t == tag).count();
                assert_eq!(count, schedule.len() + 1, "process {tag} steps");
            }
        });
}

/// The final time equals the latest activity in the system.
#[test]
fn end_time_matches_latest_activity() {
    Checker::new("end_time_matches_latest_activity")
        .cases(128)
        .run(gen_model, |model| {
            let (log, end) = run(model);
            let last_step = log.iter().map(|&(t, _)| t).max().unwrap_or(0);
            let last_event = model.events.iter().copied().max().unwrap_or(0);
            assert_eq!(end, last_step.max(last_event));
        });
}
