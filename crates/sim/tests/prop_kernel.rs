//! Property-based kernel tests: determinism and time-ordering of the
//! scheduler under randomized models.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use sctc_sim::{Activation, Duration, Notify, ProcessContext, Simulation};

/// A randomized model: a set of processes, each with a wake-up schedule.
#[derive(Clone, Debug)]
struct Model {
    /// Per process: wait durations between steps.
    schedules: Vec<Vec<u64>>,
    /// Timed event notifications (delay per event).
    events: Vec<u64>,
}

fn model_strategy() -> impl Strategy<Value = Model> {
    (
        proptest::collection::vec(proptest::collection::vec(0u64..20, 1..6), 1..5),
        proptest::collection::vec(0u64..50, 0..6),
    )
        .prop_map(|(schedules, events)| Model { schedules, events })
}

/// Runs the model, recording (time, process tag) for every step.
fn run(model: &Model) -> (Vec<(u64, usize)>, u64) {
    let mut sim = Simulation::new();
    let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
    for (tag, schedule) in model.schedules.iter().enumerate() {
        let log = log.clone();
        let schedule = schedule.clone();
        let mut idx = 0usize;
        sim.spawn(
            &format!("p{tag}"),
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                log.borrow_mut().push((ctx.now().ticks(), tag));
                if idx >= schedule.len() {
                    return Activation::Terminate;
                }
                let d = schedule[idx];
                idx += 1;
                Activation::WaitTime(Duration::from_ticks(d))
            }),
        );
    }
    for &delay in &model.events {
        let e = sim.create_event("e");
        sim.notify(e, Notify::After(Duration::from_ticks(delay)));
    }
    sim.run_to_completion().expect("no scheduler error");
    let out = log.borrow().clone();
    (out, sim.now().ticks())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Identical models produce bit-identical schedules.
    #[test]
    fn scheduling_is_deterministic(model in model_strategy()) {
        let (log_a, end_a) = run(&model);
        let (log_b, end_b) = run(&model);
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(end_a, end_b);
    }

    /// Observed times never decrease, and no step happens after the end.
    #[test]
    fn time_is_monotone(model in model_strategy()) {
        let (log, end) = run(&model);
        let mut last = 0u64;
        for &(t, _) in &log {
            prop_assert!(t >= last, "time went backwards: {t} < {last}");
            prop_assert!(t <= end);
            last = t;
        }
    }

    /// Every scheduled process step happens exactly once per schedule entry
    /// (plus the initial step).
    #[test]
    fn all_steps_execute(model in model_strategy()) {
        let (log, _) = run(&model);
        for (tag, schedule) in model.schedules.iter().enumerate() {
            let count = log.iter().filter(|&&(_, t)| t == tag).count();
            prop_assert_eq!(count, schedule.len() + 1, "process {} steps", tag);
        }
    }

    /// The final time equals the latest activity in the system.
    #[test]
    fn end_time_matches_latest_activity(model in model_strategy()) {
        let (log, end) = run(&model);
        let last_step = log.iter().map(|&(t, _)| t).max().unwrap_or(0);
        let last_event = model.events.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(end, last_step.max(last_event));
    }
}
