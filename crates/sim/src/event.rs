//! Events and notification kinds.
//!
//! Events follow SystemC semantics. An [`Event`] is a lightweight handle into
//! the kernel's event table; notification comes in three flavours
//! ([`Notify`]): immediate (same evaluate phase), delta (next delta cycle)
//! and timed (a future simulation time).

use std::fmt;

use crate::process::ProcessId;
use crate::time::Duration;

/// A handle to a kernel-owned event.
///
/// Create events with [`Simulation::create_event`] and notify them from
/// process code through [`ProcessContext::notify`].
///
/// # Examples
///
/// ```
/// use sctc_sim::Simulation;
///
/// let mut sim = Simulation::new();
/// let e = sim.create_event("irq");
/// assert_eq!(sim.event_name(e), "irq");
/// ```
///
/// [`Simulation::create_event`]: crate::Simulation::create_event
/// [`ProcessContext::notify`]: crate::ProcessContext::notify
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Event(pub(crate) u32);

impl Event {
    /// Returns the raw index of this event in the kernel's event table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

/// How an event notification is delivered.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Notify {
    /// Wake waiting processes in the current evaluate phase.
    Immediate,
    /// Wake waiting processes in the next delta cycle (SystemC
    /// `notify(SC_ZERO_TIME)`).
    Delta,
    /// Wake waiting processes after the given simulation-time offset.
    After(Duration),
}

/// Kernel-internal record for one event.
#[derive(Debug, Default)]
pub(crate) struct EventRecord {
    pub(crate) name: String,
    /// Processes dynamically waiting on this event (cleared when fired).
    pub(crate) waiters: Vec<ProcessId>,
    /// Processes statically sensitive to this event (persistent).
    pub(crate) static_sensitive: Vec<ProcessId>,
    /// Number of times this event has fired (for statistics).
    pub(crate) fired: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_handle_exposes_index_and_display() {
        let e = Event(3);
        assert_eq!(e.index(), 3);
        assert_eq!(e.to_string(), "event#3");
    }

    #[test]
    fn notify_kinds_are_distinct() {
        assert_ne!(Notify::Immediate, Notify::Delta);
        assert_ne!(Notify::Delta, Notify::After(Duration::ZERO));
    }
}
