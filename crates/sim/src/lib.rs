//! # sctc-sim — discrete-event simulation kernel
//!
//! A from-scratch SystemC substitute providing exactly the mechanisms the
//! SystemC Temporal Checker (SCTC) of the DATE 2008 paper relies on:
//!
//! * simulation time in abstract ticks ([`SimTime`], [`Duration`]),
//! * [`Event`]s with immediate / delta / timed notification ([`Notify`]),
//! * cooperative [`Process`]es resumed by the kernel, yielding
//!   [`Activation`]s (wait-on-event, wait-any, wait-for-time, static wait),
//! * [`Signal`]s with evaluate/update (delta-cycle) semantics,
//! * free-running [`Clock`]s with posedge/negedge events,
//! * a value-change [`Tracer`].
//!
//! The scheduler is single-threaded and deterministic: given the same model
//! and spawn order, runs are bit-for-bit reproducible.
//!
//! ## Example
//!
//! ```
//! use sctc_sim::{Activation, Duration, Notify, ProcessContext, Simulation};
//!
//! let mut sim = Simulation::new();
//! let clk = sim.create_clock("clk", Duration::from_ticks(10));
//! let done = sim.create_event("done");
//!
//! let mut cycles = 0;
//! sim.spawn_sensitive(
//!     "counter",
//!     Box::new(move |ctx: &mut ProcessContext<'_>| {
//!         cycles += 1;
//!         if cycles == 5 {
//!             ctx.notify(done, Notify::Immediate);
//!             // Stop the simulation: the free-running clock would
//!             // otherwise keep it alive forever.
//!             ctx.stop();
//!             return Activation::Terminate;
//!         }
//!         Activation::WaitStatic
//!     }),
//!     vec![clk.posedge()],
//! );
//!
//! sim.run_to_completion().unwrap();
//! assert_eq!(sim.event_fire_count(done), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod event;
mod kernel;
mod process;
mod signal;
mod time;
mod trace;

pub use clock::Clock;
pub use event::{Event, Notify};
pub use kernel::{KernelStats, ProcessContext, RunError, RunOutcome, Simulation};
pub use process::{Activation, Process, ProcessId};
pub use signal::{Signal, SignalId, SignalValue};
pub use time::{Duration, SimTime};
pub use trace::{TraceRecord, Tracer};
