//! The discrete-event simulation kernel.
//!
//! The scheduler follows SystemC's evaluate/update/notify structure:
//!
//! 1. **Evaluate** — resume every runnable process. Immediate notifications
//!    wake processes within the same phase.
//! 2. **Update** — apply pending signal writes; a changed value schedules the
//!    signal's change event as a delta notification.
//! 3. **Delta notify** — fire delta-notified events; woken processes run in
//!    the next delta cycle at the same simulation time.
//! 4. When no delta work remains, advance to the earliest timed notification.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::marker::PhantomData;

use crate::event::{Event, EventRecord, Notify};
use crate::process::{Activation, ProcSlot, ProcState, Process, ProcessId};
use crate::signal::{AnySignal, SigInner, Signal, SignalId, SignalValue};
use crate::time::{Duration, SimTime};
use crate::trace::Tracer;

/// Why a [`Simulation::run`] call returned.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// No runnable processes and no pending notifications remain.
    Quiescent,
    /// The time limit passed to `run` was reached.
    TimeLimit,
    /// A process requested a simulation stop via [`ProcessContext::stop`].
    Stopped,
}

/// An error raised by the kernel while running.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunError {
    /// More delta cycles elapsed at one time point than the configured limit;
    /// almost always a zero-delay feedback loop in the model.
    DeltaLimitExceeded {
        /// Time point at which the loop was detected.
        at: SimTime,
        /// The configured limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::DeltaLimitExceeded { at, limit } => write!(
                f,
                "delta-cycle limit of {limit} exceeded at {at}; model likely has a zero-delay loop"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Aggregate kernel statistics, available via [`Simulation::stats`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct KernelStats {
    /// Total process resumes performed.
    pub resumes: u64,
    /// Total delta cycles executed.
    pub delta_cycles: u64,
    /// Total events fired.
    pub events_fired: u64,
    /// Total timed-wheel advances.
    pub time_advances: u64,
}

impl KernelStats {
    /// Sums another kernel's statistics into this one. Campaign runners use
    /// this to aggregate the independent per-shard kernels into one set of
    /// campaign-wide scheduler counters.
    pub fn merge(&mut self, other: &KernelStats) {
        self.resumes += other.resumes;
        self.delta_cycles += other.delta_cycles;
        self.events_fired += other.events_fired;
        self.time_advances += other.time_advances;
    }
}

/// The simulation kernel: owns events, signals, processes and the scheduler.
///
/// # Examples
///
/// ```
/// use sctc_sim::{Duration, Simulation};
///
/// let mut sim = Simulation::new();
/// let clk = sim.create_clock("clk", Duration::from_ticks(10));
/// sim.run_for(Duration::from_ticks(95)).unwrap();
/// // Posedges at t = 0, 10, ..., 90.
/// assert_eq!(sim.event_fire_count(clk.posedge()), 10);
/// ```
pub struct Simulation {
    now: SimTime,
    events: Vec<EventRecord>,
    procs: Vec<ProcSlot>,
    signals: Vec<Box<dyn AnySignal>>,
    runnable: VecDeque<ProcessId>,
    delta_notified: Vec<Event>,
    update_queue: Vec<SignalId>,
    timed_events: BinaryHeap<Reverse<(SimTime, u64, Event)>>,
    timed_procs: BinaryHeap<Reverse<(SimTime, u64, ProcessId)>>,
    seq: u64,
    stop_requested: bool,
    delta_limit: u64,
    stats: KernelStats,
    tracer: Tracer,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            now: SimTime::ZERO,
            events: Vec::new(),
            procs: Vec::new(),
            signals: Vec::new(),
            runnable: VecDeque::new(),
            delta_notified: Vec::new(),
            update_queue: Vec::new(),
            timed_events: BinaryHeap::new(),
            timed_procs: BinaryHeap::new(),
            seq: 0,
            stop_requested: false,
            delta_limit: 1_000_000,
            stats: KernelStats::default(),
            tracer: Tracer::new(),
        }
    }

    /// Sets the per-time-point delta-cycle limit used to detect zero-delay
    /// loops. The default is one million.
    pub fn set_delta_limit(&mut self, limit: u64) {
        self.delta_limit = limit.max(1);
    }

    /// Returns the current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns aggregate scheduler statistics.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Returns the signal-change tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Bounds the signal trace to its most recent `cap` records
    /// (ring-buffer mode, oldest dropped first); `None` restores
    /// unbounded growth. See [`Tracer::set_capacity`].
    pub fn set_trace_capacity(&mut self, cap: Option<usize>) {
        self.tracer.set_capacity(cap);
    }

    // ------------------------------------------------------------------
    // Construction of events, signals, processes.
    // ------------------------------------------------------------------

    /// Creates a named event.
    pub fn create_event(&mut self, name: &str) -> Event {
        let id = Event(self.events.len() as u32);
        self.events.push(EventRecord {
            name: name.to_owned(),
            ..EventRecord::default()
        });
        id
    }

    /// Returns the name an event was created with.
    pub fn event_name(&self, event: Event) -> &str {
        &self.events[event.index()].name
    }

    /// Returns how many times an event has fired so far.
    pub fn event_fire_count(&self, event: Event) -> u64 {
        self.events[event.index()].fired
    }

    /// Creates a named signal with an initial value.
    pub fn create_signal<T: SignalValue>(&mut self, name: &str, initial: T) -> Signal<T> {
        let changed = self.create_event(&format!("{name}.changed"));
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(Box::new(SigInner {
            name: name.to_owned(),
            current: initial,
            next: None,
            changed,
        }));
        Signal {
            id,
            _marker: PhantomData,
        }
    }

    /// Returns the current value of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the handle was created by a different simulation with an
    /// incompatible value type.
    pub fn signal_value<T: SignalValue>(&self, signal: Signal<T>) -> T {
        self.sig_inner(signal).current.clone()
    }

    /// Returns the event that fires one delta after the signal changes value.
    pub fn signal_changed_event<T: SignalValue>(&self, signal: Signal<T>) -> Event {
        self.sig_inner(signal).changed
    }

    /// Overwrites a signal's value outside the scheduler (testbench
    /// initialisation). Does not fire the change event.
    pub fn force_signal<T: SignalValue>(&mut self, signal: Signal<T>, value: T) {
        self.sig_inner_mut(signal).current = value;
    }

    fn sig_inner<T: SignalValue>(&self, signal: Signal<T>) -> &SigInner<T> {
        self.signals[signal.id.index()]
            .as_any()
            .downcast_ref::<SigInner<T>>()
            .expect("signal handle used with wrong value type")
    }

    fn sig_inner_mut<T: SignalValue>(&mut self, signal: Signal<T>) -> &mut SigInner<T> {
        self.signals[signal.id.index()]
            .as_any_mut()
            .downcast_mut::<SigInner<T>>()
            .expect("signal handle used with wrong value type")
    }

    /// Enables change tracing for a signal; see [`Tracer`].
    pub fn trace_signal_id(&mut self, id: SignalId) {
        let name = self.signals[id.index()].name().to_owned();
        let value = self.signals[id.index()].value_string();
        self.tracer.enable(id, name);
        self.tracer.record(SimTime::ZERO, id, value);
    }

    /// Enables change tracing for a typed signal handle.
    pub fn trace_signal<T: SignalValue>(&mut self, signal: Signal<T>) {
        self.trace_signal_id(signal.id);
    }

    /// Spawns a process with no static sensitivity. The process is runnable
    /// in the first delta cycle.
    pub fn spawn(&mut self, name: &str, body: Box<dyn Process>) -> ProcessId {
        self.spawn_sensitive(name, body, Vec::new())
    }

    /// Spawns a process statically sensitive to the given events.
    ///
    /// The process is resumed once at simulation start (like an SystemC
    /// thread before its first `wait()`), then according to its activations.
    pub fn spawn_sensitive(
        &mut self,
        name: &str,
        body: Box<dyn Process>,
        static_sensitivity: Vec<Event>,
    ) -> ProcessId {
        let pid = ProcessId(self.procs.len() as u32);
        for &event in &static_sensitivity {
            self.events[event.index()].static_sensitive.push(pid);
        }
        self.procs.push(ProcSlot {
            name: name.to_owned(),
            body: Some(body),
            state: ProcState::Runnable,
            static_sensitivity,
            dynamic_waits: Vec::new(),
            resumes: 0,
        });
        self.runnable.push_back(pid);
        pid
    }

    /// Spawns a process that is **not** resumed at simulation start
    /// (SystemC `dont_initialize()`): it first runs when one of its static
    /// sensitivity events fires.
    ///
    /// # Panics
    ///
    /// Panics if `static_sensitivity` is empty — the process could never
    /// run.
    pub fn spawn_deferred(
        &mut self,
        name: &str,
        body: Box<dyn Process>,
        static_sensitivity: Vec<Event>,
    ) -> ProcessId {
        assert!(
            !static_sensitivity.is_empty(),
            "a deferred process needs static sensitivity"
        );
        let pid = ProcessId(self.procs.len() as u32);
        for &event in &static_sensitivity {
            self.events[event.index()].static_sensitive.push(pid);
        }
        self.procs.push(ProcSlot {
            name: name.to_owned(),
            body: Some(body),
            state: ProcState::WaitingStatic,
            static_sensitivity,
            dynamic_waits: Vec::new(),
            resumes: 0,
        });
        pid
    }

    /// Returns the name a process was spawned with.
    pub fn process_name(&self, pid: ProcessId) -> &str {
        &self.procs[pid.index()].name
    }

    /// Returns how many times a process has been resumed.
    pub fn process_resume_count(&self, pid: ProcessId) -> u64 {
        self.procs[pid.index()].resumes
    }

    /// Returns `true` once a process has terminated.
    pub fn process_terminated(&self, pid: ProcessId) -> bool {
        self.procs[pid.index()].state == ProcState::Terminated
    }

    // ------------------------------------------------------------------
    // Notification plumbing.
    // ------------------------------------------------------------------

    /// Notifies an event from outside process context (testbench code).
    pub fn notify(&mut self, event: Event, kind: Notify) {
        match kind {
            Notify::Immediate => self.fire_event(event),
            Notify::Delta => self.delta_notified.push(event),
            Notify::After(d) => {
                let at = self.now.saturating_add(d);
                self.seq += 1;
                self.timed_events.push(Reverse((at, self.seq, event)));
            }
        }
    }

    fn fire_event(&mut self, event: Event) {
        let record = &mut self.events[event.index()];
        record.fired += 1;
        self.stats.events_fired += 1;
        let waiters = std::mem::take(&mut record.waiters);
        let static_sensitive = record.static_sensitive.clone();
        for pid in waiters {
            self.wake(pid, event);
        }
        for pid in static_sensitive {
            if self.procs[pid.index()].state == ProcState::WaitingStatic {
                self.make_runnable(pid);
            }
        }
    }

    fn wake(&mut self, pid: ProcessId, _cause: Event) {
        let slot = &mut self.procs[pid.index()];
        if slot.state != ProcState::WaitingEvents {
            return;
        }
        // Deregister from any other events of a WaitAny.
        let waits = std::mem::take(&mut slot.dynamic_waits);
        for event in waits {
            self.events[event.index()].waiters.retain(|&p| p != pid);
        }
        self.make_runnable(pid);
    }

    fn make_runnable(&mut self, pid: ProcessId) {
        let slot = &mut self.procs[pid.index()];
        if slot.state == ProcState::Terminated || slot.state == ProcState::Runnable {
            return;
        }
        slot.state = ProcState::Runnable;
        self.runnable.push_back(pid);
    }

    // ------------------------------------------------------------------
    // Scheduler.
    // ------------------------------------------------------------------

    fn resume_process(&mut self, pid: ProcessId) {
        if self.procs[pid.index()].state != ProcState::Runnable {
            return;
        }
        let mut body = self.procs[pid.index()]
            .body
            .take()
            .expect("runnable process has no body");
        self.procs[pid.index()].resumes += 1;
        self.stats.resumes += 1;
        let activation = {
            let mut ctx = ProcessContext { sim: self, pid };
            body.resume(&mut ctx)
        };
        self.procs[pid.index()].body = Some(body);
        self.apply_activation(pid, activation);
    }

    fn apply_activation(&mut self, pid: ProcessId, activation: Activation) {
        let slot = &mut self.procs[pid.index()];
        match activation {
            Activation::WaitEvent(event) => {
                slot.state = ProcState::WaitingEvents;
                slot.dynamic_waits = vec![event];
                self.events[event.index()].waiters.push(pid);
            }
            Activation::WaitAny(events) => {
                if events.is_empty() {
                    // Nothing to wait for: treat as a terminated process
                    // rather than leaving it unreachable forever.
                    slot.state = ProcState::Terminated;
                    slot.body = None;
                    return;
                }
                slot.state = ProcState::WaitingEvents;
                slot.dynamic_waits = events.clone();
                for event in events {
                    self.events[event.index()].waiters.push(pid);
                }
            }
            Activation::WaitTime(d) => {
                slot.state = ProcState::WaitingTime;
                let at = self.now.saturating_add(d);
                self.seq += 1;
                self.timed_procs.push(Reverse((at, self.seq, pid)));
            }
            Activation::WaitStatic => {
                if slot.static_sensitivity.is_empty() {
                    // No static sensitivity means a plain wait() can never
                    // complete; terminate instead of deadlocking silently.
                    slot.state = ProcState::Terminated;
                    slot.body = None;
                } else {
                    slot.state = ProcState::WaitingStatic;
                }
            }
            Activation::Terminate => {
                slot.state = ProcState::Terminated;
                slot.body = None;
            }
        }
    }

    /// Runs one delta cycle: evaluate, update, delta-notify.
    /// Returns `true` if any process was resumed.
    fn delta_cycle(&mut self) -> bool {
        if self.runnable.is_empty() {
            return false;
        }
        self.stats.delta_cycles += 1;
        // Evaluate phase.
        while let Some(pid) = self.runnable.pop_front() {
            self.resume_process(pid);
            if self.stop_requested {
                break;
            }
        }
        // Update phase.
        let updates = std::mem::take(&mut self.update_queue);
        for sid in updates {
            if let Some(changed) = self.signals[sid.index()].apply_update() {
                let value = self.signals[sid.index()].value_string();
                self.tracer.record(self.now, sid, value);
                self.delta_notified.push(changed);
            }
        }
        // Delta-notification phase.
        let notified = std::mem::take(&mut self.delta_notified);
        for event in notified {
            self.fire_event(event);
        }
        true
    }

    /// Advances time to the earliest pending timed notification, firing all
    /// notifications scheduled for that instant. Returns `false` if no timed
    /// work is pending or it lies beyond `limit`.
    fn advance_time(&mut self, limit: SimTime) -> bool {
        let next_event = self.timed_events.peek().map(|Reverse((t, _, _))| *t);
        let next_proc = self.timed_procs.peek().map(|Reverse((t, _, _))| *t);
        let next = match (next_event, next_proc) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return false,
        };
        if next > limit {
            return false;
        }
        self.now = next;
        self.stats.time_advances += 1;
        while matches!(self.timed_events.peek(), Some(Reverse((t, _, _))) if *t == next) {
            let Reverse((_, _, event)) = self.timed_events.pop().expect("peeked entry");
            self.fire_event(event);
        }
        while matches!(self.timed_procs.peek(), Some(Reverse((t, _, _))) if *t == next) {
            let Reverse((_, _, pid)) = self.timed_procs.pop().expect("peeked entry");
            if self.procs[pid.index()].state == ProcState::WaitingTime {
                self.make_runnable(pid);
            }
        }
        true
    }

    /// Runs until quiescent, stopped, or past `limit`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::DeltaLimitExceeded`] if a zero-delay loop keeps a
    /// single time point busy beyond the configured delta limit.
    pub fn run_until(&mut self, limit: SimTime) -> Result<RunOutcome, RunError> {
        self.stop_requested = false;
        loop {
            let mut deltas_here = 0u64;
            while self.delta_cycle() {
                if self.stop_requested {
                    return Ok(RunOutcome::Stopped);
                }
                deltas_here += 1;
                if deltas_here > self.delta_limit {
                    return Err(RunError::DeltaLimitExceeded {
                        at: self.now,
                        limit: self.delta_limit,
                    });
                }
            }
            if self.stop_requested {
                return Ok(RunOutcome::Stopped);
            }
            if !self.advance_time(limit) {
                let pending_beyond = !self.timed_events.is_empty() || !self.timed_procs.is_empty();
                return Ok(if pending_beyond {
                    RunOutcome::TimeLimit
                } else {
                    RunOutcome::Quiescent
                });
            }
        }
    }

    /// Runs for a span of simulation time from now.
    ///
    /// # Errors
    ///
    /// See [`Simulation::run_until`].
    pub fn run_for(&mut self, d: Duration) -> Result<RunOutcome, RunError> {
        // The limit is exclusive of the next instant: posedges exactly at
        // `now + d` belong to the next run call.
        self.run_until(self.now.saturating_add(d))
    }

    /// Runs until no work remains or a process stops the simulation.
    ///
    /// # Errors
    ///
    /// See [`Simulation::run_until`].
    pub fn run_to_completion(&mut self) -> Result<RunOutcome, RunError> {
        self.run_until(SimTime::MAX)
    }
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("events", &self.events.len())
            .field("processes", &self.procs.len())
            .field("signals", &self.signals.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// The kernel interface available to a process during a resume step.
pub struct ProcessContext<'a> {
    // Fields are private; the context is only obtainable inside `resume`.
    sim: &'a mut Simulation,
    pid: ProcessId,
}

impl<'a> ProcessContext<'a> {
    /// Returns the current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now
    }

    /// Returns the id of the running process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Notifies an event.
    pub fn notify(&mut self, event: Event, kind: Notify) {
        self.sim.notify(event, kind);
    }

    /// Reads the current value of a signal (evaluate-phase semantics: writes
    /// from this delta are not yet visible).
    pub fn read<T: SignalValue>(&self, signal: Signal<T>) -> T {
        self.sim.signal_value(signal)
    }

    /// Schedules a signal write for the update phase of this delta cycle.
    pub fn write<T: SignalValue>(&mut self, signal: Signal<T>, value: T) {
        let inner = self.sim.sig_inner_mut(signal);
        let first_write = inner.next.is_none();
        inner.next = Some(value);
        if first_write {
            self.sim.update_queue.push(signal.id);
        }
    }

    /// Returns the change event of a signal, for use in wait activations.
    pub fn changed_event<T: SignalValue>(&self, signal: Signal<T>) -> Event {
        self.sim.signal_changed_event(signal)
    }

    /// Requests that the whole simulation stop at the end of this evaluate
    /// phase (SystemC `sc_stop`).
    pub fn stop(&mut self) {
        self.sim.stop_requested = true;
    }
}

impl fmt::Debug for ProcessContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessContext")
            .field("pid", &self.pid)
            .field("now", &self.sim.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Notify;

    /// Process that counts how many times it is resumed by a wait-any set.
    struct Counter {
        waits: Vec<Event>,
        count: u32,
        max: u32,
    }

    impl Process for Counter {
        fn resume(&mut self, _ctx: &mut ProcessContext<'_>) -> Activation {
            self.count += 1;
            if self.count > self.max {
                Activation::Terminate
            } else {
                Activation::WaitAny(self.waits.clone())
            }
        }
    }

    #[test]
    fn quiescent_on_empty_simulation() {
        let mut sim = Simulation::new();
        assert_eq!(sim.run_to_completion().unwrap(), RunOutcome::Quiescent);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn timed_notification_advances_time() {
        let mut sim = Simulation::new();
        let e = sim.create_event("tick");
        sim.notify(e, Notify::After(Duration::from_ticks(5)));
        let pid = sim.spawn(
            "waiter",
            Box::new(move |_: &mut ProcessContext<'_>| Activation::WaitEvent(e)),
        );
        // First resume happens at t=0; the process then waits for the event.
        sim.run_to_completion().unwrap();
        assert_eq!(sim.now(), SimTime::from_ticks(5));
        assert!(sim.process_resume_count(pid) >= 2);
    }

    #[test]
    fn signal_write_is_visible_one_delta_later() {
        let mut sim = Simulation::new();
        let sig = sim.create_signal("s", 0u32);
        let mut observed_during_write = None;
        let mut phase = 0;
        sim.spawn(
            "writer",
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                phase += 1;
                match phase {
                    1 => {
                        ctx.write(sig, 7);
                        observed_during_write = Some(ctx.read(sig));
                        Activation::WaitTime(Duration::ZERO)
                    }
                    _ => {
                        assert_eq!(ctx.read(sig), 7, "update phase applies write");
                        assert_eq!(
                            observed_during_write,
                            Some(0),
                            "evaluate phase sees old value"
                        );
                        Activation::Terminate
                    }
                }
            }),
        );
        sim.run_to_completion().unwrap();
        assert_eq!(sim.signal_value(sig), 7);
    }

    #[test]
    fn last_write_in_delta_wins() {
        let mut sim = Simulation::new();
        let sig = sim.create_signal("s", 0u32);
        sim.spawn(
            "writer",
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                ctx.write(sig, 1);
                ctx.write(sig, 2);
                Activation::Terminate
            }),
        );
        sim.run_to_completion().unwrap();
        assert_eq!(sim.signal_value(sig), 2);
    }

    #[test]
    fn signal_change_event_wakes_sensitive_process() {
        let mut sim = Simulation::new();
        let sig = sim.create_signal("s", false);
        let changed = sim.signal_changed_event(sig);
        let mut woken = 0u32;
        let watcher = sim.spawn(
            "watcher",
            Box::new(move |_: &mut ProcessContext<'_>| {
                woken += 1;
                if woken >= 3 {
                    Activation::Terminate
                } else {
                    Activation::WaitEvent(changed)
                }
            }),
        );
        let mut step = 0u32;
        sim.spawn(
            "driver",
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                step += 1;
                ctx.write(sig, step % 2 == 1);
                if step >= 2 {
                    Activation::Terminate
                } else {
                    Activation::WaitTime(Duration::from_ticks(1))
                }
            }),
        );
        sim.run_to_completion().unwrap();
        // Woken once at start, then by two value changes.
        assert_eq!(sim.process_resume_count(watcher), 3);
        assert!(sim.process_terminated(watcher));
    }

    #[test]
    fn write_of_equal_value_does_not_fire_change_event() {
        let mut sim = Simulation::new();
        let sig = sim.create_signal("s", 5u32);
        let changed = sim.signal_changed_event(sig);
        sim.spawn(
            "writer",
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                ctx.write(sig, 5);
                Activation::Terminate
            }),
        );
        sim.run_to_completion().unwrap();
        assert_eq!(sim.event_fire_count(changed), 0);
    }

    #[test]
    fn immediate_notify_wakes_in_same_delta() {
        let mut sim = Simulation::new();
        let e = sim.create_event("go");
        let mut first = true;
        let waiter = sim.spawn(
            "waiter",
            Box::new(move |_: &mut ProcessContext<'_>| {
                if first {
                    first = false;
                    Activation::WaitEvent(e)
                } else {
                    Activation::Terminate
                }
            }),
        );
        sim.spawn(
            "notifier",
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                ctx.notify(e, Notify::Immediate);
                Activation::Terminate
            }),
        );
        sim.run_to_completion().unwrap();
        assert!(sim.process_terminated(waiter));
        // Everything happened at time zero in one delta.
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn wait_any_deregisters_other_events() {
        let mut sim = Simulation::new();
        let a = sim.create_event("a");
        let b = sim.create_event("b");
        let counter = sim.spawn(
            "counter",
            Box::new(Counter {
                waits: vec![a, b],
                count: 0,
                max: 2,
            }),
        );
        sim.notify(a, Notify::After(Duration::from_ticks(1)));
        sim.notify(b, Notify::After(Duration::from_ticks(1)));
        sim.run_to_completion().unwrap();
        // Resume 1 at t=0; both events fire at t=1 but the process must be
        // woken exactly once for the pair, then waits again and is never
        // woken a third time.
        assert_eq!(sim.process_resume_count(counter), 2);
    }

    #[test]
    fn static_sensitivity_wakes_on_every_fire() {
        let mut sim = Simulation::new();
        let e = sim.create_event("tick");
        let pid = sim.spawn_sensitive(
            "listener",
            Box::new(move |_: &mut ProcessContext<'_>| Activation::WaitStatic),
            vec![e],
        );
        for i in 1..=4u64 {
            sim.notify(e, Notify::After(Duration::from_ticks(i)));
        }
        sim.run_to_completion().unwrap();
        assert_eq!(sim.process_resume_count(pid), 5); // initial + 4 ticks
    }

    #[test]
    fn stop_request_halts_run() {
        let mut sim = Simulation::new();
        sim.spawn(
            "stopper",
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                ctx.stop();
                Activation::WaitTime(Duration::from_ticks(1))
            }),
        );
        assert_eq!(sim.run_to_completion().unwrap(), RunOutcome::Stopped);
    }

    #[test]
    fn delta_loop_is_detected() {
        let mut sim = Simulation::new();
        sim.set_delta_limit(100);
        let e = sim.create_event("loop");
        sim.spawn(
            "looper",
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                ctx.notify(e, Notify::Delta);
                Activation::WaitEvent(e)
            }),
        );
        match sim.run_to_completion() {
            Err(RunError::DeltaLimitExceeded { limit, .. }) => assert_eq!(limit, 100),
            other => panic!("expected delta limit error, got {other:?}"),
        }
    }

    #[test]
    fn time_limit_outcome_when_work_remains() {
        let mut sim = Simulation::new();
        let e = sim.create_event("later");
        sim.notify(e, Notify::After(Duration::from_ticks(100)));
        let outcome = sim.run_until(SimTime::from_ticks(10)).unwrap();
        assert_eq!(outcome, RunOutcome::TimeLimit);
        assert_eq!(sim.event_fire_count(e), 0);
    }

    #[test]
    fn run_resumes_after_time_limit() {
        let mut sim = Simulation::new();
        let e = sim.create_event("later");
        sim.notify(e, Notify::After(Duration::from_ticks(100)));
        sim.run_until(SimTime::from_ticks(10)).unwrap();
        sim.run_to_completion().unwrap();
        assert_eq!(sim.event_fire_count(e), 1);
        assert_eq!(sim.now(), SimTime::from_ticks(100));
    }

    #[test]
    fn timed_wakeups_are_fifo_within_one_instant() {
        let mut sim = Simulation::new();
        let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for tag in 0..3u32 {
            let order = order.clone();
            let mut started = false;
            sim.spawn(
                &format!("p{tag}"),
                Box::new(move |_: &mut ProcessContext<'_>| {
                    if !started {
                        started = true;
                        return Activation::WaitTime(Duration::from_ticks(5));
                    }
                    order.borrow_mut().push(tag);
                    Activation::Terminate
                }),
            );
        }
        sim.run_to_completion().unwrap();
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }
}
