//! Simulation time and durations.
//!
//! The kernel measures time in abstract *ticks*. A tick has no fixed physical
//! meaning; the two verification flows of the paper interpret it differently:
//! the microprocessor flow maps one clock period to a fixed number of ticks,
//! while the derived-model flow maps one executed statement to one tick
//! (Section 3.2 of the paper: "each statement execution is one time step").

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute point in simulation time, in ticks since simulation start.
///
/// # Examples
///
/// ```
/// use sctc_sim::{Duration, SimTime};
///
/// let t = SimTime::ZERO + Duration::from_ticks(5);
/// assert_eq!(t.ticks(), 5);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "no limit".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub const fn saturating_add(self, d: Duration) -> Self {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Returns the duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

/// A span of simulation time, in ticks.
///
/// # Examples
///
/// ```
/// use sctc_sim::Duration;
///
/// let d = Duration::from_ticks(3) + Duration::from_ticks(4);
/// assert_eq!(d.ticks(), 7);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Duration(u64);

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        Duration(ticks)
    }

    /// Returns the tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns `true` if this duration is zero ticks long.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::from_ticks(10);
        let t1 = t0 + Duration::from_ticks(32);
        assert_eq!(t1.ticks(), 42);
        assert_eq!(t1.since(t0), Duration::from_ticks(32));
        assert_eq!(t1 - t0, Duration::from_ticks(32));
    }

    #[test]
    fn saturating_add_clamps_at_max() {
        let t = SimTime::MAX.saturating_add(Duration::from_ticks(1));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be later")]
    fn since_panics_when_reversed() {
        let _ = SimTime::ZERO.since(SimTime::from_ticks(1));
    }

    #[test]
    fn display_formats_ticks() {
        assert_eq!(SimTime::from_ticks(7).to_string(), "7t");
        assert_eq!(Duration::from_ticks(7).to_string(), "7t");
    }

    #[test]
    fn ordering_follows_ticks() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert!(Duration::ZERO.is_zero());
        assert!(!Duration::from_ticks(1).is_zero());
    }
}
