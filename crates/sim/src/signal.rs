//! Signals with SystemC evaluate/update semantics.
//!
//! Writing a [`Signal`] does not change its value immediately: the new value
//! is applied in the *update phase* at the end of the current delta cycle,
//! and processes sensitive to the signal's change event observe it one delta
//! later. This is what makes zero-delay feedback loops well-defined.

use std::any::Any;
use std::fmt;
use std::marker::PhantomData;

use crate::event::Event;

/// A handle to a kernel-owned signal carrying values of type `T`.
///
/// # Examples
///
/// ```
/// use sctc_sim::Simulation;
///
/// let mut sim = Simulation::new();
/// let sig = sim.create_signal("count", 0u32);
/// assert_eq!(sim.signal_value(sig), 0);
/// ```
pub struct Signal<T> {
    pub(crate) id: SignalId,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> Signal<T> {
    /// Returns the untyped identifier for this signal.
    pub fn id(self) -> SignalId {
        self.id
    }
}

// Manual impls: `Signal<T>` is a plain handle regardless of `T`.
impl<T> Copy for Signal<T> {}
impl<T> Clone for Signal<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> PartialEq for Signal<T> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl<T> Eq for Signal<T> {}
impl<T> fmt::Debug for Signal<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signal({})", self.id.0)
    }
}

/// An untyped signal identifier.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Returns the raw index of this signal in the kernel's signal table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Values that can live on a signal.
///
/// This is a blanket-implemented convenience alias; any `Clone + PartialEq +
/// Debug + 'static` type qualifies.
pub trait SignalValue: Clone + PartialEq + fmt::Debug + 'static {}
impl<T: Clone + PartialEq + fmt::Debug + 'static> SignalValue for T {}

/// Type-erased signal storage, kernel-internal.
pub(crate) trait AnySignal {
    /// Applies a pending write. Returns the change event if the value
    /// actually changed.
    fn apply_update(&mut self) -> Option<Event>;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn name(&self) -> &str;
    /// Current value rendered for tracing.
    fn value_string(&self) -> String;
}

pub(crate) struct SigInner<T> {
    pub(crate) name: String,
    pub(crate) current: T,
    pub(crate) next: Option<T>,
    pub(crate) changed: Event,
}

impl<T: SignalValue> AnySignal for SigInner<T> {
    fn apply_update(&mut self) -> Option<Event> {
        match self.next.take() {
            Some(v) if v != self.current => {
                self.current = v;
                Some(self.changed)
            }
            _ => None,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn value_string(&self) -> String {
        format!("{:?}", self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_update_reports_change_only_when_value_differs() {
        let mut inner = SigInner {
            name: "s".to_owned(),
            current: 1u32,
            next: Some(1),
            changed: Event(0),
        };
        assert_eq!(inner.apply_update(), None);
        inner.next = Some(2);
        assert_eq!(inner.apply_update(), Some(Event(0)));
        assert_eq!(inner.current, 2);
        assert_eq!(inner.value_string(), "2");
    }

    #[test]
    fn signal_handles_compare_by_id() {
        let a = Signal::<u32> {
            id: SignalId(1),
            _marker: PhantomData,
        };
        let b = Signal::<u32> {
            id: SignalId(1),
            _marker: PhantomData,
        };
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "Signal(1)");
    }
}
