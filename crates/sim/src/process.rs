//! Processes: the active objects of a simulation.
//!
//! A [`Process`] is resumed by the kernel and runs until it yields an
//! [`Activation`] describing what it wants to wait for. This small-step style
//! (rather than coroutines) is what lets instruction-level CPU models and
//! statement-level derived software models plug in directly: each `resume`
//! executes one instruction or one statement and then waits.

use std::fmt;

use crate::event::Event;
use crate::time::Duration;

/// A handle to a spawned process.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub(crate) u32);

impl ProcessId {
    /// Returns the raw index of this process in the kernel's process table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "process#{}", self.0)
    }
}

/// What a process wants to do after a resume step.
#[derive(Clone, Debug)]
pub enum Activation {
    /// Suspend until the given event fires.
    WaitEvent(Event),
    /// Suspend until any of the given events fires.
    WaitAny(Vec<Event>),
    /// Suspend for a simulation-time span. A zero duration suspends until the
    /// next timed phase at the current time (after all pending delta cycles).
    WaitTime(Duration),
    /// Suspend until any event in the process's static sensitivity list
    /// fires (SystemC plain `wait()`).
    WaitStatic,
    /// The process is done and will never be resumed again.
    Terminate,
}

/// An active simulation object, resumed by the kernel.
///
/// Implementors run a bounded amount of work per [`resume`](Process::resume)
/// call and then return an [`Activation`]. All interaction with the kernel
/// (event notification, signal access, time queries) goes through the
/// [`ProcessContext`].
///
/// # Examples
///
/// A process that fires an event three times, once per tick:
///
/// ```
/// use sctc_sim::{Activation, Duration, Event, Process, ProcessContext, Simulation};
///
/// struct Pulser {
///     event: Event,
///     remaining: u32,
/// }
///
/// impl Process for Pulser {
///     fn resume(&mut self, ctx: &mut ProcessContext<'_>) -> Activation {
///         if self.remaining == 0 {
///             return Activation::Terminate;
///         }
///         self.remaining -= 1;
///         ctx.notify(self.event, sctc_sim::Notify::Delta);
///         Activation::WaitTime(Duration::from_ticks(1))
///     }
/// }
///
/// let mut sim = Simulation::new();
/// let e = sim.create_event("pulse");
/// sim.spawn("pulser", Box::new(Pulser { event: e, remaining: 3 }));
/// sim.run_to_completion().unwrap();
/// assert_eq!(sim.event_fire_count(e), 3);
/// ```
///
/// [`ProcessContext`]: crate::ProcessContext
pub trait Process {
    /// Runs one step of this process and reports what to wait for next.
    fn resume(&mut self, ctx: &mut crate::kernel::ProcessContext<'_>) -> Activation;
}

impl<F> Process for F
where
    F: FnMut(&mut crate::kernel::ProcessContext<'_>) -> Activation,
{
    fn resume(&mut self, ctx: &mut crate::kernel::ProcessContext<'_>) -> Activation {
        self(ctx)
    }
}

/// Scheduling state of a process, kernel-internal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum ProcState {
    /// In the runnable queue (or about to be resumed).
    Runnable,
    /// Waiting on one or more dynamic events.
    WaitingEvents,
    /// Waiting for a timed wake-up.
    WaitingTime,
    /// Waiting on static sensitivity.
    WaitingStatic,
    /// Finished; never resumed again.
    Terminated,
}

pub(crate) struct ProcSlot {
    pub(crate) name: String,
    pub(crate) body: Option<Box<dyn Process>>,
    pub(crate) state: ProcState,
    /// Events this process is statically sensitive to.
    pub(crate) static_sensitivity: Vec<Event>,
    /// Events this process is currently dynamically registered with, so the
    /// kernel can deregister after a `WaitAny` wake-up.
    pub(crate) dynamic_waits: Vec<Event>,
    pub(crate) resumes: u64,
}

impl fmt::Debug for ProcSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcSlot")
            .field("name", &self.name)
            .field("state", &self.state)
            .field("resumes", &self.resumes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_exposes_index() {
        assert_eq!(ProcessId(9).index(), 9);
        assert_eq!(ProcessId(9).to_string(), "process#9");
    }

    #[test]
    fn activation_is_cloneable() {
        let a = Activation::WaitAny(vec![Event(0), Event(1)]);
        match a.clone() {
            Activation::WaitAny(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected activation {other:?}"),
        }
    }
}
