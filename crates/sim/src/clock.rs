//! Free-running clocks.
//!
//! A [`Clock`] drives a boolean signal and exposes posedge/negedge events.
//! The microprocessor verification flow (paper Section 3.1) uses the clock's
//! posedge as the timing reference for temporal properties.

use crate::event::{Event, Notify};
use crate::kernel::{ProcessContext, Simulation};
use crate::process::Activation;
use crate::signal::Signal;
use crate::time::Duration;

/// A periodic clock: signal plus edge events.
///
/// The first posedge occurs at time zero, then every `period` ticks. Negedges
/// fall halfway through the period (rounded down, at least one tick after the
/// posedge).
///
/// # Examples
///
/// ```
/// use sctc_sim::{Duration, Simulation};
///
/// let mut sim = Simulation::new();
/// let clk = sim.create_clock("clk", Duration::from_ticks(4));
/// sim.run_for(Duration::from_ticks(10)).unwrap();
/// assert_eq!(sim.event_fire_count(clk.posedge()), 3); // t = 0, 4, 8
/// ```
#[derive(Copy, Clone, Debug)]
pub struct Clock {
    signal: Signal<bool>,
    posedge: Event,
    negedge: Event,
    period: Duration,
}

impl Clock {
    /// Returns the boolean clock signal.
    pub fn signal(&self) -> Signal<bool> {
        self.signal
    }

    /// Returns the event fired on every rising edge.
    pub fn posedge(&self) -> Event {
        self.posedge
    }

    /// Returns the event fired on every falling edge.
    pub fn negedge(&self) -> Event {
        self.negedge
    }

    /// Returns the clock period.
    pub fn period(&self) -> Duration {
        self.period
    }
}

struct ClockProc {
    signal: Signal<bool>,
    posedge: Event,
    negedge: Event,
    high_time: Duration,
    low_time: Duration,
    level: bool,
}

impl crate::process::Process for ClockProc {
    fn resume(&mut self, ctx: &mut ProcessContext<'_>) -> Activation {
        self.level = !self.level;
        ctx.write(self.signal, self.level);
        if self.level {
            ctx.notify(self.posedge, Notify::Delta);
            Activation::WaitTime(self.high_time)
        } else {
            ctx.notify(self.negedge, Notify::Delta);
            Activation::WaitTime(self.low_time)
        }
    }
}

impl Simulation {
    /// Creates a free-running clock with the given period in ticks.
    ///
    /// # Panics
    ///
    /// Panics if `period` is less than two ticks (a clock needs distinct
    /// high and low phases).
    pub fn create_clock(&mut self, name: &str, period: Duration) -> Clock {
        assert!(
            period.ticks() >= 2,
            "clock period must be at least two ticks"
        );
        let signal = self.create_signal(&format!("{name}.sig"), false);
        let posedge = self.create_event(&format!("{name}.posedge"));
        let negedge = self.create_event(&format!("{name}.negedge"));
        let high_time = Duration::from_ticks(period.ticks() / 2);
        let low_time = Duration::from_ticks(period.ticks() - high_time.ticks());
        self.spawn(
            &format!("{name}.gen"),
            Box::new(ClockProc {
                signal,
                posedge,
                negedge,
                high_time,
                low_time,
                level: false,
            }),
        );
        Clock {
            signal,
            posedge,
            negedge,
            period,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn posedges_and_negedges_alternate() {
        let mut sim = Simulation::new();
        let clk = sim.create_clock("clk", Duration::from_ticks(10));
        sim.run_until(SimTime::from_ticks(49)).unwrap();
        assert_eq!(sim.event_fire_count(clk.posedge()), 5); // 0,10,20,30,40
        assert_eq!(sim.event_fire_count(clk.negedge()), 5); // 5,15,25,35,45
    }

    #[test]
    fn clock_signal_tracks_level() {
        let mut sim = Simulation::new();
        let clk = sim.create_clock("clk", Duration::from_ticks(10));
        sim.run_until(SimTime::from_ticks(2)).unwrap();
        assert!(sim.signal_value(clk.signal()));
        sim.run_until(SimTime::from_ticks(7)).unwrap();
        assert!(!sim.signal_value(clk.signal()));
    }

    #[test]
    fn odd_period_splits_phases() {
        let mut sim = Simulation::new();
        let clk = sim.create_clock("clk", Duration::from_ticks(3));
        assert_eq!(clk.period(), Duration::from_ticks(3));
        sim.run_until(SimTime::from_ticks(8)).unwrap();
        // Posedges at 0, 3, 6.
        assert_eq!(sim.event_fire_count(clk.posedge()), 3);
    }

    #[test]
    #[should_panic(expected = "at least two ticks")]
    fn period_of_one_is_rejected() {
        let mut sim = Simulation::new();
        let _ = sim.create_clock("clk", Duration::from_ticks(1));
    }
}
