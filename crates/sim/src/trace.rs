//! Signal-change tracing.
//!
//! A lightweight value-change recorder in the spirit of a VCD dump: every
//! update-phase change of an enabled signal is stored as a
//! [`TraceRecord`]. Useful for debugging models and for asserting on
//! waveforms in tests.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

use crate::signal::SignalId;
use crate::time::SimTime;

/// One recorded value change.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Simulation time of the change.
    pub time: SimTime,
    /// Signal that changed.
    pub signal: SignalId,
    /// New value, rendered with `Debug`.
    pub value: String,
}

/// Records value changes for explicitly enabled signals.
///
/// Obtain the kernel's tracer with [`Simulation::tracer`]; enable signals
/// with [`Simulation::trace_signal`].
///
/// [`Simulation::tracer`]: crate::Simulation::tracer
/// [`Simulation::trace_signal`]: crate::Simulation::trace_signal
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    enabled: HashMap<SignalId, String>,
    records: VecDeque<TraceRecord>,
    capacity: Option<usize>,
    dropped: u64,
}

impl Tracer {
    /// Creates an empty tracer with no signals enabled.
    pub fn new() -> Self {
        Tracer::default()
    }

    pub(crate) fn enable(&mut self, id: SignalId, name: String) {
        self.enabled.insert(id, name);
    }

    pub(crate) fn record(&mut self, time: SimTime, signal: SignalId, value: String) {
        if self.enabled.contains_key(&signal) {
            self.records.push_back(TraceRecord {
                time,
                signal,
                value,
            });
            self.enforce_capacity();
        }
    }

    /// Bounds the trace to the most recent `cap` records (ring-buffer
    /// mode, oldest dropped first); `None` restores unbounded growth.
    /// Shrinking below the current length drops the excess immediately.
    pub fn set_capacity(&mut self, cap: Option<usize>) {
        self.capacity = cap;
        self.enforce_capacity();
    }

    /// The configured record bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// How many records have been dropped to honour the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn enforce_capacity(&mut self) {
        if let Some(cap) = self.capacity {
            while self.records.len() > cap {
                self.records.pop_front();
                self.dropped += 1;
            }
        }
    }

    /// Returns all retained changes in chronological order.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Returns the changes of one signal in chronological order.
    pub fn records_for(&self, signal: SignalId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.signal == signal)
    }

    /// Exports the retained records as a gtkwave-loadable VCD document.
    ///
    /// Every traced signal becomes a scalar wire under scope `sim`. Values
    /// are mapped from their recorded `Debug` rendering: `false`/`0` → `0`,
    /// `true` and any other integer → `1`, anything non-numeric → `x`
    /// (unknown). Multi-bit payloads therefore collapse to an activity
    /// strobe rather than a bus — enough to line simulation events up
    /// against the property-timeline channels the checker emits.
    pub fn to_vcd(&self) -> sctc_obs::VcdDoc {
        let mut doc = sctc_obs::VcdDoc::new();
        let mut names: Vec<(&SignalId, &String)> = self.enabled.iter().collect();
        names.sort_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(b.0)));
        let wires: HashMap<SignalId, usize> = names
            .into_iter()
            .map(|(id, name)| (*id, doc.add_wire("sim", name)))
            .collect();
        for r in &self.records {
            if let Some(&wire) = wires.get(&r.signal) {
                doc.change(r.time.ticks(), wire, scalar_value(&r.value));
            }
        }
        doc
    }

    /// Renders the trace as a human-readable waveform listing.
    pub fn to_listing(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let name = self
                .enabled
                .get(&r.signal)
                .map(String::as_str)
                .unwrap_or("?");
            let _ = writeln!(
                out,
                "{:>10}  {:<24} = {}",
                r.time.to_string(),
                name,
                r.value
            );
        }
        out
    }
}

/// Collapses a `Debug`-rendered signal value to a VCD scalar.
fn scalar_value(value: &str) -> sctc_obs::VcdValue {
    match value {
        "false" | "0" => sctc_obs::VcdValue::V0,
        "true" => sctc_obs::VcdValue::V1,
        other => {
            if other.parse::<i64>().is_ok() {
                sctc_obs::VcdValue::V1
            } else {
                sctc_obs::VcdValue::X
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::kernel::{ProcessContext, Simulation};
    use crate::process::Activation;
    use crate::time::Duration;

    #[test]
    fn traces_only_enabled_signals() {
        let mut sim = Simulation::new();
        let a = sim.create_signal("a", 0u32);
        let b = sim.create_signal("b", 0u32);
        sim.trace_signal(a);
        let mut step = 0u32;
        sim.spawn(
            "drv",
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                step += 1;
                ctx.write(a, step);
                ctx.write(b, step);
                if step >= 3 {
                    Activation::Terminate
                } else {
                    Activation::WaitTime(Duration::from_ticks(1))
                }
            }),
        );
        sim.run_to_completion().unwrap();
        // Initial snapshot plus three changes of `a`, nothing from `b`.
        assert_eq!(sim.tracer().records_for(a.id()).count(), 4);
        assert_eq!(sim.tracer().records_for(b.id()).count(), 0);
    }

    #[test]
    fn listing_contains_names_and_values() {
        let mut sim = Simulation::new();
        let a = sim.create_signal("speed", 0u32);
        sim.trace_signal(a);
        sim.spawn(
            "drv",
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                ctx.write(a, 88);
                Activation::Terminate
            }),
        );
        sim.run_to_completion().unwrap();
        let listing = sim.tracer().to_listing();
        assert!(listing.contains("speed"));
        assert!(listing.contains("88"));
    }

    #[test]
    fn bounded_trace_drops_oldest_and_counts_drops() {
        let mut sim = Simulation::new();
        let a = sim.create_signal("a", 0u32);
        sim.trace_signal(a);
        sim.set_trace_capacity(Some(3));
        let mut step = 0u32;
        sim.spawn(
            "drv",
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                step += 1;
                ctx.write(a, step);
                if step >= 5 {
                    Activation::Terminate
                } else {
                    Activation::WaitTime(Duration::from_ticks(1))
                }
            }),
        );
        sim.run_to_completion().unwrap();
        // Initial snapshot plus five changes = six records; the ring
        // keeps the newest three and counts the rest as dropped.
        let tracer = sim.tracer();
        assert_eq!(tracer.capacity(), Some(3));
        assert_eq!(tracer.dropped(), 3);
        let values: Vec<&str> = tracer.records().map(|r| r.value.as_str()).collect();
        assert_eq!(values, ["3", "4", "5"]);
    }

    #[test]
    fn partial_shrink_counts_every_evicted_record() {
        // Regression: shrinking from a larger bound to a smaller one must
        // add exactly (len - new_cap) to `dropped`, not reset or skip it.
        let mut sim = Simulation::new();
        let a = sim.create_signal("a", 0u32);
        sim.trace_signal(a); // initial snapshot = record 1
        sim.set_trace_capacity(Some(5));
        let mut step = 0u32;
        sim.spawn(
            "drv",
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                step += 1;
                ctx.write(a, step);
                if step >= 4 {
                    Activation::Terminate
                } else {
                    Activation::WaitTime(Duration::from_ticks(1))
                }
            }),
        );
        sim.run_to_completion().unwrap();
        // Five records fill the bound exactly; nothing dropped yet.
        assert_eq!(sim.tracer().records().count(), 5);
        assert_eq!(sim.tracer().dropped(), 0);
        sim.set_trace_capacity(Some(2));
        let tracer = sim.tracer();
        assert_eq!(tracer.records().count(), 2);
        assert_eq!(tracer.dropped(), 3);
        let values: Vec<&str> = tracer.records().map(|r| r.value.as_str()).collect();
        assert_eq!(values, ["3", "4"]);
    }

    #[test]
    fn vcd_export_round_trips_through_the_parser() {
        let mut sim = Simulation::new();
        let a = sim.create_signal("busy", false);
        sim.trace_signal(a);
        sim.spawn(
            "drv",
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                ctx.write(a, true);
                Activation::Terminate
            }),
        );
        sim.run_to_completion().unwrap();
        let doc = sim.tracer().to_vcd();
        let text = doc.render();
        assert!(text.contains("$var wire 1"));
        assert!(text.contains("$dumpvars"));
        let parsed = sctc_obs::VcdDoc::parse(&text).unwrap();
        assert_eq!(
            parsed.changes_for("sim", "busy"),
            vec![(0, sctc_obs::VcdValue::V0), (0, sctc_obs::VcdValue::V1)]
        );
    }

    #[test]
    fn shrinking_the_capacity_evicts_immediately() {
        let mut sim = Simulation::new();
        let a = sim.create_signal("a", 0u32);
        sim.trace_signal(a); // records the initial snapshot
        assert_eq!(sim.tracer().records().count(), 1);
        sim.set_trace_capacity(Some(0));
        assert_eq!(sim.tracer().records().count(), 0);
        assert_eq!(sim.tracer().dropped(), 1);
        // Unbounded again: new records are retained.
        sim.set_trace_capacity(None);
        sim.spawn(
            "drv",
            Box::new(move |ctx: &mut ProcessContext<'_>| {
                ctx.write(a, 7);
                Activation::Terminate
            }),
        );
        sim.run_to_completion().unwrap();
        assert_eq!(sim.tracer().records().count(), 1);
        assert_eq!(sim.tracer().dropped(), 1);
    }
}
