//! Property-based equivalence of the two execution substrates: random
//! mini-C programs must compute identical results under the statement-level
//! interpreter (approach 2's engine) and compiled to the microprocessor
//! model (approach 1's engine).

use std::rc::Rc;

use minic::ast::{BinOp, Expr, Function, Global, Pos, Program, Stmt, Type, UnOp};
use minic::codegen::{compile, CodegenOptions};
use minic::{lower, ExecState, Interp};
use sctc_cpu::Cpu;
use testkit::{Checker, Source};

const NGLOBALS: usize = 4;

fn pos() -> Pos {
    Pos::default()
}

/// Random pure integer expressions over globals and small constants.
/// Division is excluded: the ISS uses RISC-V semantics on division by zero
/// while the interpreter traps (documented divergence).
fn gen_expr(src: &mut Source<'_>, depth: u32) -> Expr {
    if depth == 0 || src.chance(35) {
        // Leaf: constant or global.
        return if src.bool() {
            Expr::IntLit(src.i64_in(-60, 59), pos())
        } else {
            Expr::Var(format!("g{}", src.usize_in(0, NGLOBALS - 1)), pos())
        };
    }
    match src.weighted_idx(&[3, 1, 1, 1, 1]) {
        0 => {
            let op = src.pick(&[
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::BitAnd,
                BinOp::BitOr,
                BinOp::BitXor,
            ]);
            let a = gen_expr(src, depth - 1);
            let b = gen_expr(src, depth - 1);
            Expr::Binary(op, Box::new(a), Box::new(b), pos())
        }
        1 => Expr::Unary(UnOp::Neg, Box::new(gen_expr(src, depth - 1)), pos()),
        2 => Expr::Unary(UnOp::BitNot, Box::new(gen_expr(src, depth - 1)), pos()),
        // Shifts with a small constant amount.
        3 => Expr::Binary(
            BinOp::Shl,
            Box::new(gen_expr(src, depth - 1)),
            Box::new(Expr::IntLit(src.i64_in(0, 7), pos())),
            pos(),
        ),
        _ => Expr::Binary(
            BinOp::Shr,
            Box::new(gen_expr(src, depth - 1)),
            Box::new(Expr::IntLit(src.i64_in(0, 7), pos())),
            pos(),
        ),
    }
}

/// A comparison condition between two expressions.
fn gen_cond(src: &mut Source<'_>) -> Expr {
    let cmp = src.pick(&[
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ]);
    let a = gen_expr(src, 3);
    let b = gen_expr(src, 3);
    Expr::Binary(cmp, Box::new(a), Box::new(b), pos())
}

fn gen_assign(src: &mut Source<'_>) -> Stmt {
    let g = src.usize_in(0, NGLOBALS - 1);
    Stmt::Assign {
        target: minic::ast::LValue::Var(format!("g{g}")),
        value: gen_expr(src, 3),
        pos: pos(),
    }
}

/// Statements: assignments and if/else (nesting bounded by `depth`).
fn gen_stmt(src: &mut Source<'_>, depth: u32) -> Stmt {
    if depth == 0 || src.weighted_idx(&[3, 1]) == 0 {
        return gen_assign(src);
    }
    let cond = gen_cond(src);
    let then_n = src.usize_in(1, 2);
    let then_branch = (0..then_n).map(|_| gen_stmt(src, depth - 1)).collect();
    let else_n = src.usize_in(0, 2);
    let else_branch = (0..else_n).map(|_| gen_stmt(src, depth - 1)).collect();
    Stmt::If {
        cond,
        then_branch,
        else_branch,
        pos: pos(),
    }
}

fn gen_program(src: &mut Source<'_>) -> Program {
    let inits: Vec<i64> = (0..NGLOBALS).map(|_| src.i64_in(-40, 39)).collect();
    let nstmts = src.usize_in(1, 7);
    let mut body: Vec<Stmt> = (0..nstmts).map(|_| gen_stmt(src, 2)).collect();
    let ret = gen_expr(src, 3);
    let loops = src.i64_in(1, 5);

    // Wrap part of the body in a bounded counting loop to exercise
    // branches in both substrates.
    let loop_body = body.split_off(body.len() / 2);
    if !loop_body.is_empty() {
        let mut inner = loop_body;
        inner.push(Stmt::Assign {
            target: minic::ast::LValue::Var("i".to_owned()),
            value: Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Var("i".to_owned(), pos())),
                Box::new(Expr::IntLit(1, pos())),
                pos(),
            ),
            pos: pos(),
        });
        body.push(Stmt::Let {
            name: "i".to_owned(),
            ty: Type::Int,
            init: Expr::IntLit(0, pos()),
            pos: pos(),
        });
        body.push(Stmt::While {
            cond: Expr::Binary(
                BinOp::Lt,
                Box::new(Expr::Var("i".to_owned(), pos())),
                Box::new(Expr::IntLit(loops, pos())),
                pos(),
            ),
            body: inner,
            pos: pos(),
        });
    }
    body.push(Stmt::Return {
        value: Some(ret),
        pos: pos(),
    });
    Program {
        globals: (0..NGLOBALS)
            .map(|i| Global {
                name: format!("g{i}"),
                ty: Type::Int,
                array_len: None,
                init: vec![inits[i]],
                pos: pos(),
            })
            .collect(),
        functions: vec![Function {
            name: "main".to_owned(),
            params: vec![],
            ret: Type::Int,
            body,
            pos: pos(),
        }],
    }
}

#[test]
fn interpreter_and_compiled_code_agree() {
    Checker::new("interpreter_and_compiled_code_agree")
        .cases(96)
        .run(gen_program, |program| {
            let ir = lower(program).expect("generated programs type-check");

            // Interpreter run.
            let mut interp = Interp::with_virtual_memory(Rc::new(ir.clone()));
            interp.start_main().expect("main exists");
            let state = interp.run(1_000_000);
            let ExecState::Finished(Some(interp_ret)) = state else {
                panic!("interpreter did not finish: {state:?}");
            };
            let interp_globals: Vec<i32> = (0..NGLOBALS)
                .map(|i| interp.global_by_name(&format!("g{i}")))
                .collect();

            // Compiled run.
            let compiled = compile(&ir, CodegenOptions::default()).expect("compiles");
            let mut mem = compiled.build_memory(0x40000);
            let mut cpu = Cpu::new(0);
            cpu.run(&mut mem, 10_000_000).expect("no CPU fault");
            assert!(cpu.is_halted(), "compiled program must halt");
            let cpu_ret = cpu.reg(sctc_cpu::Reg::RV) as i32;
            let cpu_globals: Vec<i32> = (0..NGLOBALS)
                .map(|i| {
                    mem.peek_u32(compiled.global_addr(&format!("g{i}")))
                        .expect("global in RAM") as i32
                })
                .collect();

            assert_eq!(interp_ret, cpu_ret, "return values diverge");
            assert_eq!(interp_globals, cpu_globals, "global state diverges");
        });
}

/// Statement-step counts are deterministic: two identical interpreter
/// runs take exactly the same number of steps (the derived model's
/// timing reference must be reproducible).
#[test]
fn step_counts_are_deterministic() {
    Checker::new("step_counts_are_deterministic")
        .cases(96)
        .run(gen_program, |program| {
            let ir = Rc::new(lower(program).expect("type-checks"));
            let mut a = Interp::with_virtual_memory(Rc::clone(&ir));
            a.start_main().expect("main");
            a.run(1_000_000);
            let mut b = Interp::with_virtual_memory(ir);
            b.start_main().expect("main");
            b.run(1_000_000);
            assert_eq!(a.steps(), b.steps());
        });
}
