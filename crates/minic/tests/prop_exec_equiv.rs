//! Property-based equivalence of the two execution substrates: random
//! mini-C programs must compute identical results under the statement-level
//! interpreter (approach 2's engine) and compiled to the microprocessor
//! model (approach 1's engine).

use std::rc::Rc;

use minic::ast::{BinOp, Expr, Function, Global, Pos, Program, Stmt, Type, UnOp};
use minic::codegen::{compile, CodegenOptions};
use minic::{lower, ExecState, Interp};
use proptest::prelude::*;
use sctc_cpu::Cpu;

const NGLOBALS: usize = 4;

fn pos() -> Pos {
    Pos::default()
}

/// Random pure integer expressions over globals and small constants.
/// Division is excluded: the ISS uses RISC-V semantics on division by zero
/// while the interpreter traps (documented divergence).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-60i64..60).prop_map(|v| Expr::IntLit(v, pos())),
        (0..NGLOBALS).prop_map(|i| Expr::Var(format!("g{i}"), pos())),
    ];
    leaf.prop_recursive(3, 20, 2, |inner| {
        let bin = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::BitAnd),
            Just(BinOp::BitOr),
            Just(BinOp::BitXor),
        ];
        prop_oneof![
            (bin, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b),
                pos()
            )),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Neg, Box::new(e), pos())),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::BitNot, Box::new(e), pos())),
            // Shifts with a small constant amount.
            (inner.clone(), 0i64..8).prop_map(|(e, s)| Expr::Binary(
                BinOp::Shl,
                Box::new(e),
                Box::new(Expr::IntLit(s, pos())),
                pos()
            )),
            (inner, 0i64..8).prop_map(|(e, s)| Expr::Binary(
                BinOp::Shr,
                Box::new(e),
                Box::new(Expr::IntLit(s, pos())),
                pos()
            )),
        ]
    })
}

/// A comparison condition between two expressions.
fn cond_strategy() -> impl Strategy<Value = Expr> {
    let cmp = prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ];
    (cmp, expr_strategy(), expr_strategy())
        .prop_map(|(op, a, b)| Expr::Binary(op, Box::new(a), Box::new(b), pos()))
}

fn assign_strategy() -> impl Strategy<Value = Stmt> {
    (0..NGLOBALS, expr_strategy()).prop_map(|(g, e)| Stmt::Assign {
        target: minic::ast::LValue::Var(format!("g{g}")),
        value: e,
        pos: pos(),
    })
}

/// Statements: assignments, if/else, and bounded counting loops.
fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let leaf = assign_strategy();
    leaf.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            3 => assign_strategy(),
            1 => (
                cond_strategy(),
                proptest::collection::vec(inner.clone(), 1..3),
                proptest::collection::vec(inner.clone(), 0..3),
            )
                .prop_map(|(c, t, e)| Stmt::If {
                    cond: c,
                    then_branch: t,
                    else_branch: e,
                    pos: pos(),
                }),
        ]
    })
}

fn program_strategy() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(-40i64..40, NGLOBALS),
        proptest::collection::vec(stmt_strategy(), 1..8),
        expr_strategy(),
        1i64..6, // loop count
    )
        .prop_map(|(inits, mut body, ret, loops)| {
            // Wrap part of the body in a bounded counting loop to exercise
            // branches in both substrates.
            let loop_body = body.split_off(body.len() / 2);
            if !loop_body.is_empty() {
                let mut inner = loop_body;
                inner.push(Stmt::Assign {
                    target: minic::ast::LValue::Var("i".to_owned()),
                    value: Expr::Binary(
                        BinOp::Add,
                        Box::new(Expr::Var("i".to_owned(), pos())),
                        Box::new(Expr::IntLit(1, pos())),
                        pos(),
                    ),
                    pos: pos(),
                });
                body.push(Stmt::Let {
                    name: "i".to_owned(),
                    ty: Type::Int,
                    init: Expr::IntLit(0, pos()),
                    pos: pos(),
                });
                body.push(Stmt::While {
                    cond: Expr::Binary(
                        BinOp::Lt,
                        Box::new(Expr::Var("i".to_owned(), pos())),
                        Box::new(Expr::IntLit(loops, pos())),
                        pos(),
                    ),
                    body: inner,
                    pos: pos(),
                });
            }
            body.push(Stmt::Return {
                value: Some(ret),
                pos: pos(),
            });
            Program {
                globals: (0..NGLOBALS)
                    .map(|i| Global {
                        name: format!("g{i}"),
                        ty: Type::Int,
                        array_len: None,
                        init: vec![inits[i]],
                        pos: pos(),
                    })
                    .collect(),
                functions: vec![Function {
                    name: "main".to_owned(),
                    params: vec![],
                    ret: Type::Int,
                    body,
                    pos: pos(),
                }],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn interpreter_and_compiled_code_agree(program in program_strategy()) {
        let ir = lower(&program).expect("generated programs type-check");

        // Interpreter run.
        let mut interp = Interp::with_virtual_memory(Rc::new(ir.clone()));
        interp.start_main().expect("main exists");
        let state = interp.run(1_000_000);
        let ExecState::Finished(Some(interp_ret)) = state else {
            panic!("interpreter did not finish: {state:?}");
        };
        let interp_globals: Vec<i32> = (0..NGLOBALS)
            .map(|i| interp.global_by_name(&format!("g{i}")))
            .collect();

        // Compiled run.
        let compiled = compile(&ir, CodegenOptions::default()).expect("compiles");
        let mut mem = compiled.build_memory(0x40000);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut mem, 10_000_000).expect("no CPU fault");
        prop_assert!(cpu.is_halted(), "compiled program must halt");
        let cpu_ret = cpu.reg(sctc_cpu::Reg::RV) as i32;
        let cpu_globals: Vec<i32> = (0..NGLOBALS)
            .map(|i| {
                mem.peek_u32(compiled.global_addr(&format!("g{i}")))
                    .expect("global in RAM") as i32
            })
            .collect();

        prop_assert_eq!(interp_ret, cpu_ret, "return values diverge");
        prop_assert_eq!(interp_globals, cpu_globals, "global state diverges");
    }

    /// Statement-step counts are deterministic: two identical interpreter
    /// runs take exactly the same number of steps (the derived model's
    /// timing reference must be reproducible).
    #[test]
    fn step_counts_are_deterministic(program in program_strategy()) {
        let ir = Rc::new(lower(&program).expect("type-checks"));
        let mut a = Interp::with_virtual_memory(Rc::clone(&ir));
        a.start_main().expect("main");
        a.run(1_000_000);
        let mut b = Interp::with_virtual_memory(ir);
        b.start_main().expect("main");
        b.run(1_000_000);
        prop_assert_eq!(a.steps(), b.steps());
    }
}
