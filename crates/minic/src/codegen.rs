//! Code generation: IR → microprocessor machine code.
//!
//! This is the "software side" of the paper's first approach: the embedded
//! program is compiled for the [`sctc_cpu`] core, its globals live at known
//! RAM addresses, and a reserved `__fname` word is updated on every function
//! entry (and restored after every call) so the checker can observe function
//! sequencing through memory — step (c) of paper Section 3.1.
//!
//! The generator is deliberately simple: no optimisation, sp-relative
//! frames, expression trees evaluated in a register stack (`r1`–`r11`),
//! arguments passed in `r1`–`r8`.
//!
//! ## Deliberate semantic notes
//!
//! * Division by zero follows the CPU's RISC-V-style convention instead of
//!   trapping (the interpreter traps; programs under equivalence testing
//!   avoid it).
//! * Array accesses are not bounds-checked, exactly like the original C.

use std::collections::HashMap;
use std::fmt;

use std::rc::Rc;

use sctc_cpu::{AluOp, BranchCond, Instr, IsaKind, Memory, Reg, SymbolMap};

use crate::ast::{BinOp, UnOp};
use crate::ir::{FuncId, IrExpr, IrFunction, IrProgram, IrStmt, Place, SeqId};

/// Layout and limits for compilation.
#[derive(Copy, Clone, Debug)]
pub struct CodegenOptions {
    /// Base address of the globals section (must lie above the text).
    pub global_base: u32,
    /// Initial stack pointer (stack grows down).
    pub stack_top: u32,
    /// Instruction encoding to emit. The generated [`Instr`] sequence is
    /// identical for every encoding; only the final serialisation differs.
    pub isa: IsaKind,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            global_base: 0x0001_0000,
            stack_top: 0x0004_0000,
            isa: IsaKind::Word32,
        }
    }
}

/// An error raised during compilation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodegenError {
    /// The program has no `main`.
    NoMain,
    /// A function takes more than 8 parameters.
    TooManyParams {
        /// Offending function name.
        func: String,
    },
    /// An expression tree is too deep for the register stack.
    ExprTooDeep {
        /// Function containing the expression.
        func: String,
    },
    /// A branch target exceeded the 16-bit word offset.
    JumpOutOfRange,
    /// The text section would overlap the globals section.
    TextOverflow {
        /// Bytes of generated text.
        text_bytes: u32,
        /// Configured globals base.
        global_base: u32,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::NoMain => write!(f, "program has no main function"),
            CodegenError::TooManyParams { func } => {
                write!(f, "function `{func}` has more than 8 parameters")
            }
            CodegenError::ExprTooDeep { func } => {
                write!(f, "expression in `{func}` exceeds the register stack")
            }
            CodegenError::JumpOutOfRange => write!(f, "branch or jump target out of range"),
            CodegenError::TextOverflow {
                text_bytes,
                global_base,
            } => write!(
                f,
                "text section of {text_bytes} bytes overlaps globals at {global_base:#x}"
            ),
        }
    }
}

impl std::error::Error for CodegenError {}

/// A compiled program image plus its symbol information.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// Encoded instructions, loaded at address 0.
    pub text: Vec<u32>,
    /// Address of each global (by source name).
    pub global_addrs: HashMap<String, u32>,
    /// Extent of each global in 32-bit words (1 for scalars, `n` for arrays).
    pub global_words: HashMap<String, u32>,
    /// Address of the reserved `__fname` word.
    pub fname_addr: u32,
    /// `__fname` value for each function name (function id + 1; 0 = none).
    pub fname_values: HashMap<String, u32>,
    /// Initial (address, value) pairs for the globals section.
    pub global_init: Vec<(u32, u32)>,
    /// Options used for layout.
    pub options: CodegenOptions,
}

impl CompiledProgram {
    /// Returns a global's address.
    ///
    /// # Panics
    ///
    /// Panics on unknown names.
    pub fn global_addr(&self, name: &str) -> u32 {
        *self
            .global_addrs
            .get(name)
            .unwrap_or_else(|| panic!("unknown global `{name}`"))
    }

    /// Returns the `__fname` value identifying a function.
    ///
    /// # Panics
    ///
    /// Panics on unknown names.
    pub fn fname_value(&self, name: &str) -> u32 {
        *self
            .fname_values
            .get(name)
            .unwrap_or_else(|| panic!("unknown function `{name}`"))
    }

    /// The instruction encoding this program was serialised with.
    pub fn isa(&self) -> IsaKind {
        self.options.isa
    }

    /// Builds the typed symbol view of the globals section: `__fname` plus
    /// every program global with its word extent. [`Self::build_memory`]
    /// attaches this to the memory so observers (checker atoms, witness
    /// provenance) can name state symbolically.
    pub fn symbol_map(&self) -> SymbolMap {
        let mut map = SymbolMap::new();
        map.insert("__fname", self.fname_addr, 1);
        for (name, &addr) in &self.global_addrs {
            map.insert(name, addr, self.global_words[name]);
        }
        map
    }

    /// Builds a memory image: text at 0, globals initialised, with
    /// `ram_bytes` of RAM and the globals' [`SymbolMap`] attached.
    ///
    /// # Panics
    ///
    /// Panics if `ram_bytes` cannot hold the layout.
    pub fn build_memory(&self, ram_bytes: u32) -> Memory {
        assert!(
            ram_bytes >= self.options.stack_top,
            "RAM must reach the configured stack top"
        );
        let mut mem = Memory::new(ram_bytes);
        mem.load_image(0, &self.text);
        for &(addr, value) in &self.global_init {
            mem.write_u32(addr, value).expect("globals lie inside RAM");
        }
        mem.attach_symbols(Rc::new(self.symbol_map()));
        mem
    }
}

/// Compiles a lowered program.
///
/// # Errors
///
/// See [`CodegenError`].
///
/// # Examples
///
/// ```
/// use minic::{codegen, lower, parse};
/// use sctc_cpu::Cpu;
///
/// let ir = lower(&parse("int g = 1; int main() { g = g + 41; return g; }")?)?;
/// let compiled = codegen::compile(&ir, codegen::CodegenOptions::default())?;
/// let mut mem = compiled.build_memory(0x40000);
/// let mut cpu = Cpu::new(0);
/// cpu.run(&mut mem, 100_000).unwrap();
/// assert_eq!(mem.peek_u32(compiled.global_addr("g")).unwrap(), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(prog: &IrProgram, options: CodegenOptions) -> Result<CompiledProgram, CodegenError> {
    let main = prog.main.ok_or(CodegenError::NoMain)?;

    // Lay out globals: __fname first, then program globals.
    let mut global_addrs = HashMap::new();
    let mut global_words = HashMap::new();
    let fname_addr = options.global_base;
    let mut next = options.global_base + 4;
    let mut global_init = vec![(fname_addr, 0u32)];
    let mut global_elem_addr = Vec::with_capacity(prog.globals.len());
    for g in &prog.globals {
        global_addrs.insert(g.name.clone(), next);
        global_words.insert(g.name.clone(), g.len as u32);
        global_elem_addr.push(next);
        for (i, &v) in g.init.iter().enumerate() {
            global_init.push((next + (i as u32) * 4, v as u32));
        }
        next += (g.len as u32) * 4;
    }

    let fname_values: HashMap<String, u32> = prog
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i as u32 + 1))
        .collect();

    let mut gen = Gen {
        prog,
        global_elem_addr,
        fname_addr,
        code: Vec::new(),
        labels: Vec::new(),
        fixups: Vec::new(),
        func_labels: Vec::new(),
        loop_stack: Vec::new(),
        epilogue: Label(0),
        frame_size: 0,
        current_func: main,
    };

    // Entry stub: sp, jal main, halt.
    gen.emit_load_const(Reg::SP, options.stack_top as i32);
    let main_label = gen.alloc_func_labels();
    gen.emit_call(main_label[main.0 as usize]);
    gen.emit(Instr::Halt);

    for (i, f) in prog.functions.iter().enumerate() {
        gen.bind(main_label[i]);
        gen.compile_function(FuncId(i as u32), f)?;
    }

    let code = gen.finish()?;
    let text_bytes = options.isa.text_bytes(&code);
    if text_bytes > options.global_base {
        return Err(CodegenError::TextOverflow {
            text_bytes,
            global_base: options.global_base,
        });
    }
    Ok(CompiledProgram {
        text: options.isa.encode_program(&code),
        global_addrs,
        global_words,
        fname_addr,
        fname_values,
        global_init,
        options,
    })
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct Label(usize);

enum Fixup {
    /// Patch the branch offset of the instruction at `at` to reach `target`.
    Branch { at: usize, target: Label },
    /// Patch the jal offset of the instruction at `at`.
    Jal { at: usize, target: Label },
}

/// Register-stack base: expressions evaluate in r1..=r11.
const EXPR_BASE: u8 = 1;
const EXPR_LIMIT: u8 = 11;
/// Arguments are passed in r1..=r8.
const MAX_PARAMS: usize = 8;

struct Gen<'p> {
    prog: &'p IrProgram,
    global_elem_addr: Vec<u32>,
    fname_addr: u32,
    code: Vec<Instr>,
    labels: Vec<Option<usize>>,
    fixups: Vec<Fixup>,
    func_labels: Vec<Label>,
    loop_stack: Vec<(Label, Label)>, // (continue target, break target)
    epilogue: Label,
    frame_size: i32,
    current_func: FuncId,
}

impl<'p> Gen<'p> {
    fn emit(&mut self, i: Instr) {
        self.code.push(i);
    }

    fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    fn bind(&mut self, label: Label) {
        debug_assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.code.len());
    }

    fn alloc_func_labels(&mut self) -> Vec<Label> {
        let labels: Vec<Label> = (0..self.prog.functions.len())
            .map(|_| self.new_label())
            .collect();
        self.func_labels = labels.clone();
        labels
    }

    fn emit_branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: Label) {
        self.fixups.push(Fixup::Branch {
            at: self.code.len(),
            target,
        });
        self.emit(Instr::Branch(cond, rs1, rs2, 0));
    }

    fn emit_jump(&mut self, target: Label) {
        self.fixups.push(Fixup::Jal {
            at: self.code.len(),
            target,
        });
        self.emit(Instr::Jal(Reg::ZERO, 0));
    }

    fn emit_call(&mut self, target: Label) {
        self.fixups.push(Fixup::Jal {
            at: self.code.len(),
            target,
        });
        self.emit(Instr::Jal(Reg::RA, 0));
    }

    fn emit_load_const(&mut self, rd: Reg, value: i32) {
        if let Ok(small) = i16::try_from(value) {
            self.emit(Instr::Addi(rd, Reg::ZERO, small));
        } else {
            let v = value as u32;
            self.emit(Instr::Lui(rd, (v >> 16) as u16));
            if v & 0xffff != 0 {
                self.emit(Instr::Ori(rd, rd, (v & 0xffff) as u16));
            }
        }
    }

    fn emit_set_fname(&mut self, value: u32, scratch_a: Reg, scratch_b: Reg) {
        self.emit_load_const(scratch_a, value as i32);
        self.emit_load_const(scratch_b, self.fname_addr as i32);
        self.emit(Instr::Sw(scratch_a, scratch_b, 0));
    }

    fn local_offset(local: u32) -> i16 {
        // ra at 0(sp); local i at 4 + 4i.
        (4 + 4 * local) as i16
    }

    fn reg(idx: u8) -> Reg {
        Reg::new(idx)
    }

    fn too_deep(&self) -> CodegenError {
        CodegenError::ExprTooDeep {
            func: self.prog.func(self.current_func).name.clone(),
        }
    }

    fn compile_function(&mut self, id: FuncId, f: &IrFunction) -> Result<(), CodegenError> {
        if f.param_count > MAX_PARAMS {
            return Err(CodegenError::TooManyParams {
                func: f.name.clone(),
            });
        }
        self.current_func = id;
        self.epilogue = self.new_label();
        self.frame_size = 4 + 4 * f.locals.len() as i32;
        // Prologue.
        self.emit(Instr::Addi(Reg::SP, Reg::SP, -(self.frame_size) as i16));
        self.emit(Instr::Sw(Reg::RA, Reg::SP, 0));
        for p in 0..f.param_count {
            self.emit(Instr::Sw(
                Self::reg(EXPR_BASE + p as u8),
                Reg::SP,
                Self::local_offset(p as u32),
            ));
        }
        self.emit_set_fname(id.0 + 1, Self::reg(1), Self::reg(2));
        // Body.
        self.compile_seq(f, IrFunction::BODY)?;
        // Implicit return: rv = 0 for non-void functions.
        if f.ret.is_some() {
            self.emit(Instr::Addi(Reg::RV, Reg::ZERO, 0));
        }
        // Epilogue.
        let epilogue = self.epilogue;
        self.bind(epilogue);
        self.emit(Instr::Lw(Reg::RA, Reg::SP, 0));
        self.emit(Instr::Addi(Reg::SP, Reg::SP, self.frame_size as i16));
        self.emit(Instr::Jalr(Reg::ZERO, Reg::RA, 0));
        Ok(())
    }

    fn compile_seq(&mut self, f: &IrFunction, seq: SeqId) -> Result<(), CodegenError> {
        for &sid in f.seq(seq) {
            self.compile_stmt(f, f.stmt(sid))?;
        }
        Ok(())
    }

    fn compile_stmt(&mut self, f: &IrFunction, stmt: &IrStmt) -> Result<(), CodegenError> {
        match stmt {
            IrStmt::Assign { target, value, .. } => {
                self.emit_expr(value, EXPR_BASE)?;
                self.emit_store_to_place(target, EXPR_BASE)?;
                Ok(())
            }
            IrStmt::Call {
                dst, func, args, ..
            } => {
                let n = args.len();
                debug_assert!(n <= MAX_PARAMS, "arity checked at function definition");
                // Evaluate argument i directly into its argument register,
                // using the registers above it as that expression's scratch
                // space; earlier arguments stay untouched below.
                for (i, a) in args.iter().enumerate() {
                    self.emit_expr_at(a, EXPR_BASE + i as u8)?;
                }
                let target = self.func_labels[func.0 as usize];
                self.emit_call(target);
                // Restore the caller's fname (stack semantics at statement
                // granularity, matching the interpreter).
                self.emit_set_fname(self.current_func.0 + 1, Self::reg(9), Self::reg(10));
                if let Some(place) = dst {
                    // Move the return value into the expression base and
                    // store it.
                    self.emit(Instr::Addi(Self::reg(EXPR_BASE), Reg::RV, 0));
                    self.emit_store_to_place(place, EXPR_BASE)?;
                }
                Ok(())
            }
            IrStmt::If {
                cond,
                then_seq,
                else_seq,
                ..
            } => {
                let else_label = self.new_label();
                let end_label = self.new_label();
                self.emit_expr(cond, EXPR_BASE)?;
                self.emit_branch(BranchCond::Eq, Self::reg(EXPR_BASE), Reg::ZERO, else_label);
                self.compile_seq(f, *then_seq)?;
                self.emit_jump(end_label);
                self.bind(else_label);
                self.compile_seq(f, *else_seq)?;
                self.bind(end_label);
                Ok(())
            }
            IrStmt::While { cond, body_seq, .. } => {
                let head = self.new_label();
                let end = self.new_label();
                self.bind(head);
                self.emit_expr(cond, EXPR_BASE)?;
                self.emit_branch(BranchCond::Eq, Self::reg(EXPR_BASE), Reg::ZERO, end);
                self.loop_stack.push((head, end));
                self.compile_seq(f, *body_seq)?;
                self.loop_stack.pop();
                self.emit_jump(head);
                self.bind(end);
                Ok(())
            }
            IrStmt::Return { value, .. } => {
                if let Some(e) = value {
                    self.emit_expr(e, EXPR_BASE)?;
                    self.emit(Instr::Addi(Reg::RV, Self::reg(EXPR_BASE), 0));
                }
                let epilogue = self.epilogue;
                self.emit_jump(epilogue);
                Ok(())
            }
            IrStmt::Break { .. } => {
                let (_, brk) = *self.loop_stack.last().expect("break inside loop");
                self.emit_jump(brk);
                Ok(())
            }
            IrStmt::Continue { .. } => {
                let (cont, _) = *self.loop_stack.last().expect("continue inside loop");
                self.emit_jump(cont);
                Ok(())
            }
        }
    }

    /// Stores register `base` to a place, using `base+1..` as scratch.
    fn emit_store_to_place(&mut self, place: &Place, base: u8) -> Result<(), CodegenError> {
        match place {
            Place::Local(id) => {
                self.emit(Instr::Sw(
                    Self::reg(base),
                    Reg::SP,
                    Self::local_offset(id.0),
                ));
                Ok(())
            }
            Place::Global(id) => {
                let addr = self.global_elem_addr[id.0 as usize];
                if base + 1 > EXPR_LIMIT {
                    return Err(self.too_deep());
                }
                self.emit_load_const(Self::reg(base + 1), addr as i32);
                self.emit(Instr::Sw(Self::reg(base), Self::reg(base + 1), 0));
                Ok(())
            }
            Place::GlobalElem(id, idx) => {
                let addr = self.global_elem_addr[id.0 as usize];
                if base + 2 > EXPR_LIMIT {
                    return Err(self.too_deep());
                }
                self.emit_expr_at(idx, base + 1)?;
                self.emit_load_const(Self::reg(base + 2), 4);
                self.emit(Instr::Alu(
                    AluOp::Mul,
                    Self::reg(base + 1),
                    Self::reg(base + 1),
                    Self::reg(base + 2),
                ));
                self.emit_load_const(Self::reg(base + 2), addr as i32);
                self.emit(Instr::Alu(
                    AluOp::Add,
                    Self::reg(base + 1),
                    Self::reg(base + 1),
                    Self::reg(base + 2),
                ));
                self.emit(Instr::Sw(Self::reg(base), Self::reg(base + 1), 0));
                Ok(())
            }
            Place::Mem(addr) => {
                if base + 1 > EXPR_LIMIT {
                    return Err(self.too_deep());
                }
                self.emit_expr_at(addr, base + 1)?;
                self.emit(Instr::Sw(Self::reg(base), Self::reg(base + 1), 0));
                Ok(())
            }
        }
    }

    fn emit_expr(&mut self, e: &IrExpr, base: u8) -> Result<(), CodegenError> {
        self.emit_expr_at(e, base)
    }

    /// Evaluates `e` into register `base`, using `base+1..=EXPR_LIMIT` as
    /// scratch.
    fn emit_expr_at(&mut self, e: &IrExpr, base: u8) -> Result<(), CodegenError> {
        if base > EXPR_LIMIT {
            return Err(self.too_deep());
        }
        let rd = Self::reg(base);
        match e {
            IrExpr::Const(v) => {
                self.emit_load_const(rd, *v);
                Ok(())
            }
            IrExpr::Local(id) => {
                self.emit(Instr::Lw(rd, Reg::SP, Self::local_offset(id.0)));
                Ok(())
            }
            IrExpr::Global(id) => {
                let addr = self.global_elem_addr[id.0 as usize];
                self.emit_load_const(rd, addr as i32);
                self.emit(Instr::Lw(rd, rd, 0));
                Ok(())
            }
            IrExpr::GlobalElem(id, idx) => {
                let addr = self.global_elem_addr[id.0 as usize];
                if base + 1 > EXPR_LIMIT {
                    return Err(self.too_deep());
                }
                self.emit_expr_at(idx, base)?;
                self.emit_load_const(Self::reg(base + 1), 4);
                self.emit(Instr::Alu(AluOp::Mul, rd, rd, Self::reg(base + 1)));
                self.emit_load_const(Self::reg(base + 1), addr as i32);
                self.emit(Instr::Alu(AluOp::Add, rd, rd, Self::reg(base + 1)));
                self.emit(Instr::Lw(rd, rd, 0));
                Ok(())
            }
            IrExpr::MemRead(addr) => {
                self.emit_expr_at(addr, base)?;
                self.emit(Instr::Lw(rd, rd, 0));
                Ok(())
            }
            IrExpr::Unary(op, inner) => {
                self.emit_expr_at(inner, base)?;
                match op {
                    UnOp::Neg => self.emit(Instr::Alu(AluOp::Sub, rd, Reg::ZERO, rd)),
                    UnOp::Not => self.emit(Instr::Sltiu(rd, rd, 1)),
                    UnOp::BitNot => {
                        if base + 1 > EXPR_LIMIT {
                            return Err(self.too_deep());
                        }
                        self.emit_load_const(Self::reg(base + 1), -1);
                        self.emit(Instr::Alu(AluOp::Xor, rd, rd, Self::reg(base + 1)));
                    }
                }
                Ok(())
            }
            IrExpr::Binary(op, a, b) => self.emit_binary(*op, a, b, base),
        }
    }

    fn emit_binary(
        &mut self,
        op: BinOp,
        a: &IrExpr,
        b: &IrExpr,
        base: u8,
    ) -> Result<(), CodegenError> {
        let rd = Self::reg(base);
        // Short-circuit operators need branches, not ALU ops.
        match op {
            BinOp::And => {
                let end = self.new_label();
                self.emit_expr_at(a, base)?;
                self.emit_branch(BranchCond::Eq, rd, Reg::ZERO, end);
                self.emit_expr_at(b, base)?;
                self.emit(Instr::Alu(AluOp::Sltu, rd, Reg::ZERO, rd));
                self.bind(end);
                return Ok(());
            }
            BinOp::Or => {
                let one = self.new_label();
                let end = self.new_label();
                self.emit_expr_at(a, base)?;
                self.emit_branch(BranchCond::Ne, rd, Reg::ZERO, one);
                self.emit_expr_at(b, base)?;
                self.emit(Instr::Alu(AluOp::Sltu, rd, Reg::ZERO, rd));
                self.emit_jump(end);
                self.bind(one);
                self.emit(Instr::Addi(rd, Reg::ZERO, 1));
                self.bind(end);
                return Ok(());
            }
            _ => {}
        }
        if base + 1 > EXPR_LIMIT {
            return Err(self.too_deep());
        }
        let rs = Self::reg(base + 1);
        self.emit_expr_at(a, base)?;
        self.emit_expr_at(b, base + 1)?;
        match op {
            BinOp::Add => self.emit(Instr::Alu(AluOp::Add, rd, rd, rs)),
            BinOp::Sub => self.emit(Instr::Alu(AluOp::Sub, rd, rd, rs)),
            BinOp::Mul => self.emit(Instr::Alu(AluOp::Mul, rd, rd, rs)),
            BinOp::Div => self.emit(Instr::Alu(AluOp::Div, rd, rd, rs)),
            BinOp::Rem => self.emit(Instr::Alu(AluOp::Rem, rd, rd, rs)),
            BinOp::BitAnd => self.emit(Instr::Alu(AluOp::And, rd, rd, rs)),
            BinOp::BitOr => self.emit(Instr::Alu(AluOp::Or, rd, rd, rs)),
            BinOp::BitXor => self.emit(Instr::Alu(AluOp::Xor, rd, rd, rs)),
            BinOp::Shl => self.emit(Instr::Alu(AluOp::Sll, rd, rd, rs)),
            BinOp::Shr => self.emit(Instr::Alu(AluOp::Sra, rd, rd, rs)),
            BinOp::Eq => {
                self.emit(Instr::Alu(AluOp::Sub, rd, rd, rs));
                self.emit(Instr::Sltiu(rd, rd, 1));
            }
            BinOp::Ne => {
                self.emit(Instr::Alu(AluOp::Sub, rd, rd, rs));
                self.emit(Instr::Alu(AluOp::Sltu, rd, Reg::ZERO, rd));
            }
            BinOp::Lt => self.emit(Instr::Alu(AluOp::Slt, rd, rd, rs)),
            BinOp::Gt => self.emit(Instr::Alu(AluOp::Slt, rd, rs, rd)),
            BinOp::Le => {
                self.emit(Instr::Alu(AluOp::Slt, rd, rs, rd));
                self.emit(Instr::Xori(rd, rd, 1));
            }
            BinOp::Ge => {
                self.emit(Instr::Alu(AluOp::Slt, rd, rd, rs));
                self.emit(Instr::Xori(rd, rd, 1));
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
        Ok(())
    }

    fn finish(self) -> Result<Vec<Instr>, CodegenError> {
        let mut code = self.code;
        for fixup in &self.fixups {
            let (at, target) = match fixup {
                Fixup::Branch { at, target } | Fixup::Jal { at, target } => (*at, *target),
            };
            let target_word = self.labels[target.0].expect("all labels bound");
            let delta = target_word as i64 - at as i64;
            let offset = i16::try_from(delta).map_err(|_| CodegenError::JumpOutOfRange)?;
            code[at] = match code[at] {
                Instr::Branch(cond, rs1, rs2, _) => Instr::Branch(cond, rs1, rs2, offset),
                Instr::Jal(rd, _) => Instr::Jal(rd, offset),
                other => unreachable!("fixup on non-jump instruction {other}"),
            };
        }
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typeck::lower;
    use sctc_cpu::Cpu;

    fn run(src: &str) -> (Cpu, Memory, CompiledProgram) {
        let ir = lower(&parse(src).expect("parse")).expect("typeck");
        let compiled = compile(&ir, CodegenOptions::default()).expect("codegen");
        let mut mem = compiled.build_memory(0x40000);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut mem, 10_000_000).expect("no cpu fault");
        assert!(cpu.is_halted(), "program must halt");
        (cpu, mem, compiled)
    }

    fn main_result(src: &str) -> i32 {
        let (cpu, _, _) = run(src);
        cpu.reg(Reg::RV) as i32
    }

    #[test]
    fn returns_value_through_rv() {
        assert_eq!(main_result("int main() { return 41 + 1; }"), 42);
    }

    #[test]
    fn loops_and_locals() {
        assert_eq!(
            main_result(
                "int main() { int s = 0; int i = 0;
                 while (i < 5) { i = i + 1; s = s + i; } return s; }"
            ),
            15
        );
    }

    #[test]
    fn break_and_continue() {
        assert_eq!(
            main_result(
                "int main() { int s = 0; int i = 0;
                 while (true) {
                     i = i + 1;
                     if (i > 10) { break; }
                     if (i % 2 == 0) { continue; }
                     s = s + i;
                 } return s; }"
            ),
            25
        );
    }

    #[test]
    fn recursion_works() {
        assert_eq!(
            main_result(
                "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
                 int main() { return fib(10); }"
            ),
            55
        );
    }

    #[test]
    fn globals_and_arrays_in_memory() {
        let (cpu, mem, compiled) = run("int tab[4] = {10, 20, 30, 40};
             int sum = 0;
             int main() { int i = 0; while (i < 4) { sum = sum + tab[i]; i = i + 1; }
                          tab[0] = 99; return sum; }");
        assert_eq!(cpu.reg(Reg::RV), 100);
        assert_eq!(mem.peek_u32(compiled.global_addr("sum")).unwrap(), 100);
        assert_eq!(mem.peek_u32(compiled.global_addr("tab")).unwrap(), 99);
        assert_eq!(mem.peek_u32(compiled.global_addr("tab") + 12).unwrap(), 40);
    }

    #[test]
    fn deref_reads_and_writes_ram() {
        let (_, mem, _) =
            run("int main() { *(0x20000) = 7; *(0x20004) = *(0x20000) + 1; return 0; }");
        assert_eq!(mem.peek_u32(0x20000).unwrap(), 7);
        assert_eq!(mem.peek_u32(0x20004).unwrap(), 8);
    }

    #[test]
    fn signed_operations() {
        assert_eq!(main_result("int main() { return -7 / 2; }"), -3);
        assert_eq!(main_result("int main() { return -7 % 2; }"), -1);
        assert_eq!(main_result("int main() { return -8 >> 1; }"), -4);
        assert_eq!(main_result("int main() { return 3 << 4; }"), 48);
        assert_eq!(
            main_result("int main() { if (0 - 1 < 1) { return 1; } return 0; }"),
            1
        );
    }

    #[test]
    fn comparisons_produce_zero_one() {
        assert_eq!(
            main_result("int main() { int one = 1; if (2 >= 2) { return 10; } return one; }"),
            10
        );
        assert_eq!(
            main_result("int main() { if (2 != 2) { return 10; } return 11; }"),
            11
        );
        assert_eq!(
            main_result("int main() { if (3 <= 2) { return 10; } return 12; }"),
            12
        );
    }

    #[test]
    fn short_circuit_in_generated_code() {
        // Division by zero on the skipped branch must not execute: the CPU
        // would produce -1 rather than trap, changing the result.
        assert_eq!(
            main_result(
                "int z = 0; int main() { if (z != 0 && 10 / z > 0) { return 1; } return 2; }"
            ),
            2
        );
        assert_eq!(
            main_result("int main() { if (true || false) { return 3; } return 4; }"),
            3
        );
    }

    #[test]
    fn fname_tracks_function_entry_and_restores() {
        let (_, mem, compiled) = run("int helper() { return 5; }
             int r = 0;
             int main() { r = helper(); return r; }");
        // After the run, main executed last (fname restored after the call,
        // and main's value is re-stored on return into the stub... the stub
        // is not a function, so the final value is main's).
        let fname = mem.peek_u32(compiled.fname_addr).unwrap();
        assert_eq!(fname, compiled.fname_value("main"));
        assert_ne!(compiled.fname_value("helper"), compiled.fname_value("main"));
    }

    #[test]
    fn void_functions_and_implicit_return() {
        assert_eq!(
            main_result(
                "int g = 0; void bump() { g = g + 1; }
                 int main() { bump(); bump(); return g; }"
            ),
            2
        );
        // Non-void falling off the end returns 0.
        assert_eq!(main_result("int f() { } int main() { return f() + 9; }"), 9);
    }

    #[test]
    fn eight_parameters_are_supported() {
        assert_eq!(
            main_result(
                "int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
                     return a + b + c + d + e + f + g + h;
                 }
                 int main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }"
            ),
            36
        );
    }

    #[test]
    fn nine_parameters_are_rejected() {
        let ir = lower(
            &parse(
                "int f(int a, int b, int c, int d, int e, int g, int h, int i, int j) { return 0; }
                 int main() { return f(1,2,3,4,5,6,7,8,9); }",
            )
            .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            compile(&ir, CodegenOptions::default()),
            Err(CodegenError::TooManyParams { .. })
        ));
    }

    #[test]
    fn no_main_is_rejected() {
        let ir = lower(&parse("int f() { return 0; }").unwrap()).unwrap();
        assert!(matches!(
            compile(&ir, CodegenOptions::default()),
            Err(CodegenError::NoMain)
        ));
    }

    #[test]
    fn large_constants_load_correctly() {
        assert_eq!(main_result("int main() { return 0x12345678; }"), 0x12345678);
        assert_eq!(main_result("int main() { return -400000; }"), -400000);
        assert_eq!(main_result("int main() { return 0x7FFF0000; }"), 0x7fff0000);
    }

    #[test]
    fn comp16_encoding_runs_the_same_program() {
        let src = "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
                   int main() { return fib(10); }";
        let ir = lower(&parse(src).unwrap()).unwrap();
        let compiled = compile(
            &ir,
            CodegenOptions {
                isa: IsaKind::Comp16,
                ..CodegenOptions::default()
            },
        )
        .unwrap();
        let mut mem = compiled.build_memory(0x40000);
        let mut cpu = Cpu::with_isa(0, IsaKind::Comp16);
        cpu.run(&mut mem, 10_000_000).expect("no cpu fault");
        assert!(cpu.is_halted());
        assert_eq!(cpu.reg(Reg::RV), 55);
        // The compressed image is strictly smaller than the 32-bit one.
        let word32 = compile(&ir, CodegenOptions::default()).unwrap();
        assert!(compiled.text.len() < word32.text.len());
    }

    #[test]
    fn symbol_map_names_the_globals() {
        let (_, mem, compiled) =
            run("int tab[4] = {1, 2, 3, 4}; int sum = 0; int main() { return 0; }");
        let syms = mem.symbols().expect("build_memory attaches the symbol map");
        assert_eq!(syms.symbol("__fname").unwrap().addr, compiled.fname_addr);
        assert_eq!(syms.symbol("tab").unwrap().words, 4);
        assert_eq!(
            syms.label_for_range(compiled.global_addr("sum"), 4).as_deref(),
            Some("sum")
        );
        assert_eq!(
            syms.label_for_range(compiled.global_addr("tab") + 8, 4).as_deref(),
            Some("tab[2]")
        );
    }

    #[test]
    fn bitwise_operations() {
        assert_eq!(main_result("int main() { return 12 & 10; }"), 8);
        assert_eq!(main_result("int main() { return 12 | 3; }"), 15);
        assert_eq!(main_result("int main() { return 12 ^ 10; }"), 6);
        assert_eq!(main_result("int main() { return ~0; }"), -1);
    }
}
