//! Tokenizer for mini-C.

use std::fmt;

use crate::ast::Pos;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Keyword or identifier distinguishing handled by the parser.
    Ident(String),
    /// Integer literal (decimal or `0x` hex).
    Int(i64),
    /// `int` / `bool` / `void` / `if` / `else` / `while` / `return` /
    /// `break` / `continue` / `true` / `false` keywords.
    Kw(&'static str),
    /// Punctuation or operator.
    Sym(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Kw(k) => write!(f, "{k}"),
            Tok::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// A tokenization error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

const KEYWORDS: &[&str] = &[
    "int", "bool", "void", "if", "else", "while", "return", "break", "continue", "true", "false",
];

/// Multi-character symbols, longest first.
const SYMBOLS: &[&str] = &[
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+", "-", "*", "/", "%", "&", "|", "^", "~",
    "!", "<", ">", "=", "(", ")", "{", "}", "[", "]", ";", ",",
];

/// Tokenizes mini-C source.
///
/// Supports `//` line comments and `/* */` block comments.
///
/// # Errors
///
/// Returns a [`LexError`] on unexpected characters, malformed numbers or
/// unterminated block comments.
pub fn tokenize(source: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    let err = |line: usize, col: usize, message: String| LexError {
        pos: Pos { line, col },
        message,
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = Pos { line, col };
        // Whitespace.
        if c == '\n' {
            i += 1;
            line += 1;
            col = 1;
            continue;
        }
        if c == ' ' || c == '\t' || c == '\r' {
            i += 1;
            col += 1;
            continue;
        }
        // Comments.
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let (start_line, start_col) = (line, col);
            i += 2;
            col += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(err(
                        start_line,
                        start_col,
                        "unterminated block comment".to_owned(),
                    ));
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    col += 2;
                    break;
                }
                if bytes[i] == b'\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let hex = c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X'));
            if hex {
                i += 2;
                while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                let text = &source[start + 2..i];
                let value = i64::from_str_radix(text, 16)
                    .map_err(|_| err(line, col, format!("invalid hex literal `0x{text}`")))?;
                tokens.push(Spanned {
                    tok: Tok::Int(value),
                    pos,
                });
            } else {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let value = text
                    .parse::<i64>()
                    .map_err(|_| err(line, col, format!("invalid integer `{text}`")))?;
                tokens.push(Spanned {
                    tok: Tok::Int(value),
                    pos,
                });
            }
            col += i - start;
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &source[start..i];
            let tok = match KEYWORDS.iter().find(|&&k| k == word) {
                Some(&k) => Tok::Kw(k),
                None => Tok::Ident(word.to_owned()),
            };
            tokens.push(Spanned { tok, pos });
            col += i - start;
            continue;
        }
        // Symbols.
        let rest = &source[i..];
        match SYMBOLS.iter().find(|&&s| rest.starts_with(s)) {
            Some(&s) => {
                tokens.push(Spanned {
                    tok: Tok::Sym(s),
                    pos,
                });
                i += s.len();
                col += s.len();
            }
            None => {
                return Err(err(line, col, format!("unexpected character `{c}`")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_declaration() {
        let ts = tokenize("int x = 0x1F;").unwrap();
        let toks: Vec<&Tok> = ts.iter().map(|s| &s.tok).collect();
        assert_eq!(
            toks,
            vec![
                &Tok::Kw("int"),
                &Tok::Ident("x".to_owned()),
                &Tok::Sym("="),
                &Tok::Int(31),
                &Tok::Sym(";"),
            ]
        );
    }

    #[test]
    fn multichar_symbols_win_over_prefixes() {
        let ts = tokenize("a <= b << c == d").unwrap();
        let syms: Vec<String> = ts.iter().map(|s| s.tok.to_string()).collect();
        assert_eq!(syms, vec!["a", "<=", "b", "<<", "c", "==", "d"]);
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let ts = tokenize("// header\n/* multi\nline */ x").unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].pos.line, 3);
    }

    #[test]
    fn unterminated_comment_is_reported() {
        let e = tokenize("/* oops").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn rejects_unknown_characters() {
        let e = tokenize("x @ y").unwrap_err();
        assert_eq!(e.pos.col, 3);
    }

    #[test]
    fn positions_track_columns() {
        let ts = tokenize("ab cd").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 1, col: 4 });
    }
}
