//! Small-step, statement-level interpreter for the IR.
//!
//! One [`Interp::step`] executes exactly one statement (or one loop-condition
//! evaluation) — the granularity at which the paper's C2SystemC translator
//! inserts `esw_pc_event.notify(); wait();` (Fig. 5). The
//! [deriver](crate::deriver) wraps this machine in a simulation process; the
//! checkers and the reference oracle drive it directly.

use std::fmt;
use std::rc::Rc;

use crate::ast::{BinOp, Pos, UnOp};
use crate::ir::{FuncId, IrExpr, IrFunction, IrProgram, IrStmt, Place, SeqId, StmtId};
use crate::vmem::{EswMemory, MemFault, VirtualMemory};

/// Maximum call depth before the interpreter traps.
pub const MAX_CALL_DEPTH: usize = 1024;

/// A runtime fault.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuntimeError {
    /// Division or remainder by zero.
    DivByZero {
        /// Source position of the statement.
        pos: Pos,
    },
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// Source position.
        pos: Pos,
        /// The offending index.
        index: i32,
        /// The array length.
        len: usize,
    },
    /// Raw memory access fault.
    Mem(MemFault),
    /// Call depth exceeded [`MAX_CALL_DEPTH`].
    StackOverflow,
    /// The program has no `main` function.
    NoMain,
    /// `start_call` used with a wrong argument count.
    BadArity {
        /// Callee name.
        func: String,
        /// Expected argument count.
        expected: usize,
        /// Provided argument count.
        found: usize,
    },
    /// `start_call` named an unknown function.
    UnknownFunction(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DivByZero { pos } => write!(f, "division by zero at {pos}"),
            RuntimeError::IndexOutOfBounds { pos, index, len } => {
                write!(f, "index {index} out of bounds for length {len} at {pos}")
            }
            RuntimeError::Mem(e) => write!(f, "{e}"),
            RuntimeError::StackOverflow => write!(f, "call depth exceeded"),
            RuntimeError::NoMain => write!(f, "program has no main function"),
            RuntimeError::BadArity {
                func,
                expected,
                found,
            } => write!(f, "`{func}` expects {expected} arguments, found {found}"),
            RuntimeError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<MemFault> for RuntimeError {
    fn from(e: MemFault) -> Self {
        RuntimeError::Mem(e)
    }
}

/// The execution state of the machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecState {
    /// No activation is in flight; `start_main`/`start_call` may be used.
    Idle,
    /// Mid-execution.
    Running,
    /// The started activation returned (with its value, if non-void).
    Finished(Option<i32>),
    /// A runtime fault occurred.
    Trapped(RuntimeError),
}

impl ExecState {
    /// Returns `true` while more steps can be taken.
    pub fn is_running(&self) -> bool {
        matches!(self, ExecState::Running)
    }
}

/// A location resolved to a concrete storage slot (indices already
/// evaluated), so it stays meaningful across a call.
#[derive(Clone, Debug)]
enum ResolvedPlace {
    GlobalFlat(usize),
    Local { frame: usize, slot: usize },
    Mem(u32),
}

enum Work {
    /// Next statement of a sequence.
    Seq(SeqId, usize),
    /// A live `while` statement; re-evaluates its condition.
    Loop(StmtId),
}

struct Frame {
    func: FuncId,
    locals: Vec<i32>,
    work: Vec<Work>,
    ret_dst: Option<ResolvedPlace>,
}

/// What an interpreter watch observes (see [`Interp::watch_global`]).
#[derive(Clone, Debug)]
enum WatchTarget {
    /// One flat global slot.
    GlobalSlot(usize),
    /// The name of the executing function — the paper's `fname` shadow
    /// variable, which changes on every call-stack push/pop.
    Fname,
}

struct InterpWatch {
    target: WatchTarget,
    dirty: bool,
}

/// The interpreter.
///
/// # Examples
///
/// ```
/// use std::rc::Rc;
/// use minic::{lower, parse, ExecState, Interp, VirtualMemory};
///
/// let ir = lower(&parse("int main() { int s = 0; int i = 1;
///     while (i <= 10) { s = s + i; i = i + 1; } return s; }")?)?;
/// let mut interp = Interp::new(Rc::new(ir), Box::new(VirtualMemory::new()));
/// interp.start_main()?;
/// assert_eq!(interp.run(10_000), ExecState::Finished(Some(55)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Interp {
    prog: Rc<IrProgram>,
    globals: Vec<i32>,
    global_base: Vec<usize>,
    mem: Box<dyn EswMemory>,
    frames: Vec<Frame>,
    state: ExecState,
    steps: u64,
    watches: Vec<InterpWatch>,
}

impl Interp {
    /// Creates an interpreter over a program with the given memory model.
    pub fn new(prog: Rc<IrProgram>, mem: Box<dyn EswMemory>) -> Self {
        let mut global_base = Vec::with_capacity(prog.globals.len());
        let mut globals = Vec::new();
        for g in &prog.globals {
            global_base.push(globals.len());
            globals.extend_from_slice(&g.init);
        }
        Interp {
            prog,
            globals,
            global_base,
            mem,
            frames: Vec::new(),
            state: ExecState::Idle,
            steps: 0,
            watches: Vec::new(),
        }
    }

    /// Registers a watch on a global scalar (element 0 of an array) and
    /// returns its watch id. New watches start **dirty**; thereafter the
    /// watch is re-dirtied by any write to the slot (program assignment or
    /// testbench injection) and by [`Interp::reset`].
    ///
    /// # Panics
    ///
    /// Panics on unknown names.
    pub fn watch_global(&mut self, name: &str) -> usize {
        let id = self
            .prog
            .global_by_name(name)
            .unwrap_or_else(|| panic!("unknown global `{name}`"));
        self.watches.push(InterpWatch {
            target: WatchTarget::GlobalSlot(self.global_base[id.0 as usize]),
            dirty: true,
        });
        self.watches.len() - 1
    }

    /// Registers a watch on the executing-function name, dirtied by every
    /// call-stack push or pop. Starts dirty, like [`Interp::watch_global`].
    pub fn watch_fname(&mut self) -> usize {
        self.watches.push(InterpWatch {
            target: WatchTarget::Fname,
            dirty: true,
        });
        self.watches.len() - 1
    }

    /// Takes and clears the dirty flag of one watch.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a registered watch id.
    pub fn take_dirty_watch(&mut self, id: usize) -> bool {
        std::mem::take(&mut self.watches[id].dirty)
    }

    /// Describes a registered watch for diagnostics: the write path that
    /// dirties it, e.g. ``global `tb_reset` write`` or
    /// `fname change (call/return)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a registered watch id.
    pub fn watch_label(&self, id: usize) -> String {
        match &self.watches[id].target {
            WatchTarget::GlobalSlot(slot) => {
                let name = self
                    .global_base
                    .iter()
                    .position(|&base| base == *slot)
                    .map(|gi| self.prog.globals[gi].name.as_str())
                    .unwrap_or("?");
                format!("global `{name}` write")
            }
            WatchTarget::Fname => "fname change (call/return)".to_owned(),
        }
    }

    /// Marks every watch dirty (conservative invalidation).
    pub fn mark_all_watches_dirty(&mut self) {
        for w in &mut self.watches {
            w.dirty = true;
        }
    }

    fn mark_global_write(&mut self, slot: usize) {
        for w in &mut self.watches {
            if matches!(w.target, WatchTarget::GlobalSlot(s) if s == slot) {
                w.dirty = true;
            }
        }
    }

    fn mark_frame_change(&mut self) {
        for w in &mut self.watches {
            if matches!(w.target, WatchTarget::Fname) {
                w.dirty = true;
            }
        }
    }

    /// Convenience constructor with a fresh [`VirtualMemory`].
    pub fn with_virtual_memory(prog: Rc<IrProgram>) -> Self {
        Interp::new(prog, Box::new(VirtualMemory::new()))
    }

    /// Returns the program.
    pub fn program(&self) -> &Rc<IrProgram> {
        &self.prog
    }

    /// Returns the current execution state.
    pub fn state(&self) -> &ExecState {
        &self.state
    }

    /// Number of statement steps executed so far (the derived model's
    /// program-counter event count).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Resets globals to their initializers and clears all activation state.
    /// The memory model is left untouched.
    pub fn reset(&mut self) {
        let mut flat = Vec::with_capacity(self.globals.len());
        for g in &self.prog.globals {
            flat.extend_from_slice(&g.init);
        }
        self.globals = flat;
        self.frames.clear();
        self.state = ExecState::Idle;
        self.steps = 0;
        // Wholesale re-initialisation: every watched slot may have changed.
        self.mark_all_watches_dirty();
    }

    /// Starts executing `main`.
    ///
    /// # Errors
    ///
    /// Fails with [`RuntimeError::NoMain`] if the program has none.
    pub fn start_main(&mut self) -> Result<(), RuntimeError> {
        let main = self.prog.main.ok_or(RuntimeError::NoMain)?;
        self.start(main, &[])
    }

    /// Starts executing an arbitrary function with the given arguments.
    ///
    /// # Errors
    ///
    /// Fails on unknown names or arity mismatch.
    pub fn start_call(&mut self, name: &str, args: &[i32]) -> Result<(), RuntimeError> {
        let func = self
            .prog
            .func_by_name(name)
            .ok_or_else(|| RuntimeError::UnknownFunction(name.to_owned()))?;
        let def = self.prog.func(func);
        if def.param_count != args.len() {
            return Err(RuntimeError::BadArity {
                func: name.to_owned(),
                expected: def.param_count,
                found: args.len(),
            });
        }
        self.start(func, args)
    }

    fn start(&mut self, func: FuncId, args: &[i32]) -> Result<(), RuntimeError> {
        let def = self.prog.func(func);
        let mut locals = vec![0i32; def.locals.len()];
        locals[..args.len()].copy_from_slice(args);
        self.frames.clear();
        self.frames.push(Frame {
            func,
            locals,
            work: vec![Work::Seq(IrFunction::BODY, 0)],
            ret_dst: None,
        });
        self.state = ExecState::Running;
        if !self.watches.is_empty() {
            self.mark_frame_change();
        }
        Ok(())
    }

    /// Returns the function currently at the top of the call stack.
    pub fn current_function(&self) -> Option<FuncId> {
        self.frames.last().map(|f| f.func)
    }

    /// Returns the name of the function currently executing — the paper's
    /// `fname` shadow variable.
    pub fn current_function_name(&self) -> Option<&str> {
        self.current_function()
            .map(|id| self.prog.func(id).name.as_str())
    }

    /// Reads a global scalar (or element 0 of an array) by id.
    pub fn global(&self, id: crate::ir::GlobalId) -> i32 {
        self.globals[self.global_base[id.0 as usize]]
    }

    /// Reads a global array element.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn global_elem(&self, id: crate::ir::GlobalId, index: usize) -> i32 {
        let g = self.prog.global(id);
        assert!(index < g.len, "global element index out of bounds");
        self.globals[self.global_base[id.0 as usize] + index]
    }

    /// Reads a global scalar by name.
    ///
    /// # Panics
    ///
    /// Panics on unknown names (propositions are bound at setup time; a miss
    /// is a harness bug).
    pub fn global_by_name(&self, name: &str) -> i32 {
        let id = self
            .prog
            .global_by_name(name)
            .unwrap_or_else(|| panic!("unknown global `{name}`"));
        self.global(id)
    }

    /// Writes a global scalar by name (testbench input injection).
    ///
    /// # Panics
    ///
    /// Panics on unknown names.
    pub fn set_global_by_name(&mut self, name: &str, value: i32) {
        let id = self
            .prog
            .global_by_name(name)
            .unwrap_or_else(|| panic!("unknown global `{name}`"));
        let slot = self.global_base[id.0 as usize];
        self.globals[slot] = value;
        if !self.watches.is_empty() {
            self.mark_global_write(slot);
        }
    }

    /// Returns the memory model.
    pub fn mem(&self) -> &dyn EswMemory {
        self.mem.as_ref()
    }

    /// Returns the memory model mutably (testbench fault injection).
    pub fn mem_mut(&mut self) -> &mut dyn EswMemory {
        self.mem.as_mut()
    }

    /// Executes one statement. Returns the state afterwards.
    pub fn step(&mut self) -> ExecState {
        if !self.state.is_running() {
            return self.state.clone();
        }
        let prog = Rc::clone(&self.prog);
        if let Err(e) = self.step_inner(&prog) {
            self.state = ExecState::Trapped(e);
        }
        self.steps += 1;
        self.state.clone()
    }

    /// Runs until the machine stops or `max_steps` statements have executed.
    pub fn run(&mut self, max_steps: u64) -> ExecState {
        for _ in 0..max_steps {
            if !self.step().is_running() {
                break;
            }
        }
        self.state.clone()
    }

    fn step_inner(&mut self, prog: &IrProgram) -> Result<(), RuntimeError> {
        enum Action {
            ImplicitReturn,
            Exec(FuncId, StmtId),
            LoopCheck(FuncId, StmtId),
        }
        loop {
            let action = {
                let Some(frame) = self.frames.last_mut() else {
                    self.state = ExecState::Finished(None);
                    return Ok(());
                };
                let func = prog.func(frame.func);
                match frame.work.last_mut() {
                    None => Action::ImplicitReturn,
                    Some(Work::Seq(seq, idx)) => {
                        let list = func.seq(*seq);
                        if *idx >= list.len() {
                            frame.work.pop();
                            continue; // structural pop, not a step
                        }
                        let sid = list[*idx];
                        *idx += 1;
                        Action::Exec(frame.func, sid)
                    }
                    Some(Work::Loop(sid)) => Action::LoopCheck(frame.func, *sid),
                }
            };
            return match action {
                Action::ImplicitReturn => {
                    // Fell off the end of the body: implicit `return`.
                    self.do_return(None);
                    Ok(())
                }
                Action::Exec(func_id, sid) => self.exec_stmt(prog, func_id, sid),
                Action::LoopCheck(func_id, sid) => {
                    let (body_seq, pos) = match prog.func(func_id).stmt(sid) {
                        IrStmt::While { body_seq, pos, .. } => (*body_seq, *pos),
                        _ => unreachable!("Loop work item always references a While"),
                    };
                    let taken = self.eval_top(prog, cond_of(prog, func_id, sid), pos)? != 0;
                    let frame = self.frames.last_mut().expect("frame checked above");
                    if taken {
                        frame.work.push(Work::Seq(body_seq, 0));
                    } else {
                        frame.work.pop();
                    }
                    Ok(()) // condition evaluation is one step
                }
            };
        }
    }

    fn exec_stmt(
        &mut self,
        prog: &IrProgram,
        func_id: FuncId,
        sid: StmtId,
    ) -> Result<(), RuntimeError> {
        let func = prog.func(func_id);
        let stmt = func.stmt(sid);
        match stmt {
            IrStmt::Assign { target, value, pos } => {
                let v = self.eval_top(prog, value, *pos)?;
                let place = self.resolve_place(prog, target, *pos)?;
                self.write_place(&place, v)?;
                Ok(())
            }
            IrStmt::Call {
                dst,
                func: callee,
                args,
                pos,
            } => {
                if self.frames.len() >= MAX_CALL_DEPTH {
                    return Err(RuntimeError::StackOverflow);
                }
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval_top(prog, a, *pos)?);
                }
                let ret_dst = match dst {
                    Some(place) => Some(self.resolve_place(prog, place, *pos)?),
                    None => None,
                };
                let callee_def = prog.func(*callee);
                let mut locals = vec![0i32; callee_def.locals.len()];
                locals[..arg_vals.len()].copy_from_slice(&arg_vals);
                self.frames.push(Frame {
                    func: *callee,
                    locals,
                    work: vec![Work::Seq(IrFunction::BODY, 0)],
                    ret_dst,
                });
                if !self.watches.is_empty() {
                    self.mark_frame_change();
                }
                Ok(())
            }
            IrStmt::If {
                cond,
                then_seq,
                else_seq,
                pos,
            } => {
                let c = self.eval_top(prog, cond, *pos)? != 0;
                let chosen = if c { *then_seq } else { *else_seq };
                let frame = self.frames.last_mut().expect("executing frame exists");
                frame.work.push(Work::Seq(chosen, 0));
                Ok(())
            }
            IrStmt::While {
                cond,
                body_seq,
                pos,
            } => {
                // Entering the loop: evaluate the condition once now; further
                // iterations go through the Loop work item.
                let c = self.eval_top(prog, cond, *pos)? != 0;
                let frame = self.frames.last_mut().expect("executing frame exists");
                if c {
                    frame.work.push(Work::Loop(sid));
                    frame.work.push(Work::Seq(*body_seq, 0));
                }
                Ok(())
            }
            IrStmt::Return { value, pos } => {
                let v = match value {
                    Some(e) => Some(self.eval_top(prog, e, *pos)?),
                    None => None,
                };
                self.do_return(v);
                Ok(())
            }
            IrStmt::Break { .. } => {
                let frame = self.frames.last_mut().expect("executing frame exists");
                while let Some(item) = frame.work.pop() {
                    if matches!(item, Work::Loop(_)) {
                        break;
                    }
                }
                Ok(())
            }
            IrStmt::Continue { .. } => {
                let frame = self.frames.last_mut().expect("executing frame exists");
                while let Some(item) = frame.work.last() {
                    if matches!(item, Work::Loop(_)) {
                        break;
                    }
                    frame.work.pop();
                }
                Ok(())
            }
        }
    }

    fn eval_top(&mut self, prog: &IrProgram, e: &IrExpr, pos: Pos) -> Result<i32, RuntimeError> {
        let frame = self.frames.last().expect("executing frame exists");
        eval(
            prog,
            &self.globals,
            &self.global_base,
            &frame.locals,
            self.mem.as_mut(),
            e,
            pos,
        )
    }

    fn resolve_place(
        &mut self,
        prog: &IrProgram,
        place: &Place,
        pos: Pos,
    ) -> Result<ResolvedPlace, RuntimeError> {
        match place {
            Place::Global(id) => Ok(ResolvedPlace::GlobalFlat(self.global_base[id.0 as usize])),
            Place::GlobalElem(id, idx) => {
                let i = self.eval_top(prog, idx, pos)?;
                let len = prog.global(*id).len;
                if i < 0 || i as usize >= len {
                    return Err(RuntimeError::IndexOutOfBounds { pos, index: i, len });
                }
                Ok(ResolvedPlace::GlobalFlat(
                    self.global_base[id.0 as usize] + i as usize,
                ))
            }
            Place::Local(id) => Ok(ResolvedPlace::Local {
                frame: self.frames.len() - 1,
                slot: id.0 as usize,
            }),
            Place::Mem(addr) => {
                let a = self.eval_top(prog, addr, pos)?;
                Ok(ResolvedPlace::Mem(a as u32))
            }
        }
    }

    fn write_place(&mut self, place: &ResolvedPlace, value: i32) -> Result<(), RuntimeError> {
        match place {
            ResolvedPlace::GlobalFlat(i) => {
                self.globals[*i] = value;
                if !self.watches.is_empty() {
                    self.mark_global_write(*i);
                }
                Ok(())
            }
            ResolvedPlace::Local { frame, slot } => {
                self.frames[*frame].locals[*slot] = value;
                Ok(())
            }
            ResolvedPlace::Mem(addr) => {
                self.mem.write(*addr, value as u32)?;
                Ok(())
            }
        }
    }

    fn do_return(&mut self, value: Option<i32>) {
        let frame = self.frames.pop().expect("return needs a frame");
        if !self.watches.is_empty() {
            self.mark_frame_change();
        }
        // C leaves falling off the end of a non-void function undefined; we
        // (and the code generator) make it deterministic: the value is 0.
        let value = match (value, self.prog.func(frame.func).ret) {
            (None, Some(_)) => Some(0),
            (v, _) => v,
        };
        if self.frames.is_empty() {
            self.state = ExecState::Finished(value);
            return;
        }
        if let (Some(dst), Some(v)) = (frame.ret_dst, value) {
            // Returning into the caller cannot fault: the place was resolved
            // (and its memory write deferred) at call time only for
            // non-memory places... except Mem, which can fault.
            if let Err(e) = self.write_place(&dst, v) {
                self.state = ExecState::Trapped(e);
            }
        }
    }
}

impl fmt::Debug for Interp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interp")
            .field("state", &self.state)
            .field("steps", &self.steps)
            .field("depth", &self.frames.len())
            .field("current", &self.current_function_name())
            .finish()
    }
}

fn cond_of(prog: &IrProgram, func: FuncId, sid: StmtId) -> &IrExpr {
    match prog.func(func).stmt(sid) {
        IrStmt::While { cond, .. } => cond,
        _ => unreachable!("Loop work item always references a While"),
    }
}

/// Evaluates a pure expression. 32-bit wrapping semantics; division by zero
/// and out-of-bounds indexing trap; raw memory reads may fault and may have
/// device side effects.
fn eval(
    prog: &IrProgram,
    globals: &[i32],
    global_base: &[usize],
    locals: &[i32],
    mem: &mut dyn EswMemory,
    e: &IrExpr,
    pos: Pos,
) -> Result<i32, RuntimeError> {
    Ok(match e {
        IrExpr::Const(v) => *v,
        IrExpr::Local(id) => locals[id.0 as usize],
        IrExpr::Global(id) => globals[global_base[id.0 as usize]],
        IrExpr::GlobalElem(id, idx) => {
            let i = eval(prog, globals, global_base, locals, mem, idx, pos)?;
            let len = prog.global(*id).len;
            if i < 0 || i as usize >= len {
                return Err(RuntimeError::IndexOutOfBounds { pos, index: i, len });
            }
            globals[global_base[id.0 as usize] + i as usize]
        }
        IrExpr::MemRead(addr) => {
            let a = eval(prog, globals, global_base, locals, mem, addr, pos)?;
            mem.read(a as u32)? as i32
        }
        IrExpr::Unary(op, inner) => {
            let v = eval(prog, globals, global_base, locals, mem, inner, pos)?;
            match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Not => i32::from(v == 0),
                UnOp::BitNot => !v,
            }
        }
        IrExpr::Binary(op, a, b) => {
            // Short-circuit first.
            match op {
                BinOp::And => {
                    let av = eval(prog, globals, global_base, locals, mem, a, pos)?;
                    if av == 0 {
                        return Ok(0);
                    }
                    let bv = eval(prog, globals, global_base, locals, mem, b, pos)?;
                    return Ok(i32::from(bv != 0));
                }
                BinOp::Or => {
                    let av = eval(prog, globals, global_base, locals, mem, a, pos)?;
                    if av != 0 {
                        return Ok(1);
                    }
                    let bv = eval(prog, globals, global_base, locals, mem, b, pos)?;
                    return Ok(i32::from(bv != 0));
                }
                _ => {}
            }
            let av = eval(prog, globals, global_base, locals, mem, a, pos)?;
            let bv = eval(prog, globals, global_base, locals, mem, b, pos)?;
            match op {
                BinOp::Add => av.wrapping_add(bv),
                BinOp::Sub => av.wrapping_sub(bv),
                BinOp::Mul => av.wrapping_mul(bv),
                BinOp::Div => {
                    if bv == 0 {
                        return Err(RuntimeError::DivByZero { pos });
                    }
                    av.wrapping_div(bv)
                }
                BinOp::Rem => {
                    if bv == 0 {
                        return Err(RuntimeError::DivByZero { pos });
                    }
                    av.wrapping_rem(bv)
                }
                BinOp::BitAnd => av & bv,
                BinOp::BitOr => av | bv,
                BinOp::BitXor => av ^ bv,
                BinOp::Shl => av.wrapping_shl(bv as u32 & 31),
                BinOp::Shr => av.wrapping_shr(bv as u32 & 31),
                BinOp::Eq => i32::from(av == bv),
                BinOp::Ne => i32::from(av != bv),
                BinOp::Lt => i32::from(av < bv),
                BinOp::Le => i32::from(av <= bv),
                BinOp::Gt => i32::from(av > bv),
                BinOp::Ge => i32::from(av >= bv),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typeck::lower;

    fn make(src: &str) -> Interp {
        let ir = lower(&parse(src).expect("parse")).expect("typeck");
        Interp::with_virtual_memory(Rc::new(ir))
    }

    fn run_main(src: &str) -> ExecState {
        let mut i = make(src);
        i.start_main().unwrap();
        i.run(1_000_000)
    }

    #[test]
    fn global_watches_follow_writes_and_reset() {
        let mut i = make(
            "int g = 0; int h = 0;
             int main() { g = 1; g = 1; return 0; }",
        );
        let wg = i.watch_global("g");
        let wh = i.watch_global("h");
        assert!(i.take_dirty_watch(wg) && i.take_dirty_watch(wh));
        i.start_main().unwrap();
        i.run(100);
        // Only `g` was written — twice, and the second same-value write
        // still counts (dirty tracks writes, not value flips).
        assert!(i.take_dirty_watch(wg));
        assert!(!i.take_dirty_watch(wh));
        i.set_global_by_name("h", 5);
        assert!(!i.take_dirty_watch(wg));
        assert!(i.take_dirty_watch(wh));
        i.reset();
        assert!(i.take_dirty_watch(wg) && i.take_dirty_watch(wh));
    }

    #[test]
    fn fname_watch_follows_call_stack_changes() {
        let mut i = make(
            "int g = 0;
             int f() { return 3; }
             int main() { g = f(); return 0; }",
        );
        let wf = i.watch_fname();
        assert!(i.take_dirty_watch(wf));
        i.start_main().unwrap();
        assert!(i.take_dirty_watch(wf), "start pushes a frame");
        // Step until the call into f() happens.
        while i.current_function_name() != Some("f") {
            assert!(matches!(i.step(), ExecState::Running));
        }
        assert!(i.take_dirty_watch(wf), "call pushes a frame");
        i.run(100);
        assert!(i.take_dirty_watch(wf), "returns pop frames");
    }

    #[test]
    fn returns_value_from_main() {
        assert_eq!(
            run_main("int main() { return 41 + 1; }"),
            ExecState::Finished(Some(42))
        );
    }

    #[test]
    fn loops_and_locals() {
        assert_eq!(
            run_main(
                "int main() { int s = 0; int i = 0;
                 while (i < 5) { i = i + 1; s = s + i; } return s; }"
            ),
            ExecState::Finished(Some(15))
        );
    }

    #[test]
    fn break_and_continue() {
        assert_eq!(
            run_main(
                "int main() { int s = 0; int i = 0;
                 while (true) {
                     i = i + 1;
                     if (i > 10) { break; }
                     if (i % 2 == 0) { continue; }
                     s = s + i;
                 } return s; }"
            ),
            ExecState::Finished(Some(25)) // 1+3+5+7+9
        );
    }

    #[test]
    fn nested_loop_break_only_exits_inner() {
        assert_eq!(
            run_main(
                "int main() { int n = 0; int i = 0;
                 while (i < 3) {
                     i = i + 1;
                     int j = 0;
                     while (true) { j = j + 1; if (j == 2) { break; } }
                     n = n + j;
                 } return n; }"
            ),
            ExecState::Finished(Some(6))
        );
    }

    #[test]
    fn function_calls_and_recursion() {
        assert_eq!(
            run_main(
                "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
                 int main() { return fib(10); }"
            ),
            ExecState::Finished(Some(55))
        );
    }

    #[test]
    fn globals_and_arrays() {
        assert_eq!(
            run_main(
                "int tab[4] = {10, 20, 30, 40};
                 int sum = 0;
                 int main() { int i = 0; while (i < 4) { sum = sum + tab[i]; i = i + 1; }
                              tab[0] = 99; return sum + tab[0]; }"
            ),
            ExecState::Finished(Some(199))
        );
    }

    #[test]
    fn memory_derefs_round_trip_through_virtual_memory() {
        assert_eq!(
            run_main("int main() { *(0x8000) = 7; *(0x8004) = *(0x8000) + 1; return *(0x8004); }"),
            ExecState::Finished(Some(8))
        );
    }

    #[test]
    fn division_by_zero_traps() {
        match run_main("int z = 0; int main() { return 1 / z; }") {
            ExecState::Trapped(RuntimeError::DivByZero { .. }) => {}
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn out_of_bounds_index_traps() {
        match run_main("int a[2]; int main() { return a[5]; }") {
            ExecState::Trapped(RuntimeError::IndexOutOfBounds {
                index: 5, len: 2, ..
            }) => {}
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn infinite_recursion_traps_with_stack_overflow() {
        match run_main("int f() { return f(); } int main() { return f(); }") {
            ExecState::Trapped(RuntimeError::StackOverflow) => {}
            other => panic!("expected stack overflow, got {other:?}"),
        }
    }

    #[test]
    fn short_circuit_avoids_division_by_zero() {
        assert_eq!(
            run_main("int z = 0; int main() { if (z != 0 && 1 / z > 0) { return 1; } return 2; }"),
            ExecState::Finished(Some(2))
        );
    }

    #[test]
    fn current_function_name_tracks_calls() {
        let mut i = make(
            "void inner() { int x = 1; x = x; }
             int main() { inner(); return 0; }",
        );
        i.start_main().unwrap();
        let mut saw_inner = false;
        while i.step().is_running() {
            if i.current_function_name() == Some("inner") {
                saw_inner = true;
            }
        }
        assert!(saw_inner, "fname should reach `inner` during the run");
    }

    #[test]
    fn start_call_runs_arbitrary_functions() {
        let mut i = make("int add(int a, int b) { return a + b; } int main() { return 0; }");
        i.start_call("add", &[20, 22]).unwrap();
        assert_eq!(i.run(100), ExecState::Finished(Some(42)));
        // Re-start without reset.
        i.start_call("add", &[1, 2]).unwrap();
        assert_eq!(i.run(100), ExecState::Finished(Some(3)));
    }

    #[test]
    fn start_call_checks_arity_and_name() {
        let mut i = make("int f(int a) { return a; } int main() { return 0; }");
        assert!(matches!(
            i.start_call("f", &[]),
            Err(RuntimeError::BadArity { .. })
        ));
        assert!(matches!(
            i.start_call("nope", &[]),
            Err(RuntimeError::UnknownFunction(_))
        ));
    }

    #[test]
    fn globals_are_observable_and_settable_between_steps() {
        let mut i = make("int x = 5; int main() { x = x * 2; return x; }");
        assert_eq!(i.global_by_name("x"), 5);
        i.set_global_by_name("x", 10);
        i.start_main().unwrap();
        assert_eq!(i.run(100), ExecState::Finished(Some(20)));
    }

    #[test]
    fn reset_restores_initializers() {
        let mut i = make("int x = 1; int main() { x = 9; return x; }");
        i.start_main().unwrap();
        i.run(100);
        assert_eq!(i.global_by_name("x"), 9);
        i.reset();
        assert_eq!(i.global_by_name("x"), 1);
        assert_eq!(*i.state(), ExecState::Idle);
    }

    #[test]
    fn step_counts_match_statement_granularity() {
        // main: let(1) + while-entry-cond(1) + 3*(body 2 stmts + re-cond)
        // Exact count matters less than determinism: two identical runs
        // must agree.
        let src = "int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }";
        let mut a = make(src);
        a.start_main().unwrap();
        a.run(1000);
        let mut b = make(src);
        b.start_main().unwrap();
        b.run(1000);
        assert_eq!(a.steps(), b.steps());
        assert!(a.steps() >= 8);
    }

    #[test]
    fn void_main_finishes_with_none() {
        let mut i = make("void main() { int x = 1; x = x; }");
        i.start_main().unwrap();
        assert_eq!(i.run(100), ExecState::Finished(None));
    }
}
