//! Control-flow graphs over the IR.
//!
//! The baseline formal checkers (bounded model checking, predicate
//! abstraction) need an unstructured view of each function: basic blocks of
//! simple statements connected by gotos, conditional branches and returns.

use std::collections::HashMap;
use std::fmt;

use crate::ir::{FuncId, IrExpr, IrFunction, IrProgram, IrStmt, Place, SeqId};

/// Index of a basic block in a [`Cfg`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

/// A side-effecting straight-line statement.
#[derive(Clone, Debug)]
pub enum SimpleStmt {
    /// `place = expr;`
    Assign {
        /// Target location.
        place: Place,
        /// Pure value.
        value: IrExpr,
    },
    /// `place = f(args);` / `f(args);`
    Call {
        /// Destination, if any.
        dst: Option<Place>,
        /// Callee.
        func: FuncId,
        /// Pure arguments.
        args: Vec<IrExpr>,
    },
}

/// How a basic block ends.
#[derive(Clone, Debug)]
pub enum Terminator {
    /// Unconditional edge.
    Goto(BlockId),
    /// Two-way conditional edge.
    If {
        /// Pure condition.
        cond: IrExpr,
        /// Successor when the condition is non-zero.
        then_block: BlockId,
        /// Successor when it is zero.
        else_block: BlockId,
    },
    /// Function return.
    Return(Option<IrExpr>),
}

/// A basic block.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Straight-line statements.
    pub stmts: Vec<SimpleStmt>,
    /// Block terminator (filled during construction; defaults to a return).
    pub term: Option<Terminator>,
}

impl Block {
    /// Returns the terminator.
    ///
    /// # Panics
    ///
    /// Panics if the CFG is still under construction.
    pub fn terminator(&self) -> &Terminator {
        self.term.as_ref().expect("CFG construction completed")
    }
}

/// The control-flow graph of one function.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Function this graph belongs to.
    pub func: FuncId,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
}

impl Cfg {
    /// The entry block id.
    pub const ENTRY: BlockId = BlockId(0);

    /// Returns a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Successor block ids of a block.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        match self.block(id).terminator() {
            Terminator::Goto(b) => vec![*b],
            Terminator::If {
                then_block,
                else_block,
                ..
            } => vec![*then_block, *else_block],
            Terminator::Return(_) => Vec::new(),
        }
    }

    /// Builds the CFG of a function.
    pub fn build(prog: &IrProgram, func: FuncId) -> Cfg {
        let f = prog.func(func);
        let mut b = Builder {
            f,
            blocks: vec![Block::default()],
            current: BlockId(0),
            loop_stack: Vec::new(),
        };
        b.lower_seq(IrFunction::BODY);
        // Implicit return at the end of the body.
        b.terminate(Terminator::Return(None));
        // Fill any unterminated blocks (unreachable construction artifacts).
        for block in &mut b.blocks {
            if block.term.is_none() {
                block.term = Some(Terminator::Return(None));
            }
        }
        Cfg {
            func,
            blocks: b.blocks,
        }
    }

    /// Builds CFGs for every function of a program.
    pub fn build_all(prog: &IrProgram) -> HashMap<FuncId, Cfg> {
        (0..prog.functions.len() as u32)
            .map(|i| (FuncId(i), Cfg::build(prog, FuncId(i))))
            .collect()
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, block) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{i}:")?;
            for s in &block.stmts {
                match s {
                    SimpleStmt::Assign { .. } => writeln!(f, "  assign")?,
                    SimpleStmt::Call { func, .. } => writeln!(f, "  call fn#{}", func.0)?,
                }
            }
            match block.terminator() {
                Terminator::Goto(b) => writeln!(f, "  goto bb{}", b.0)?,
                Terminator::If {
                    then_block,
                    else_block,
                    ..
                } => writeln!(f, "  if .. bb{} else bb{}", then_block.0, else_block.0)?,
                Terminator::Return(_) => writeln!(f, "  return")?,
            }
        }
        Ok(())
    }
}

struct Builder<'p> {
    f: &'p IrFunction,
    blocks: Vec<Block>,
    current: BlockId,
    /// (loop-head, loop-exit) for break/continue.
    loop_stack: Vec<(BlockId, BlockId)>,
}

impl<'p> Builder<'p> {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId(self.blocks.len() as u32 - 1)
    }

    fn push(&mut self, stmt: SimpleStmt) {
        self.blocks[self.current.0 as usize].stmts.push(stmt);
    }

    /// Terminates the current block if it has no terminator yet.
    fn terminate(&mut self, term: Terminator) {
        let block = &mut self.blocks[self.current.0 as usize];
        if block.term.is_none() {
            block.term = Some(term);
        }
    }

    fn switch_to(&mut self, id: BlockId) {
        self.current = id;
    }

    fn lower_seq(&mut self, seq: SeqId) {
        for &sid in self.f.seq(seq) {
            match self.f.stmt(sid) {
                IrStmt::Assign { target, value, .. } => self.push(SimpleStmt::Assign {
                    place: target.clone(),
                    value: value.clone(),
                }),
                IrStmt::Call {
                    dst, func, args, ..
                } => self.push(SimpleStmt::Call {
                    dst: dst.clone(),
                    func: *func,
                    args: args.clone(),
                }),
                IrStmt::If {
                    cond,
                    then_seq,
                    else_seq,
                    ..
                } => {
                    let then_block = self.new_block();
                    let else_block = self.new_block();
                    let join = self.new_block();
                    self.terminate(Terminator::If {
                        cond: cond.clone(),
                        then_block,
                        else_block,
                    });
                    self.switch_to(then_block);
                    self.lower_seq(*then_seq);
                    self.terminate(Terminator::Goto(join));
                    self.switch_to(else_block);
                    self.lower_seq(*else_seq);
                    self.terminate(Terminator::Goto(join));
                    self.switch_to(join);
                }
                IrStmt::While { cond, body_seq, .. } => {
                    let head = self.new_block();
                    let body = self.new_block();
                    let exit = self.new_block();
                    self.terminate(Terminator::Goto(head));
                    self.switch_to(head);
                    self.terminate(Terminator::If {
                        cond: cond.clone(),
                        then_block: body,
                        else_block: exit,
                    });
                    self.loop_stack.push((head, exit));
                    self.switch_to(body);
                    self.lower_seq(*body_seq);
                    self.terminate(Terminator::Goto(head));
                    self.loop_stack.pop();
                    self.switch_to(exit);
                }
                IrStmt::Return { value, .. } => {
                    self.terminate(Terminator::Return(value.clone()));
                    // Anything after a return in the same sequence is dead;
                    // keep building into a fresh unreachable block.
                    let dead = self.new_block();
                    self.switch_to(dead);
                }
                IrStmt::Break { .. } => {
                    let (_, exit) = *self.loop_stack.last().expect("break inside loop");
                    self.terminate(Terminator::Goto(exit));
                    let dead = self.new_block();
                    self.switch_to(dead);
                }
                IrStmt::Continue { .. } => {
                    let (head, _) = *self.loop_stack.last().expect("continue inside loop");
                    self.terminate(Terminator::Goto(head));
                    let dead = self.new_block();
                    self.switch_to(dead);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typeck::lower;

    fn cfg_of(src: &str, name: &str) -> (IrProgram, Cfg) {
        let ir = lower(&parse(src).expect("parse")).expect("typeck");
        let id = ir.func_by_name(name).expect("function exists");
        let cfg = Cfg::build(&ir, id);
        (ir, cfg)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, cfg) = cfg_of("int main() { int a = 1; a = a + 1; return a; }", "main");
        assert!(matches!(
            cfg.block(Cfg::ENTRY).terminator(),
            Terminator::Return(Some(_))
        ));
        assert_eq!(cfg.block(Cfg::ENTRY).stmts.len(), 2);
    }

    #[test]
    fn if_produces_diamond() {
        let (_, cfg) = cfg_of(
            "int main() { int a = 1; if (a > 0) { a = 2; } else { a = 3; } return a; }",
            "main",
        );
        let succs = cfg.successors(Cfg::ENTRY);
        assert_eq!(succs.len(), 2);
        // Both branches join.
        let j0 = cfg.successors(succs[0]);
        let j1 = cfg.successors(succs[1]);
        assert_eq!(j0, j1);
    }

    #[test]
    fn while_produces_back_edge() {
        let (_, cfg) = cfg_of(
            "int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }",
            "main",
        );
        // Find the head block: an If terminator whose then-branch loops back.
        let mut found_backedge = false;
        for (i, block) in cfg.blocks.iter().enumerate() {
            if let Terminator::If { then_block, .. } = block.terminator() {
                let body_succs = cfg.successors(*then_block);
                if body_succs.contains(&BlockId(i as u32)) {
                    found_backedge = true;
                }
            }
        }
        assert!(
            found_backedge,
            "loop body must branch back to the head:\n{cfg}"
        );
    }

    #[test]
    fn break_jumps_to_exit() {
        let (_, cfg) = cfg_of("int main() { while (true) { break; } return 1; }", "main");
        // The body block gotos the exit, not the head.
        let Terminator::If {
            then_block,
            else_block,
            ..
        } = cfg
            .blocks
            .iter()
            .find_map(|b| match b.terminator() {
                t @ Terminator::If { .. } => Some(t.clone()),
                _ => None,
            })
            .expect("loop head exists")
        else {
            unreachable!()
        };
        match cfg.block(then_block).terminator() {
            Terminator::Goto(to) => assert_eq!(*to, else_block),
            other => panic!("expected goto, got {other:?}"),
        }
    }

    #[test]
    fn calls_are_block_statements() {
        let (_, cfg) = cfg_of("void f() { } int main() { f(); f(); return 0; }", "main");
        assert_eq!(cfg.block(Cfg::ENTRY).stmts.len(), 2);
        assert!(matches!(
            cfg.block(Cfg::ENTRY).stmts[0],
            SimpleStmt::Call { .. }
        ));
    }

    #[test]
    fn every_block_is_terminated() {
        let (_, cfg) = cfg_of(
            "int main() { int i = 0;
               while (i < 5) { if (i == 3) { break; } i = i + 1; }
               return i; }",
            "main",
        );
        for b in &cfg.blocks {
            assert!(b.term.is_some());
        }
    }

    #[test]
    fn build_all_covers_every_function() {
        let ir =
            lower(&parse("void a() { } void b() { } int main() { a(); b(); return 0; }").unwrap())
                .unwrap();
        let all = Cfg::build_all(&ir);
        assert_eq!(all.len(), 3);
    }
}
