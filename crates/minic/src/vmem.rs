//! Virtual memory model for derived software models.
//!
//! The paper's second approach replaces direct memory accesses `*(addr)` with
//! virtual-memory requests (Fig. 5, `convert DirectMemAccessToVM`). The
//! [`EswMemory`] trait is that request interface; [`VirtualMemory`] is the
//! default sparse implementation, and hardware models (e.g. the data-flash
//! device of the case study) provide their own implementations.

use std::collections::HashMap;
use std::fmt;

/// A fault raised by a memory request.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct MemFault {
    /// Faulting address.
    pub addr: u32,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory fault at address {:#010x}", self.addr)
    }
}

impl std::error::Error for MemFault {}

/// The memory-request interface of a derived software model.
pub trait EswMemory {
    /// Reads a 32-bit word; may have device side effects.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for addresses the model rejects.
    fn read(&mut self, addr: u32) -> Result<u32, MemFault>;

    /// Writes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for addresses the model rejects.
    fn write(&mut self, addr: u32, value: u32) -> Result<(), MemFault>;

    /// Reads without side effects (checker observation).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for addresses the model rejects.
    fn peek(&self, addr: u32) -> Result<u32, MemFault>;
}

/// Sparse word-addressed memory; unwritten addresses read as zero.
///
/// # Examples
///
/// ```
/// use minic::{EswMemory, VirtualMemory};
///
/// let mut vm = VirtualMemory::new();
/// assert_eq!(vm.read(0x8000)?, 0);
/// vm.write(0x8000, 7)?;
/// assert_eq!(vm.peek(0x8000)?, 7);
/// # Ok::<(), minic::MemFault>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct VirtualMemory {
    words: HashMap<u32, u32>,
    reads: u64,
    writes: u64,
}

impl VirtualMemory {
    /// Creates an empty virtual memory.
    pub fn new() -> Self {
        VirtualMemory::default()
    }

    /// Number of read requests served.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of write requests served.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

impl EswMemory for VirtualMemory {
    fn read(&mut self, addr: u32) -> Result<u32, MemFault> {
        self.reads += 1;
        Ok(self.words.get(&addr).copied().unwrap_or(0))
    }

    fn write(&mut self, addr: u32, value: u32) -> Result<(), MemFault> {
        self.writes += 1;
        self.words.insert(addr, value);
        Ok(())
    }

    fn peek(&self, addr: u32) -> Result<u32, MemFault> {
        Ok(self.words.get(&addr).copied().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_addresses_read_zero() {
        let mut vm = VirtualMemory::new();
        assert_eq!(vm.read(0).unwrap(), 0);
        assert_eq!(vm.peek(0xffff_fffc).unwrap(), 0);
    }

    #[test]
    fn counters_track_requests() {
        let mut vm = VirtualMemory::new();
        vm.write(4, 1).unwrap();
        vm.write(8, 2).unwrap();
        let _ = vm.read(4).unwrap();
        assert_eq!(vm.write_count(), 2);
        assert_eq!(vm.read_count(), 1);
        // Peeks are not counted: they model the checker, not the software.
        let _ = vm.peek(4).unwrap();
        assert_eq!(vm.read_count(), 1);
    }

    #[test]
    fn fault_formats_address() {
        let f = MemFault { addr: 0x10 };
        assert!(f.to_string().contains("0x00000010"));
    }
}
