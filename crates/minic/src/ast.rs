//! Surface abstract syntax of mini-C.
//!
//! Mini-C is the embedded-software language of this reproduction: a C subset
//! rich enough for the NEC-style EEPROM-emulation case study — 32-bit
//! integers, booleans, global arrays, functions, structured control flow and
//! raw-address memory access `*(expr)` for hardware registers.

use std::fmt;

/// Source position (1-based line, column) attached to diagnostics.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A mini-C type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Type {
    /// 32-bit signed integer (wrapping arithmetic).
    Int,
    /// Boolean.
    Bool,
    /// No value (function returns only).
    Void,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Type::Int => "int",
            Type::Bool => "bool",
            Type::Void => "void",
        })
    }
}

/// A complete translation unit.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Global variable definitions, in declaration order.
    pub globals: Vec<Global>,
    /// Function definitions, in declaration order.
    pub functions: Vec<Function>,
}

/// A global variable or array definition.
#[derive(Clone, Debug)]
pub struct Global {
    /// Variable name.
    pub name: String,
    /// Element type ([`Type::Int`] or [`Type::Bool`]).
    pub ty: Type,
    /// Array length; `None` for scalars.
    pub array_len: Option<usize>,
    /// Initial values (one per element; scalars use index 0). Missing
    /// entries default to zero.
    pub init: Vec<i64>,
    /// Source position.
    pub pos: Pos,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Type,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source position.
    pub pos: Pos,
}

/// A function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type ([`Type::Int`] or [`Type::Bool`]).
    pub ty: Type,
    /// Source position.
    pub pos: Pos,
}

/// An assignable location.
#[derive(Clone, Debug)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An element of a global array.
    Index(String, Box<Expr>),
    /// A raw memory word: `*(addr) = v`.
    Deref(Box<Expr>),
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// Local declaration `int x = e;` (initializer required).
    Let {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Initializer.
        init: Expr,
        /// Source position.
        pos: Pos,
    },
    /// Assignment `lv = e;`.
    Assign {
        /// Target location.
        target: LValue,
        /// Assigned value.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `if (c) { .. } else { .. }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (empty when absent).
        else_branch: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `while (c) { .. }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `return;` / `return e;`.
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// An expression evaluated for effect (function call).
    Expr {
        /// The expression (must contain a call to be useful).
        expr: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `break;`
    Break {
        /// Source position.
        pos: Pos,
    },
    /// `continue;`
    Continue {
        /// Source position.
        pos: Pos,
    },
}

impl Stmt {
    /// Returns the source position of the statement.
    pub fn pos(&self) -> Pos {
        match self {
            Stmt::Let { pos, .. }
            | Stmt::Assign { pos, .. }
            | Stmt::If { pos, .. }
            | Stmt::While { pos, .. }
            | Stmt::Return { pos, .. }
            | Stmt::Expr { pos, .. }
            | Stmt::Break { pos }
            | Stmt::Continue { pos } => *pos,
        }
    }
}

/// Unary operators.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Bitwise complement.
    BitNot,
}

/// Binary operators.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+` (wrapping).
    Add,
    /// `-` (wrapping).
    Sub,
    /// `*` (wrapping).
    Mul,
    /// `/` (signed; traps on division by zero).
    Div,
    /// `%` (signed; traps on division by zero).
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<` (shift count taken mod 32).
    Shl,
    /// `>>` (arithmetic; count mod 32).
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit).
    And,
    /// `||` (short-circuit).
    Or,
}

/// An expression.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64, Pos),
    /// Boolean literal.
    BoolLit(bool, Pos),
    /// Variable reference (local, parameter or global scalar).
    Var(String, Pos),
    /// Global array element.
    Index(String, Box<Expr>, Pos),
    /// Function call.
    Call(String, Vec<Expr>, Pos),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Pos),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, Pos),
    /// Raw memory word read `*(addr)`.
    Deref(Box<Expr>, Pos),
}

impl Expr {
    /// Returns the source position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::IntLit(_, p)
            | Expr::BoolLit(_, p)
            | Expr::Var(_, p)
            | Expr::Index(_, _, p)
            | Expr::Call(_, _, p)
            | Expr::Unary(_, _, p)
            | Expr::Binary(_, _, _, p)
            | Expr::Deref(_, p) => *p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_reachable_from_nodes() {
        let p = Pos { line: 3, col: 7 };
        let e = Expr::IntLit(5, p);
        assert_eq!(e.pos(), p);
        let s = Stmt::Break { pos: p };
        assert_eq!(s.pos(), p);
        assert_eq!(p.to_string(), "3:7");
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::Bool.to_string(), "bool");
        assert_eq!(Type::Void.to_string(), "void");
    }
}
