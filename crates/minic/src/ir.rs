//! Typed, resolved intermediate representation of mini-C programs.
//!
//! The IR is produced by the [type checker](crate::typeck) and consumed by
//! the [interpreter](crate::interp), the [code generator](crate::codegen)
//! and the [CFG builder](crate::cfg). Its two invariants matter to all of
//! them:
//!
//! 1. **Calls are statements.** Nested calls are hoisted into temporaries by
//!    the lowering pass, so expression evaluation is pure. This is what
//!    gives the derived model its clean "one statement = one time step"
//!    semantics (paper Fig. 5).
//! 2. **Names are resolved.** Variables are [`GlobalId`]/[`LocalId`]
//!    indices; functions are [`FuncId`]s.

use std::fmt;

pub use crate::ast::{BinOp, Pos, UnOp};

/// Index of a global variable.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GlobalId(pub u32);

/// Index of a function.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FuncId(pub u32);

/// Index of a local slot within a function frame (parameters first).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LocalId(pub u32);

/// Index of a statement within a function's statement arena.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StmtId(pub u32);

/// Index of a statement sequence within a function (sequence 0 is the body).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SeqId(pub u32);

/// A value type (void exists only as an absent return type).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum IrType {
    /// 32-bit signed integer.
    Int,
    /// Boolean stored as 0/1.
    Bool,
}

impl fmt::Display for IrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IrType::Int => "int",
            IrType::Bool => "bool",
        })
    }
}

/// A lowered program.
#[derive(Clone, Debug)]
pub struct IrProgram {
    /// Globals in declaration order.
    pub globals: Vec<IrGlobal>,
    /// Functions in declaration order.
    pub functions: Vec<IrFunction>,
    /// The entry function (`main`), if defined.
    pub main: Option<FuncId>,
}

impl IrProgram {
    /// Looks up a global by source name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Looks up a function by source name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Returns a global's metadata.
    pub fn global(&self, id: GlobalId) -> &IrGlobal {
        &self.globals[id.0 as usize]
    }

    /// Returns a function's definition.
    pub fn func(&self, id: FuncId) -> &IrFunction {
        &self.functions[id.0 as usize]
    }

    /// Total number of statements across all functions (the paper reports
    /// its case study's size in lines/functions; this is our equivalent
    /// size metric).
    pub fn stmt_count(&self) -> usize {
        self.functions.iter().map(|f| f.stmts.len()).sum()
    }
}

/// A global variable or array.
#[derive(Clone, Debug)]
pub struct IrGlobal {
    /// Source name.
    pub name: String,
    /// Element type.
    pub ty: IrType,
    /// Element count (1 for scalars).
    pub len: usize,
    /// Initial values, padded with zeros to `len`.
    pub init: Vec<i32>,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct IrFunction {
    /// Source name.
    pub name: String,
    /// Number of leading locals that are parameters.
    pub param_count: usize,
    /// All local slots (parameters first, then declared locals and
    /// call-hoisting temporaries).
    pub locals: Vec<IrLocal>,
    /// Return type; `None` for void.
    pub ret: Option<IrType>,
    /// Statement arena.
    pub stmts: Vec<IrStmt>,
    /// Sequence arena; `seqs[0]` is the function body.
    pub seqs: Vec<Vec<StmtId>>,
}

impl IrFunction {
    /// The body sequence id.
    pub const BODY: SeqId = SeqId(0);

    /// Returns a statement by id.
    pub fn stmt(&self, id: StmtId) -> &IrStmt {
        &self.stmts[id.0 as usize]
    }

    /// Returns a sequence by id.
    pub fn seq(&self, id: SeqId) -> &[StmtId] {
        &self.seqs[id.0 as usize]
    }
}

/// A local slot.
#[derive(Clone, Debug)]
pub struct IrLocal {
    /// Source name (temporaries use `$t<n>`).
    pub name: String,
    /// Slot type.
    pub ty: IrType,
}

/// An assignable location.
#[derive(Clone, Debug)]
pub enum Place {
    /// A global scalar.
    Global(GlobalId),
    /// A global array element.
    GlobalElem(GlobalId, IrExpr),
    /// A local slot.
    Local(LocalId),
    /// A raw memory word.
    Mem(IrExpr),
}

/// A statement.
#[derive(Clone, Debug)]
pub enum IrStmt {
    /// `place = expr;`
    Assign {
        /// Target location.
        target: Place,
        /// Pure right-hand side.
        value: IrExpr,
        /// Source position.
        pos: Pos,
    },
    /// `place = f(args);` or `f(args);`
    Call {
        /// Destination for the return value.
        dst: Option<Place>,
        /// Callee.
        func: FuncId,
        /// Pure argument expressions.
        args: Vec<IrExpr>,
        /// Source position.
        pos: Pos,
    },
    /// `if (cond) seq else seq`
    If {
        /// Pure condition.
        cond: IrExpr,
        /// Then sequence.
        then_seq: SeqId,
        /// Else sequence (possibly empty).
        else_seq: SeqId,
        /// Source position.
        pos: Pos,
    },
    /// `while (cond) seq`
    While {
        /// Pure condition, re-evaluated each iteration.
        cond: IrExpr,
        /// Body sequence.
        body_seq: SeqId,
        /// Source position.
        pos: Pos,
    },
    /// `return;` / `return expr;`
    Return {
        /// Returned value.
        value: Option<IrExpr>,
        /// Source position.
        pos: Pos,
    },
    /// `break;`
    Break {
        /// Source position.
        pos: Pos,
    },
    /// `continue;`
    Continue {
        /// Source position.
        pos: Pos,
    },
}

impl IrStmt {
    /// Returns the source position.
    pub fn pos(&self) -> Pos {
        match self {
            IrStmt::Assign { pos, .. }
            | IrStmt::Call { pos, .. }
            | IrStmt::If { pos, .. }
            | IrStmt::While { pos, .. }
            | IrStmt::Return { pos, .. }
            | IrStmt::Break { pos }
            | IrStmt::Continue { pos } => *pos,
        }
    }
}

/// A pure expression (no calls — see module docs).
#[derive(Clone, Debug)]
pub enum IrExpr {
    /// Constant.
    Const(i32),
    /// Local slot read.
    Local(LocalId),
    /// Global scalar read.
    Global(GlobalId),
    /// Global array element read.
    GlobalElem(GlobalId, Box<IrExpr>),
    /// Raw memory word read `*(addr)`.
    MemRead(Box<IrExpr>),
    /// Unary operation.
    Unary(UnOp, Box<IrExpr>),
    /// Binary operation (`And`/`Or` short-circuit).
    Binary(BinOp, Box<IrExpr>, Box<IrExpr>),
}

impl IrExpr {
    /// Returns `true` if the expression reads raw memory anywhere.
    pub fn reads_memory(&self) -> bool {
        match self {
            IrExpr::Const(_) | IrExpr::Local(_) | IrExpr::Global(_) => false,
            IrExpr::GlobalElem(_, e) | IrExpr::Unary(_, e) => e.reads_memory(),
            IrExpr::MemRead(_) => true,
            IrExpr::Binary(_, a, b) => a.reads_memory() || b.reads_memory(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_memory_detects_derefs() {
        let e = IrExpr::Binary(
            BinOp::Add,
            Box::new(IrExpr::Const(1)),
            Box::new(IrExpr::MemRead(Box::new(IrExpr::Const(0x8000)))),
        );
        assert!(e.reads_memory());
        assert!(!IrExpr::Global(GlobalId(0)).reads_memory());
    }

    #[test]
    fn display_of_types() {
        assert_eq!(IrType::Int.to_string(), "int");
        assert_eq!(IrType::Bool.to_string(), "bool");
    }
}
