//! # minic — the embedded-software language of the reproduction
//!
//! A C subset ("mini-C") plus everything the two verification flows of the
//! paper need from it:
//!
//! * [`parse`] / [`lower`] — frontend producing the resolved [`ir`],
//! * [`Interp`] — statement-level small-step interpreter,
//! * [`DerivedEsw`] — the C2SystemC-equivalent derived simulation model
//!   (one statement = one time step, `esw_pc_event` per statement),
//! * [`VirtualMemory`]/[`EswMemory`] — the virtual memory model that
//!   replaces direct `*(addr)` accesses in the derived model,
//! * [`compile`](codegen::compile) — code generator targeting the
//!   [`sctc_cpu`] microprocessor model for the first approach,
//! * [`cfg`] — control-flow graphs for the baseline formal checkers.
//!
//! ## Example
//!
//! ```
//! use std::rc::Rc;
//! use minic::{lower, parse, ExecState, Interp};
//!
//! let src = "int x = 0; int main() { x = 2 + 3; return x * x; }";
//! let ir = lower(&parse(src)?)?;
//! let mut interp = Interp::with_virtual_memory(Rc::new(ir));
//! interp.start_main()?;
//! assert_eq!(interp.run(1000), ExecState::Finished(Some(25)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod cfg;
pub mod codegen;
mod deriver;
mod interp;
pub mod ir;
pub mod lexer;
mod parser;
mod typeck;
mod vmem;

pub use deriver::{share_interp, DerivedEsw, DerivedEswHandles, SharedInterp};
pub use interp::{ExecState, Interp, RuntimeError, MAX_CALL_DEPTH};
pub use parser::{parse, ParseError};
pub use typeck::{lower, TypeError};
pub use vmem::{EswMemory, MemFault, VirtualMemory};
