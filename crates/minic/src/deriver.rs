//! Derivation of a simulation model from a mini-C program — the paper's
//! C2SystemC translator (Fig. 5), second verification approach.
//!
//! The derived model is the [`Interp`] wrapped in a kernel process that,
//! after every executed statement, notifies the program-counter event
//! (`esw_pc_event`) and suspends for one tick. The statement counter thereby
//! *is* the timing reference: temporal bounds count statements, not clock
//! cycles, which is why the same property needs far smaller bounds than in
//! the microprocessor flow (paper Section 3.2).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use sctc_sim::{
    Activation, Duration, Event, Notify, Process, ProcessContext, ProcessId, Simulation,
};

use crate::interp::Interp;

/// A shareable interpreter handle: the derived-model process, the testbench
/// and the checker all hold one.
pub type SharedInterp = Rc<RefCell<Interp>>;

/// Wraps an interpreter for sharing.
pub fn share_interp(interp: Interp) -> SharedInterp {
    Rc::new(RefCell::new(interp))
}

/// Event handles of a spawned derived model.
#[derive(Copy, Clone, Debug)]
pub struct DerivedEswHandles {
    /// The process id of the ESW model.
    pub process: ProcessId,
    /// Notified (delta) after every executed statement — the timing
    /// reference for the temporal checker.
    pub pc_event: Event,
    /// Notified (delta) whenever the software finishes or traps; the
    /// testbench reacts by preparing the next test case.
    pub done_event: Event,
    /// The testbench notifies this after starting the next activation.
    pub resume_event: Event,
}

/// The derived-model simulation process.
pub struct DerivedEsw {
    interp: SharedInterp,
    pc_event: Event,
    done_event: Event,
    resume_event: Event,
}

impl DerivedEsw {
    /// Spawns the derived ESW model into a simulation.
    ///
    /// The process steps the interpreter once per tick while it is running;
    /// when the activation finishes (or before the first one starts) it
    /// notifies `done_event` and waits for `resume_event`.
    pub fn spawn(sim: &mut Simulation, interp: SharedInterp) -> DerivedEswHandles {
        let pc_event = sim.create_event("esw_pc_event");
        let done_event = sim.create_event("esw_done");
        let resume_event = sim.create_event("esw_resume");
        let process = sim.spawn(
            "derived_esw",
            Box::new(DerivedEsw {
                interp,
                pc_event,
                done_event,
                resume_event,
            }),
        );
        DerivedEswHandles {
            process,
            pc_event,
            done_event,
            resume_event,
        }
    }
}

impl Process for DerivedEsw {
    fn resume(&mut self, ctx: &mut ProcessContext<'_>) -> Activation {
        let running = self.interp.borrow().state().is_running();
        if !running {
            ctx.notify(self.done_event, Notify::Delta);
            return Activation::WaitEvent(self.resume_event);
        }
        self.interp.borrow_mut().step();
        // The paper's `esw_pc_event.notify(); wait();` after every
        // statement: one statement, one time step.
        ctx.notify(self.pc_event, Notify::Delta);
        Activation::WaitTime(Duration::from_ticks(1))
    }
}

impl fmt::Debug for DerivedEsw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DerivedEsw")
            .field("pc_event", &self.pc_event)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::ExecState;
    use crate::parser::parse;
    use crate::typeck::lower;
    use sctc_sim::SimTime;

    fn shared(src: &str) -> SharedInterp {
        let ir = lower(&parse(src).expect("parse")).expect("typeck");
        share_interp(Interp::with_virtual_memory(Rc::new(ir)))
    }

    #[test]
    fn pc_event_fires_once_per_statement() {
        let interp = shared("int main() { int a = 1; int b = 2; return a + b; }");
        interp.borrow_mut().start_main().unwrap();
        let mut sim = Simulation::new();
        let handles = DerivedEsw::spawn(&mut sim, interp.clone());
        sim.run_until(SimTime::from_ticks(1000)).unwrap();
        let steps = interp.borrow().steps();
        assert_eq!(sim.event_fire_count(handles.pc_event), steps);
        assert_eq!(*interp.borrow().state(), ExecState::Finished(Some(3)));
        assert!(sim.event_fire_count(handles.done_event) >= 1);
    }

    #[test]
    fn statement_counter_is_the_time_base() {
        let interp = shared("int main() { int a = 1; int b = 2; return a + b; }");
        interp.borrow_mut().start_main().unwrap();
        let mut sim = Simulation::new();
        let _ = DerivedEsw::spawn(&mut sim, interp.clone());
        sim.run_until(SimTime::from_ticks(1000)).unwrap();
        // Time advanced one tick per statement.
        assert_eq!(sim.now().ticks(), interp.borrow().steps());
    }

    #[test]
    fn testbench_restarts_via_resume_event() {
        let interp = shared("int twice(int x) { return x * 2; } int main() { return 0; }");
        let mut sim = Simulation::new();
        let handles = DerivedEsw::spawn(&mut sim, interp.clone());

        // Testbench: on done, start the next of three calls.
        struct Bench {
            interp: SharedInterp,
            handles: DerivedEswHandles,
            started: bool,
            case: i32,
            results: Rc<RefCell<Vec<i32>>>,
        }
        impl Process for Bench {
            fn resume(&mut self, ctx: &mut ProcessContext<'_>) -> Activation {
                if !self.started {
                    // Wait for the model's initial "ready" done-event.
                    self.started = true;
                    return Activation::WaitEvent(self.handles.done_event);
                }
                if let ExecState::Finished(Some(v)) = self.interp.borrow().state().clone() {
                    self.results.borrow_mut().push(v);
                }
                if self.case >= 3 {
                    ctx.stop();
                    return Activation::Terminate;
                }
                self.case += 1;
                self.interp
                    .borrow_mut()
                    .start_call("twice", &[self.case])
                    .unwrap();
                ctx.notify(self.handles.resume_event, Notify::Delta);
                Activation::WaitEvent(self.handles.done_event)
            }
        }
        let results = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "bench",
            Box::new(Bench {
                interp: interp.clone(),
                handles,
                started: false,
                case: 0,
                results: results.clone(),
            }),
        );
        sim.run_to_completion().unwrap();
        assert_eq!(*results.borrow(), vec![2, 4, 6]);
    }
}
