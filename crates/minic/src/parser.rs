//! Recursive-descent parser for mini-C.

use std::fmt;

use crate::ast::{BinOp, Expr, Function, Global, LValue, Param, Pos, Program, Stmt, Type, UnOp};
use crate::lexer::{tokenize, LexError, Spanned, Tok};

/// A parse error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Syntactic problem at a position.
    Syntax {
        /// Source position (end-of-file errors reuse the last token's).
        pos: Pos,
        /// Description.
        message: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Syntax { pos, message } => write!(f, "parse error at {pos}: {message}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses a mini-C translation unit.
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the source position of the first
/// problem.
///
/// # Examples
///
/// ```
/// use minic::parse;
///
/// let program = parse(r#"
///     int counter = 0;
///     void tick() { counter = counter + 1; }
///     int main() { tick(); return counter; }
/// "#)?;
/// assert_eq!(program.functions.len(), 2);
/// # Ok::<(), minic::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut program = Program::default();
    while !p.at_end() {
        p.parse_top_level(&mut program)?;
    }
    Ok(program)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn here(&self) -> Pos {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|s| s.pos)
            .unwrap_or_default()
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::Syntax {
            pos: self.here(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{sym}`, found {}",
                self.peek()
                    .map_or("end of input".to_owned(), |t| format!("`{t}`"))
            )))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Kw(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(name)) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            _ => Err(self.error("expected an identifier")),
        }
    }

    fn parse_type(&mut self) -> Result<Option<Type>, ParseError> {
        let ty = match self.peek() {
            Some(Tok::Kw("int")) => Some(Type::Int),
            Some(Tok::Kw("bool")) => Some(Type::Bool),
            Some(Tok::Kw("void")) => Some(Type::Void),
            _ => None,
        };
        if ty.is_some() {
            self.pos += 1;
        }
        Ok(ty)
    }

    fn parse_top_level(&mut self, program: &mut Program) -> Result<(), ParseError> {
        let pos = self.here();
        let ty = self
            .parse_type()?
            .ok_or_else(|| self.error("expected a type to start a declaration"))?;
        let name = self.expect_ident()?;
        if self.eat_sym("(") {
            // Function definition.
            let mut params = Vec::new();
            if !self.eat_sym(")") {
                loop {
                    let p_pos = self.here();
                    let p_ty = self
                        .parse_type()?
                        .ok_or_else(|| self.error("expected a parameter type"))?;
                    if p_ty == Type::Void {
                        return Err(self.error("parameters cannot be void"));
                    }
                    let p_name = self.expect_ident()?;
                    params.push(Param {
                        name: p_name,
                        ty: p_ty,
                        pos: p_pos,
                    });
                    if self.eat_sym(")") {
                        break;
                    }
                    self.expect_sym(",")?;
                }
            }
            let body = self.parse_block()?;
            program.functions.push(Function {
                name,
                params,
                ret: ty,
                body,
                pos,
            });
        } else {
            // Global variable.
            if ty == Type::Void {
                return Err(self.error("globals cannot be void"));
            }
            let array_len = if self.eat_sym("[") {
                let len = match self.bump() {
                    Some(Tok::Int(v)) if v > 0 => v as usize,
                    _ => return Err(self.error("expected a positive array length")),
                };
                self.expect_sym("]")?;
                Some(len)
            } else {
                None
            };
            let init = if self.eat_sym("=") {
                self.parse_global_init()?
            } else {
                Vec::new()
            };
            if let Some(len) = array_len {
                if init.len() > len {
                    return Err(self.error("too many initializers for array"));
                }
            } else if init.len() > 1 {
                return Err(self.error("scalar initialized with a list"));
            }
            self.expect_sym(";")?;
            program.globals.push(Global {
                name,
                ty,
                array_len,
                init,
                pos,
            });
        }
        Ok(())
    }

    fn parse_global_init(&mut self) -> Result<Vec<i64>, ParseError> {
        if self.eat_sym("{") {
            let mut values = Vec::new();
            if !self.eat_sym("}") {
                loop {
                    values.push(self.parse_const_int()?);
                    if self.eat_sym("}") {
                        break;
                    }
                    self.expect_sym(",")?;
                }
            }
            Ok(values)
        } else {
            Ok(vec![self.parse_const_int()?])
        }
    }

    fn parse_const_int(&mut self) -> Result<i64, ParseError> {
        let neg = self.eat_sym("-");
        match self.bump() {
            Some(Tok::Int(v)) => Ok(if neg { -v } else { v }),
            Some(Tok::Kw("true")) if !neg => Ok(1),
            Some(Tok::Kw("false")) if !neg => Ok(0),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected a constant initializer"))
            }
        }
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_sym("{")?;
        let mut stmts = Vec::new();
        while !self.eat_sym("}") {
            if self.at_end() {
                return Err(self.error("unexpected end of input inside a block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.here();
        // Local declaration.
        if matches!(self.peek(), Some(Tok::Kw("int")) | Some(Tok::Kw("bool"))) {
            let ty = self.parse_type()?.expect("type token just peeked");
            let name = self.expect_ident()?;
            self.expect_sym("=")?;
            let init = self.parse_expr()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Let {
                name,
                ty,
                init,
                pos,
            });
        }
        if self.eat_kw("if") {
            self.expect_sym("(")?;
            let cond = self.parse_expr()?;
            self.expect_sym(")")?;
            let then_branch = self.parse_block()?;
            let else_branch = if self.eat_kw("else") {
                if matches!(self.peek(), Some(Tok::Kw("if"))) {
                    // `else if` chains as a single-statement else branch.
                    vec![self.parse_stmt()?]
                } else {
                    self.parse_block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
                pos,
            });
        }
        if self.eat_kw("while") {
            self.expect_sym("(")?;
            let cond = self.parse_expr()?;
            self.expect_sym(")")?;
            let body = self.parse_block()?;
            return Ok(Stmt::While { cond, body, pos });
        }
        if self.eat_kw("return") {
            let value = if self.eat_sym(";") {
                None
            } else {
                let e = self.parse_expr()?;
                self.expect_sym(";")?;
                Some(e)
            };
            return Ok(Stmt::Return { value, pos });
        }
        if self.eat_kw("break") {
            self.expect_sym(";")?;
            return Ok(Stmt::Break { pos });
        }
        if self.eat_kw("continue") {
            self.expect_sym(";")?;
            return Ok(Stmt::Continue { pos });
        }
        // Expression or assignment.
        let expr = self.parse_expr()?;
        if self.eat_sym("=") {
            let target = Self::expr_to_lvalue(expr)
                .ok_or_else(|| self.error("left side of `=` is not assignable"))?;
            let value = self.parse_expr()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Assign { target, value, pos });
        }
        self.expect_sym(";")?;
        Ok(Stmt::Expr { expr, pos })
    }

    fn expr_to_lvalue(expr: Expr) -> Option<LValue> {
        match expr {
            Expr::Var(name, _) => Some(LValue::Var(name)),
            Expr::Index(name, idx, _) => Some(LValue::Index(name, idx)),
            Expr::Deref(addr, _) => Some(LValue::Deref(addr)),
            _ => None,
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_binary(0)
    }

    /// Binary-operator levels, loosest first.
    fn level_ops(level: usize) -> &'static [(&'static str, BinOp)] {
        const LEVELS: &[&[(&str, BinOp)]] = &[
            &[("||", BinOp::Or)],
            &[("&&", BinOp::And)],
            &[("|", BinOp::BitOr)],
            &[("^", BinOp::BitXor)],
            &[("&", BinOp::BitAnd)],
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            &[("<<", BinOp::Shl), (">>", BinOp::Shr)],
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Rem)],
        ];
        LEVELS.get(level).copied().unwrap_or(&[])
    }

    fn parse_binary(&mut self, level: usize) -> Result<Expr, ParseError> {
        let ops = Self::level_ops(level);
        if ops.is_empty() {
            return self.parse_unary();
        }
        let mut lhs = self.parse_binary(level + 1)?;
        loop {
            let matched = match self.peek() {
                Some(Tok::Sym(s)) => ops.iter().find(|(sym, _)| sym == s).map(|&(_, op)| op),
                _ => None,
            };
            match matched {
                Some(op) => {
                    let pos = self.here();
                    self.pos += 1;
                    let rhs = self.parse_binary(level + 1)?;
                    lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), pos);
                }
                None => return Ok(lhs),
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.here();
        if self.eat_sym("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.parse_unary()?), pos));
        }
        if self.eat_sym("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.parse_unary()?), pos));
        }
        if self.eat_sym("~") {
            return Ok(Expr::Unary(
                UnOp::BitNot,
                Box::new(self.parse_unary()?),
                pos,
            ));
        }
        if self.eat_sym("*") {
            return Ok(Expr::Deref(Box::new(self.parse_unary()?), pos));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::IntLit(v, pos)),
            Some(Tok::Kw("true")) => Ok(Expr::BoolLit(true, pos)),
            Some(Tok::Kw("false")) => Ok(Expr::BoolLit(false, pos)),
            Some(Tok::Ident(name)) => {
                if self.eat_sym("(") {
                    let mut args = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat_sym(")") {
                                break;
                            }
                            self.expect_sym(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args, pos))
                } else if self.eat_sym("[") {
                    let idx = self.parse_expr()?;
                    self.expect_sym("]")?;
                    Ok(Expr::Index(name, Box::new(idx), pos))
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            Some(Tok::Sym("(")) => {
                let inner = self.parse_expr()?;
                self.expect_sym(")")?;
                Ok(inner)
            }
            Some(t) => {
                self.pos -= 1;
                Err(self.error(format!("unexpected token `{t}` in expression")))
            }
            None => Err(self.error("unexpected end of input in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals_scalars_and_arrays() {
        let p = parse("int a = 5; bool f = true; int tab[4] = {1,2,3}; int z;").unwrap();
        assert_eq!(p.globals.len(), 4);
        assert_eq!(p.globals[0].init, vec![5]);
        assert_eq!(p.globals[1].init, vec![1]);
        assert_eq!(p.globals[2].array_len, Some(4));
        assert_eq!(p.globals[2].init, vec![1, 2, 3]);
        assert!(p.globals[3].init.is_empty());
    }

    #[test]
    fn parses_function_with_params_and_control_flow() {
        let p = parse(
            r#"
            int max(int a, int b) {
                if (a > b) { return a; } else { return b; }
            }
            void count(int n) {
                int i = 0;
                while (i < n) {
                    i = i + 1;
                    if (i == 3) { continue; }
                    if (i == 5) { break; }
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[0].params.len(), 2);
        assert_eq!(p.functions[0].ret, Type::Int);
    }

    #[test]
    fn else_if_chains() {
        let p = parse(
            "int f(int x) { if (x == 1) { return 1; } else if (x == 2) { return 2; } else { return 0; } }",
        )
        .unwrap();
        match &p.functions[0].body[0] {
            Stmt::If { else_branch, .. } => {
                assert_eq!(else_branch.len(), 1);
                assert!(matches!(else_branch[0], Stmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn precedence_binds_mul_over_add_over_cmp() {
        let p = parse("int f() { return 1 + 2 * 3 < 4 << 1; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return {
                value: Some(Expr::Binary(BinOp::Lt, ..)),
                ..
            } => {}
            other => panic!("expected `<` at top, got {other:?}"),
        }
    }

    #[test]
    fn deref_expressions_and_assignment() {
        let p = parse("void f() { *(0x8000) = *(0x8004) + 1; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Assign {
                target: LValue::Deref(_),
                ..
            } => {}
            other => panic!("expected deref assign, got {other:?}"),
        }
    }

    #[test]
    fn array_indexing_and_calls() {
        let p = parse("int g() { return tab[idx(1, 2) + 1]; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return {
                value: Some(Expr::Index(name, ..)),
                ..
            } => assert_eq!(name, "tab"),
            other => panic!("expected index, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_assignment_target() {
        let e = parse("void f() { 1 + 2 = 3; }").unwrap_err();
        assert!(e.to_string().contains("not assignable"));
    }

    #[test]
    fn rejects_void_global_and_void_param() {
        assert!(parse("void g;").is_err());
        assert!(parse("int f(void x) { return 0; }").is_err());
    }

    #[test]
    fn error_positions_point_at_problem() {
        let e = parse("int f() {\n  return ;;\n}").unwrap_err();
        match e {
            ParseError::Syntax { pos, .. } => assert_eq!(pos.line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn logical_operators_parse_with_correct_precedence() {
        let p = parse("bool f() { return a && b || !c; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return {
                value: Some(Expr::Binary(BinOp::Or, ..)),
                ..
            } => {}
            other => panic!("expected `||` at top, got {other:?}"),
        }
    }
}
