//! Type checking and lowering from the surface AST to [`crate::ir`].
//!
//! Besides ordinary C-style checks, the lowering enforces the IR's
//! call-placement invariant: nested calls are hoisted into fresh
//! temporaries *before* the statement that uses them. To keep semantics
//! honest, calls are therefore rejected in positions where hoisting would
//! change behaviour: inside `&&`/`||` operands (short-circuit) and inside
//! `while` conditions (re-evaluation).

use std::collections::HashMap;
use std::fmt;

use crate::ast::{BinOp, Expr, Function, LValue, Pos, Program, Stmt, Type, UnOp};
use crate::ir::{
    FuncId, GlobalId, IrExpr, IrFunction, IrGlobal, IrLocal, IrProgram, IrStmt, IrType, LocalId,
    Place, SeqId, StmtId,
};

/// A type-checking or lowering error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeError {
    /// Source position.
    pub pos: Pos,
    /// Description.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for TypeError {}

fn err<T>(pos: Pos, message: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError {
        pos,
        message: message.into(),
    })
}

fn to_ir_type(ty: Type, pos: Pos) -> Result<IrType, TypeError> {
    match ty {
        Type::Int => Ok(IrType::Int),
        Type::Bool => Ok(IrType::Bool),
        Type::Void => err(pos, "void is not a value type"),
    }
}

/// Signature info collected in a pre-pass.
struct FuncSig {
    id: FuncId,
    params: Vec<IrType>,
    ret: Option<IrType>,
}

/// Global info collected in a pre-pass.
#[derive(Clone, Copy)]
struct GlobalSig {
    id: GlobalId,
    ty: IrType,
    is_array: bool,
}

/// Type-checks and lowers a parsed program.
///
/// # Errors
///
/// Returns the first [`TypeError`] found.
///
/// # Examples
///
/// ```
/// use minic::{lower, parse};
///
/// let program = parse("int x = 1; int main() { x = x + 1; return x; }")?;
/// let ir = lower(&program)?;
/// assert!(ir.main.is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lower(program: &Program) -> Result<IrProgram, TypeError> {
    // Pre-pass: global and function tables.
    let mut globals = Vec::new();
    let mut global_sigs: HashMap<String, GlobalSig> = HashMap::new();
    for g in &program.globals {
        if global_sigs.contains_key(&g.name) {
            return err(g.pos, format!("duplicate global `{}`", g.name));
        }
        let ty = to_ir_type(g.ty, g.pos)?;
        let len = g.array_len.unwrap_or(1);
        let mut init: Vec<i32> = g.init.iter().map(|&v| v as i32).collect();
        for (&given, pos) in g.init.iter().zip(std::iter::repeat(g.pos)) {
            if given > u32::MAX as i64 || given < i32::MIN as i64 {
                return err(pos, format!("initializer {given} out of 32-bit range"));
            }
        }
        init.resize(len, 0);
        global_sigs.insert(
            g.name.clone(),
            GlobalSig {
                id: GlobalId(globals.len() as u32),
                ty,
                is_array: g.array_len.is_some(),
            },
        );
        globals.push(IrGlobal {
            name: g.name.clone(),
            ty,
            len,
            init,
        });
    }

    let mut func_sigs: HashMap<String, FuncSig> = HashMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        if func_sigs.contains_key(&f.name) {
            return err(f.pos, format!("duplicate function `{}`", f.name));
        }
        if global_sigs.contains_key(&f.name) {
            return err(
                f.pos,
                format!("`{}` is both a global and a function", f.name),
            );
        }
        let params = f
            .params
            .iter()
            .map(|p| to_ir_type(p.ty, p.pos))
            .collect::<Result<Vec<_>, _>>()?;
        let ret = match f.ret {
            Type::Void => None,
            other => Some(to_ir_type(other, f.pos)?),
        };
        func_sigs.insert(
            f.name.clone(),
            FuncSig {
                id: FuncId(i as u32),
                params,
                ret,
            },
        );
    }

    let mut functions = Vec::new();
    for f in &program.functions {
        functions.push(lower_function(f, &global_sigs, &func_sigs)?);
    }

    let main = func_sigs.get("main").map(|s| s.id);
    if let Some(main_id) = main {
        let sig = &func_sigs["main"];
        if !sig.params.is_empty() {
            return err(
                program.functions[main_id.0 as usize].pos,
                "main must take no parameters",
            );
        }
    }

    Ok(IrProgram {
        globals,
        functions,
        main,
    })
}

struct FnLower<'a> {
    globals: &'a HashMap<String, GlobalSig>,
    funcs: &'a HashMap<String, FuncSig>,
    ret: Option<IrType>,
    locals: Vec<IrLocal>,
    scopes: Vec<HashMap<String, LocalId>>,
    stmts: Vec<IrStmt>,
    seqs: Vec<Vec<StmtId>>,
    loop_depth: usize,
    temp_counter: usize,
}

impl<'a> FnLower<'a> {
    fn push_stmt(&mut self, seq: &mut Vec<StmtId>, stmt: IrStmt) {
        let id = StmtId(self.stmts.len() as u32);
        self.stmts.push(stmt);
        seq.push(id);
    }

    fn finish_seq(&mut self, seq: Vec<StmtId>) -> SeqId {
        let id = SeqId(self.seqs.len() as u32);
        self.seqs.push(seq);
        id
    }

    fn lookup_local(&self, name: &str) -> Option<LocalId> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    fn declare_local(&mut self, name: &str, ty: IrType, pos: Pos) -> Result<LocalId, TypeError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.contains_key(name) {
            return err(pos, format!("`{name}` already declared in this scope"));
        }
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(IrLocal {
            name: name.to_owned(),
            ty,
        });
        scope.insert(name.to_owned(), id);
        Ok(id)
    }

    fn fresh_temp(&mut self, ty: IrType) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(IrLocal {
            name: format!("$t{}", self.temp_counter),
            ty,
        });
        self.temp_counter += 1;
        id
    }

    /// Lowers an expression, hoisting calls into `seq`. Returns the pure IR
    /// expression and its type. `calls_ok` is false inside short-circuit
    /// operands and loop conditions.
    fn lower_expr(
        &mut self,
        expr: &Expr,
        seq: &mut Vec<StmtId>,
        calls_ok: bool,
    ) -> Result<(IrExpr, IrType), TypeError> {
        match expr {
            Expr::IntLit(v, pos) => {
                if *v > u32::MAX as i64 || *v < i32::MIN as i64 {
                    return err(*pos, format!("literal {v} out of 32-bit range"));
                }
                Ok((IrExpr::Const(*v as i32), IrType::Int))
            }
            Expr::BoolLit(b, _) => Ok((IrExpr::Const(i32::from(*b)), IrType::Bool)),
            Expr::Var(name, pos) => {
                if let Some(id) = self.lookup_local(name) {
                    let ty = self.locals[id.0 as usize].ty;
                    return Ok((IrExpr::Local(id), ty));
                }
                match self.globals.get(name) {
                    Some(sig) if sig.is_array => {
                        err(*pos, format!("array `{name}` used as a scalar"))
                    }
                    Some(sig) => Ok((IrExpr::Global(sig.id), sig.ty)),
                    None => err(*pos, format!("unknown variable `{name}`")),
                }
            }
            Expr::Index(name, idx, pos) => {
                let sig = *self.globals.get(name).ok_or_else(|| TypeError {
                    pos: *pos,
                    message: format!("unknown array `{name}`"),
                })?;
                if !sig.is_array {
                    return err(*pos, format!("`{name}` is not an array"));
                }
                let (idx_ir, idx_ty) = self.lower_expr(idx, seq, calls_ok)?;
                if idx_ty != IrType::Int {
                    return err(idx.pos(), "array index must be int");
                }
                Ok((IrExpr::GlobalElem(sig.id, Box::new(idx_ir)), sig.ty))
            }
            Expr::Deref(addr, _) => {
                let (addr_ir, addr_ty) = self.lower_expr(addr, seq, calls_ok)?;
                if addr_ty != IrType::Int {
                    return err(addr.pos(), "memory address must be int");
                }
                Ok((IrExpr::MemRead(Box::new(addr_ir)), IrType::Int))
            }
            Expr::Call(name, args, pos) => {
                if !calls_ok {
                    return err(
                        *pos,
                        "calls are not allowed inside `&&`/`||` operands or loop conditions \
                         (hoisting would change evaluation); assign the result to a local first",
                    );
                }
                let ret = {
                    let sig = self.funcs.get(name).ok_or_else(|| TypeError {
                        pos: *pos,
                        message: format!("unknown function `{name}`"),
                    })?;
                    match sig.ret {
                        Some(t) => t,
                        None => {
                            return err(
                                *pos,
                                format!("void function `{name}` used in an expression"),
                            )
                        }
                    }
                };
                let tmp = self.fresh_temp(ret);
                self.lower_call_into(seq, Some(Place::Local(tmp)), name, args, *pos)?;
                Ok((IrExpr::Local(tmp), ret))
            }
            Expr::Unary(op, inner, pos) => {
                let (ir, ty) = self.lower_expr(inner, seq, calls_ok)?;
                let result_ty = match op {
                    UnOp::Neg | UnOp::BitNot => {
                        if ty != IrType::Int {
                            return err(*pos, format!("`{op:?}` requires an int operand"));
                        }
                        IrType::Int
                    }
                    UnOp::Not => {
                        if ty != IrType::Bool {
                            return err(*pos, "`!` requires a bool operand");
                        }
                        IrType::Bool
                    }
                };
                Ok((IrExpr::Unary(*op, Box::new(ir)), result_ty))
            }
            Expr::Binary(op, a, b, pos) => {
                let short_circuit = matches!(op, BinOp::And | BinOp::Or);
                let operand_calls_ok = calls_ok && !short_circuit;
                let (a_ir, a_ty) = self.lower_expr(a, seq, operand_calls_ok)?;
                let (b_ir, b_ty) = self.lower_expr(b, seq, operand_calls_ok)?;
                let result_ty = match op {
                    BinOp::Add
                    | BinOp::Sub
                    | BinOp::Mul
                    | BinOp::Div
                    | BinOp::Rem
                    | BinOp::BitAnd
                    | BinOp::BitOr
                    | BinOp::BitXor
                    | BinOp::Shl
                    | BinOp::Shr => {
                        if a_ty != IrType::Int || b_ty != IrType::Int {
                            return err(*pos, format!("`{op:?}` requires int operands"));
                        }
                        IrType::Int
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        if a_ty != IrType::Int || b_ty != IrType::Int {
                            return err(*pos, format!("`{op:?}` requires int operands"));
                        }
                        IrType::Bool
                    }
                    BinOp::Eq | BinOp::Ne => {
                        if a_ty != b_ty {
                            return err(*pos, "`==`/`!=` operands must have the same type");
                        }
                        IrType::Bool
                    }
                    BinOp::And | BinOp::Or => {
                        if a_ty != IrType::Bool || b_ty != IrType::Bool {
                            return err(*pos, format!("`{op:?}` requires bool operands"));
                        }
                        IrType::Bool
                    }
                };
                Ok((
                    IrExpr::Binary(*op, Box::new(a_ir), Box::new(b_ir)),
                    result_ty,
                ))
            }
        }
    }

    fn lower_place(
        &mut self,
        lv: &LValue,
        seq: &mut Vec<StmtId>,
        pos: Pos,
    ) -> Result<(Place, IrType), TypeError> {
        match lv {
            LValue::Var(name) => {
                if let Some(id) = self.lookup_local(name) {
                    let ty = self.locals[id.0 as usize].ty;
                    return Ok((Place::Local(id), ty));
                }
                match self.globals.get(name) {
                    Some(sig) if sig.is_array => {
                        err(pos, format!("array `{name}` cannot be assigned as a whole"))
                    }
                    Some(sig) => Ok((Place::Global(sig.id), sig.ty)),
                    None => err(pos, format!("unknown variable `{name}`")),
                }
            }
            LValue::Index(name, idx) => {
                let sig = *self.globals.get(name).ok_or_else(|| TypeError {
                    pos,
                    message: format!("unknown array `{name}`"),
                })?;
                if !sig.is_array {
                    return err(pos, format!("`{name}` is not an array"));
                }
                let (idx_ir, idx_ty) = self.lower_expr(idx, seq, true)?;
                if idx_ty != IrType::Int {
                    return err(idx.pos(), "array index must be int");
                }
                Ok((Place::GlobalElem(sig.id, idx_ir), sig.ty))
            }
            LValue::Deref(addr) => {
                let (addr_ir, addr_ty) = self.lower_expr(addr, seq, true)?;
                if addr_ty != IrType::Int {
                    return err(addr.pos(), "memory address must be int");
                }
                Ok((Place::Mem(addr_ir), IrType::Int))
            }
        }
    }

    fn lower_call_into(
        &mut self,
        seq: &mut Vec<StmtId>,
        dst: Option<Place>,
        name: &str,
        args: &[Expr],
        pos: Pos,
    ) -> Result<(), TypeError> {
        let (func_id, param_tys) = {
            let sig = self.funcs.get(name).ok_or_else(|| TypeError {
                pos,
                message: format!("unknown function `{name}`"),
            })?;
            (sig.id, sig.params.clone())
        };
        if args.len() != param_tys.len() {
            return err(
                pos,
                format!(
                    "`{name}` expects {} arguments, found {}",
                    param_tys.len(),
                    args.len()
                ),
            );
        }
        let mut arg_irs = Vec::with_capacity(args.len());
        for (arg, want) in args.iter().zip(&param_tys) {
            let (ir, ty) = self.lower_expr(arg, seq, true)?;
            if ty != *want {
                return err(
                    arg.pos(),
                    format!("argument type {ty} does not match {want}"),
                );
            }
            arg_irs.push(ir);
        }
        self.push_stmt(
            seq,
            IrStmt::Call {
                dst,
                func: func_id,
                args: arg_irs,
                pos,
            },
        );
        Ok(())
    }

    fn lower_block(&mut self, stmts: &[Stmt]) -> Result<SeqId, TypeError> {
        self.scopes.push(HashMap::new());
        let mut seq = Vec::new();
        for stmt in stmts {
            self.lower_stmt(stmt, &mut seq)?;
        }
        self.scopes.pop();
        Ok(self.finish_seq(seq))
    }

    fn lower_stmt(&mut self, stmt: &Stmt, seq: &mut Vec<StmtId>) -> Result<(), TypeError> {
        match stmt {
            Stmt::Let {
                name,
                ty,
                init,
                pos,
            } => {
                let want = to_ir_type(*ty, *pos)?;
                let (init_ir, init_ty) = self.lower_expr(init, seq, true)?;
                if init_ty != want {
                    return err(
                        *pos,
                        format!("initializer has type {init_ty}, expected {want}"),
                    );
                }
                let id = self.declare_local(name, want, *pos)?;
                self.push_stmt(
                    seq,
                    IrStmt::Assign {
                        target: Place::Local(id),
                        value: init_ir,
                        pos: *pos,
                    },
                );
                Ok(())
            }
            Stmt::Assign { target, value, pos } => {
                // A direct `x = f(..);` lowers to a single Call statement.
                if let Expr::Call(name, args, _) = value {
                    let mut pre = Vec::new();
                    let (place, place_ty) = self.lower_place(target, &mut pre, *pos)?;
                    let ret = self
                        .funcs
                        .get(name)
                        .ok_or_else(|| TypeError {
                            pos: *pos,
                            message: format!("unknown function `{name}`"),
                        })?
                        .ret;
                    if ret == Some(place_ty) {
                        seq.extend(pre);
                        return self.lower_call_into(seq, Some(place), name, args, *pos);
                    }
                    // Fall through for type mismatch reporting below.
                }
                let (value_ir, value_ty) = self.lower_expr(value, seq, true)?;
                let (place, place_ty) = self.lower_place(target, seq, *pos)?;
                if value_ty != place_ty {
                    return err(
                        *pos,
                        format!("cannot assign {value_ty} to a {place_ty} location"),
                    );
                }
                self.push_stmt(
                    seq,
                    IrStmt::Assign {
                        target: place,
                        value: value_ir,
                        pos: *pos,
                    },
                );
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                pos,
            } => {
                let (cond_ir, cond_ty) = self.lower_expr(cond, seq, true)?;
                if cond_ty != IrType::Bool {
                    return err(cond.pos(), "if condition must be bool");
                }
                let then_seq = self.lower_block(then_branch)?;
                let else_seq = self.lower_block(else_branch)?;
                self.push_stmt(
                    seq,
                    IrStmt::If {
                        cond: cond_ir,
                        then_seq,
                        else_seq,
                        pos: *pos,
                    },
                );
                Ok(())
            }
            Stmt::While { cond, body, pos } => {
                let mut probe = Vec::new();
                let (cond_ir, cond_ty) = self.lower_expr(cond, &mut probe, false)?;
                debug_assert!(probe.is_empty(), "calls rejected in loop conditions");
                if cond_ty != IrType::Bool {
                    return err(cond.pos(), "while condition must be bool");
                }
                self.loop_depth += 1;
                let body_seq = self.lower_block(body)?;
                self.loop_depth -= 1;
                self.push_stmt(
                    seq,
                    IrStmt::While {
                        cond: cond_ir,
                        body_seq,
                        pos: *pos,
                    },
                );
                Ok(())
            }
            Stmt::Return { value, pos } => {
                let lowered = match (value, self.ret) {
                    (None, None) => None,
                    (None, Some(t)) => {
                        return err(*pos, format!("function must return a {t} value"))
                    }
                    (Some(v), None) => return err(v.pos(), "void function cannot return a value"),
                    (Some(v), Some(want)) => {
                        let (ir, ty) = self.lower_expr(v, seq, true)?;
                        if ty != want {
                            return err(v.pos(), format!("returning {ty}, expected {want}"));
                        }
                        Some(ir)
                    }
                };
                self.push_stmt(
                    seq,
                    IrStmt::Return {
                        value: lowered,
                        pos: *pos,
                    },
                );
                Ok(())
            }
            Stmt::Expr { expr, pos } => match expr {
                Expr::Call(name, args, _) => self.lower_call_into(seq, None, name, args, *pos),
                _ => err(*pos, "expression statement must be a function call"),
            },
            Stmt::Break { pos } => {
                if self.loop_depth == 0 {
                    return err(*pos, "break outside of a loop");
                }
                self.push_stmt(seq, IrStmt::Break { pos: *pos });
                Ok(())
            }
            Stmt::Continue { pos } => {
                if self.loop_depth == 0 {
                    return err(*pos, "continue outside of a loop");
                }
                self.push_stmt(seq, IrStmt::Continue { pos: *pos });
                Ok(())
            }
        }
    }
}

fn lower_function(
    f: &Function,
    globals: &HashMap<String, GlobalSig>,
    funcs: &HashMap<String, FuncSig>,
) -> Result<IrFunction, TypeError> {
    let sig = &funcs[&f.name];
    let mut lowerer = FnLower {
        globals,
        funcs,
        ret: sig.ret,
        locals: Vec::new(),
        scopes: vec![HashMap::new()],
        stmts: Vec::new(),
        seqs: vec![Vec::new()], // reserve seq 0 for the body
        loop_depth: 0,
        temp_counter: 0,
    };
    for p in &f.params {
        let ty = to_ir_type(p.ty, p.pos)?;
        lowerer.declare_local(&p.name, ty, p.pos)?;
    }
    let mut body = Vec::new();
    lowerer.scopes.push(HashMap::new());
    for stmt in &f.body {
        lowerer.lower_stmt(stmt, &mut body)?;
    }
    lowerer.scopes.pop();
    lowerer.seqs[0] = body;
    Ok(IrFunction {
        name: f.name.clone(),
        param_count: f.params.len(),
        locals: lowerer.locals,
        ret: sig.ret,
        stmts: lowerer.stmts,
        seqs: lowerer.seqs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Result<IrProgram, TypeError> {
        lower(&parse(src).expect("parse"))
    }

    #[test]
    fn lowers_simple_program() {
        let ir = lower_src("int x = 3; int main() { x = x + 1; return x; }").unwrap();
        assert_eq!(ir.globals.len(), 1);
        assert_eq!(ir.globals[0].init, vec![3]);
        assert!(ir.main.is_some());
        let main = ir.func(ir.main.unwrap());
        assert_eq!(main.seq(IrFunction::BODY).len(), 2);
    }

    #[test]
    fn hoists_nested_calls_into_temps() {
        let ir =
            lower_src("int f(int a) { return a; } int main() { return f(1) + f(2); }").unwrap();
        let main = ir.func(ir.func_by_name("main").unwrap());
        // Two hoisted Call statements plus the Return.
        let body = main.seq(IrFunction::BODY);
        assert_eq!(body.len(), 3);
        assert!(matches!(main.stmt(body[0]), IrStmt::Call { .. }));
        assert!(matches!(main.stmt(body[1]), IrStmt::Call { .. }));
        assert!(matches!(main.stmt(body[2]), IrStmt::Return { .. }));
        assert_eq!(main.locals.len(), 2); // two temporaries
    }

    #[test]
    fn direct_call_assignment_does_not_create_temp() {
        let ir = lower_src("int g = 0; int f() { return 1; } int main() { g = f(); return g; }")
            .unwrap();
        let main = ir.func(ir.func_by_name("main").unwrap());
        assert_eq!(main.locals.len(), 0);
    }

    #[test]
    fn rejects_calls_in_short_circuit_operands() {
        let e =
            lower_src("bool f() { return true; } int main() { if (f() && true) { } return 0; }")
                .unwrap_err();
        assert!(e.message.contains("short-circuit") || e.message.contains("&&"));
    }

    #[test]
    fn rejects_calls_in_while_condition() {
        let e = lower_src("bool f() { return false; } int main() { while (f()) { } return 0; }")
            .unwrap_err();
        assert!(e.message.contains("loop conditions") || e.message.contains("calls"));
    }

    #[test]
    fn type_errors_are_caught() {
        assert!(lower_src("int main() { bool b = 1; return 0; }").is_err());
        assert!(lower_src("int main() { int x = true; return 0; }").is_err());
        assert!(lower_src("int main() { if (1) { } return 0; }").is_err());
        assert!(lower_src("int main() { return true; }").is_err());
        assert!(lower_src("void f() { return 1; }").is_err());
        assert!(lower_src("int main() { return 1 + true; }").is_err());
    }

    #[test]
    fn scope_rules() {
        // Shadowing in an inner block is fine; reuse in same scope is not.
        assert!(
            lower_src("int main() { int x = 1; if (x == 1) { int x = 2; x = x; } return x; }")
                .is_ok()
        );
        assert!(lower_src("int main() { int x = 1; int x = 2; return x; }").is_err());
        // Out-of-scope use is rejected.
        assert!(lower_src("int main() { if (true) { int y = 1; y = y; } return y; }").is_err());
    }

    #[test]
    fn arrays_are_not_scalars_and_vice_versa() {
        assert!(lower_src("int a[4]; int main() { return a; }").is_err());
        assert!(lower_src("int s = 0; int main() { return s[0]; }").is_err());
        assert!(lower_src("int a[4]; int main() { a = 1; return 0; }").is_err());
        assert!(lower_src("int a[4]; int main() { a[1] = 1; return a[1]; }").is_ok());
    }

    #[test]
    fn break_continue_only_in_loops() {
        assert!(lower_src("int main() { break; return 0; }").is_err());
        assert!(lower_src("int main() { continue; return 0; }").is_err());
        assert!(lower_src("int main() { while (true) { break; } return 0; }").is_ok());
    }

    #[test]
    fn call_arity_and_types_checked() {
        assert!(lower_src("void f(int a) { } int main() { f(); return 0; }").is_err());
        assert!(lower_src("void f(int a) { } int main() { f(true); return 0; }").is_err());
        assert!(lower_src("void f(int a) { } int main() { f(1); return 0; }").is_ok());
    }

    #[test]
    fn void_call_in_expression_rejected() {
        let e = lower_src("void f() { } int main() { return f(); }").unwrap_err();
        assert!(e.message.contains("void function"));
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(lower_src("int x = 0; int x = 1;").is_err());
        assert!(lower_src("void f() { } void f() { }").is_err());
        assert!(lower_src("int f = 0; void f() { }").is_err());
    }

    #[test]
    fn main_with_params_rejected() {
        assert!(lower_src("int main(int argc) { return 0; }").is_err());
    }

    #[test]
    fn deref_lowering() {
        let ir = lower_src("int main() { *(0x8000) = *(0x8000) + 1; return 0; }").unwrap();
        let main = ir.func(ir.main.unwrap());
        match main.stmt(main.seq(IrFunction::BODY)[0]) {
            IrStmt::Assign {
                target: Place::Mem(_),
                value,
                ..
            } => assert!(value.reads_memory()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn global_init_padding() {
        let ir = lower_src("int tab[5] = {1, 2};").unwrap();
        assert_eq!(ir.globals[0].init, vec![1, 2, 0, 0, 0]);
    }
}
