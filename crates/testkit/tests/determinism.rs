//! End-to-end determinism: the same `TESTKIT_SEED` must yield
//! byte-identical generated stimuli across two independent runs — the
//! reproduction guarantee every randomized experiment in this workspace
//! relies on.
//!
//! This lives in its own integration-test binary because it sets the
//! `TESTKIT_SEED` process environment variable.

use std::cell::RefCell;

use testkit::{Checker, Rng, Source};

/// Runs a full property-check pass and returns every byte it generated.
fn generated_byte_stream() -> Vec<u8> {
    let bytes: RefCell<Vec<u8>> = RefCell::new(Vec::new());
    Checker::new("determinism_probe").cases(64).run(
        |src| {
            let len = src.usize_in(0, 48);
            (0..len)
                .map(|_| src.u64_in(0, 255) as u8)
                .collect::<Vec<u8>>()
        },
        |v| bytes.borrow_mut().extend_from_slice(v),
    );
    bytes.into_inner()
}

#[test]
fn same_testkit_seed_yields_byte_identical_stimuli() {
    std::env::set_var("TESTKIT_SEED", "20080310");
    let first = generated_byte_stream();
    let second = generated_byte_stream();
    assert!(!first.is_empty(), "the probe must generate data");
    assert_eq!(first, second, "same TESTKIT_SEED ⇒ byte-identical stimuli");

    // A different seed must produce a different stream (sanity: the env
    // seed is actually reaching the generator).
    std::env::set_var("TESTKIT_SEED", "1");
    let third = generated_byte_stream();
    assert_ne!(first, third, "different TESTKIT_SEED ⇒ different stimuli");
    std::env::remove_var("TESTKIT_SEED");
}

#[test]
fn raw_rng_streams_are_reproducible() {
    let a: Vec<u64> = {
        let mut r = Rng::new(0xABCD);
        (0..256).map(|_| r.next_u64()).collect()
    };
    let b: Vec<u64> = {
        let mut r = Rng::new(0xABCD);
        (0..256).map(|_| r.next_u64()).collect()
    };
    assert_eq!(a, b);
}

#[test]
fn tape_replay_reproduces_fresh_draws_exactly() {
    let mut fresh = Source::fresh(Rng::new(99));
    let drawn: Vec<u64> = (0..64).map(|i| fresh.draw(i + 3)).collect();
    let tape = fresh.into_tape();
    let mut replay = Source::replay(&tape);
    let replayed: Vec<u64> = (0..64).map(|i| replay.draw(i + 3)).collect();
    assert_eq!(drawn, replayed);
}
