//! The choice tape behind integrated shrinking.
//!
//! Generators draw structured values through a [`Source`]. In fresh mode
//! every draw comes from the PRNG and is recorded on a *tape*; in replay
//! mode draws are read back from a (possibly mutated) tape. Shrinking never
//! touches generated values directly — it simplifies the tape and re-runs
//! the generator, so *any* generator, however complex, shrinks for free and
//! every shrunk value is by construction one the generator could produce
//! (the Hypothesis "internal shrinking" discipline).

use crate::rng::Rng;

/// A recorded sequence of draw results. Element `i` is the value returned
/// by the `i`-th call to [`Source::draw`], always in `0..bound` for that
/// call's bound — so `0` is the canonical "simplest" choice.
pub type Tape = Vec<u64>;

enum Mode<'a> {
    /// Draw fresh values from the PRNG and record them.
    Fresh(Rng),
    /// Replay a tape; out-of-range entries are reduced, an exhausted tape
    /// yields zeros (the simplest continuation).
    Replay(&'a [u64], usize),
}

/// The draw interface generators are written against.
pub struct Source<'a> {
    mode: Mode<'a>,
    record: Tape,
}

impl<'a> Source<'a> {
    /// A fresh source drawing from `rng`.
    pub fn fresh(rng: Rng) -> Source<'static> {
        Source {
            mode: Mode::Fresh(rng),
            record: Tape::new(),
        }
    }

    /// A replaying source reading from `tape`.
    pub fn replay(tape: &'a [u64]) -> Source<'a> {
        Source {
            mode: Mode::Replay(tape, 0),
            record: Tape::new(),
        }
    }

    /// Draws a value in `0..n`, recording it on the tape.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn draw(&mut self, n: u64) -> u64 {
        assert!(n > 0, "draw bound must be positive");
        let v = match &mut self.mode {
            Mode::Fresh(rng) => rng.below(n),
            Mode::Replay(tape, pos) => {
                let raw = tape.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                raw % n
            }
        };
        self.record.push(v);
        v
    }

    /// The tape of every draw made so far (normalized values, replayable).
    pub fn tape(&self) -> &Tape {
        &self.record
    }

    /// Consumes the source, returning its tape.
    pub fn into_tape(self) -> Tape {
        self.record
    }

    // ---- convenience draws, mirroring `Rng` but tape-recorded ----

    /// Draws an integer in `lo..=hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        let off = if span == 0 {
            // Full u64 span: compose from two draws.
            (self.draw(1 << 32) << 32) | self.draw(1 << 32)
        } else {
            self.draw(span)
        };
        (lo as i128 + off as i128) as i64
    }

    /// Draws an integer in `lo..=hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return (self.draw(1 << 32) << 32) | self.draw(1 << 32);
        }
        lo + self.draw(span + 1)
    }

    /// Draws an `i32` in `lo..=hi`.
    pub fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        self.i64_in(lo as i64, hi as i64) as i32
    }

    /// Draws a `u32` in `lo..=hi`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    /// Draws a `usize` in `lo..=hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Draws a boolean. `false` is the simpler choice.
    pub fn bool(&mut self) -> bool {
        self.draw(2) == 1
    }

    /// Returns `true` with probability `percent`/100. `false` shrinks first.
    pub fn chance(&mut self, percent: u32) -> bool {
        self.draw(100) < u64::from(percent.min(100))
    }

    /// Draws one element of a non-empty slice. Earlier elements are
    /// considered simpler, so put the minimal case first.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        items[self.draw(items.len() as u64) as usize]
    }

    /// Draws an index according to integer weights. Shrinks toward the
    /// first arm, so order arms simplest-first.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty or sum to zero.
    pub fn weighted_idx(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "weighted choice needs a positive total weight");
        let mut point = self.draw(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if point < w {
                return i;
            }
            point -= w;
        }
        unreachable!("point always falls inside the total weight")
    }

    /// Draws one element according to integer weights.
    pub fn weighted<T: Copy>(&mut self, items: &[(T, u32)]) -> T {
        let weights: Vec<u32> = items.iter().map(|&(_, w)| w).collect();
        items[self.weighted_idx(&weights)].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_draws_are_recorded_and_replayable() {
        let mut src = Source::fresh(Rng::new(77));
        let a = src.i64_in(-10, 10);
        let b = src.usize_in(0, 5);
        let c = src.bool();
        let tape = src.into_tape();

        let mut replay = Source::replay(&tape);
        assert_eq!(replay.i64_in(-10, 10), a);
        assert_eq!(replay.usize_in(0, 5), b);
        assert_eq!(replay.bool(), c);
    }

    #[test]
    fn exhausted_tape_yields_simplest_values() {
        let mut src = Source::replay(&[]);
        assert_eq!(src.i64_in(-10, 10), -10);
        assert_eq!(src.u64_in(3, 9), 3);
        assert!(!src.bool());
        assert_eq!(src.pick(&['x', 'y', 'z']), 'x');
    }

    #[test]
    fn out_of_range_tape_entries_are_reduced() {
        let tape = vec![u64::MAX, 1000];
        let mut src = Source::replay(&tape);
        let v = src.draw(7);
        assert!(v < 7);
        let w = src.draw(3);
        assert!(w < 3);
    }
}
