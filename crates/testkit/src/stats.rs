//! Statistics helpers for testing hypothesis-testing code.
//!
//! The statistical-model-checking crate implements estimators (SPRT,
//! Chernoff fixed-sample) whose *error probabilities* are the contract
//! under test. Proving such a contract needs a Bernoulli source with a
//! **known** success probability — exactly what a seeded [`Bernoulli`]
//! stream provides: feed the estimator synthetic outcomes of known `p`
//! across a seed sweep and count how often it decides wrongly.

use crate::rng::Rng;

/// A seeded Bernoulli stream with known success probability.
///
/// Deterministic in `(seed, p)`: the same stream on every platform, so
/// decision counts over a fixed seed sweep are exact regression values,
/// not flaky statistics.
///
/// # Examples
///
/// ```
/// use testkit::Bernoulli;
///
/// let outcomes: Vec<bool> = Bernoulli::new(7, 0.25).take(1000).collect();
/// let successes = outcomes.iter().filter(|&&b| b).count();
/// assert!((200..300).contains(&successes), "{successes}");
/// ```
#[derive(Clone, Debug)]
pub struct Bernoulli {
    rng: Rng,
    p: f64,
}

impl Bernoulli {
    /// Creates a stream producing `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(seed: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        Bernoulli {
            rng: Rng::new(seed),
            p,
        }
    }

    /// The stream's success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws the next outcome.
    pub fn draw(&mut self) -> bool {
        self.rng.bernoulli(self.p)
    }
}

impl Iterator for Bernoulli {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        Some(self.draw())
    }
}

/// A seeded `bernoulli(p)` stream — shorthand for [`Bernoulli::new`]
/// (seeded with [`crate::DEFAULT_SEED`]) when the caller only varies `p`.
pub fn bernoulli(p: f64) -> Bernoulli {
    Bernoulli::new(crate::DEFAULT_SEED, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_in_seed_and_p() {
        let a: Vec<bool> = Bernoulli::new(42, 0.3).take(200).collect();
        let b: Vec<bool> = Bernoulli::new(42, 0.3).take(200).collect();
        assert_eq!(a, b);
        let c: Vec<bool> = Bernoulli::new(43, 0.3).take(200).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn extremes_are_exact() {
        assert!(Bernoulli::new(1, 1.0).take(500).all(|b| b));
        assert!(!Bernoulli::new(1, 0.0).take(500).any(|b| b));
    }

    #[test]
    fn empirical_rate_tracks_p() {
        for (seed, p) in [(1u64, 0.1), (2, 0.5), (3, 0.9)] {
            let n = 20_000;
            let hits = Bernoulli::new(seed, p).take(n).filter(|&b| b).count();
            let rate = hits as f64 / n as f64;
            assert!((rate - p).abs() < 0.02, "p={p} rate={rate}");
        }
    }

    #[test]
    fn stream_position_is_independent_of_p() {
        // Both streams consume one draw per outcome, so a stream used for
        // auxiliary draws after k outcomes stays aligned regardless of p.
        let mut a = Bernoulli::new(9, 0.2);
        let mut b = Bernoulli::new(9, 0.8);
        for _ in 0..100 {
            a.draw();
            b.draw();
        }
        assert_eq!(a.rng.next_u64(), b.rng.next_u64());
    }
}
