//! # testkit — the self-contained verification test substrate
//!
//! Everything the workspace's randomized and differential tests need,
//! with **zero external dependencies** — the whole repository builds and
//! tests with `CARGO_NET_OFFLINE=true`:
//!
//! * [`Rng`] — a seeded SplitMix64-seeded xoshiro256** PRNG (replaces
//!   `rand` for stimulus generation and benches),
//! * [`Source`] / [`Gen`] — tape-recorded draws with *integrated
//!   shrinking*: failures shrink by simplifying the recorded choice tape
//!   and re-running the generator, so every shrunk counterexample is one
//!   the generator could have produced (replaces `proptest`),
//! * [`check`] / [`Checker`] — the property runner with failure-tape
//!   persistence to `target/testkit-regressions/` and environment scaling
//!   (`TESTKIT_CASES`, `TESTKIT_SEED`),
//! * [`DiffHarness`](diff::DiffHarness) — differential oracles: one input
//!   through N substrates, agreement demanded, scripts shrunk on
//!   divergence,
//! * [`Bernoulli`] — seeded outcome streams of *known* success
//!   probability, the oracle for hypothesis-testing code (the SMC
//!   estimators' α/β error budgets are proved against them).
//!
//! ## Why in-tree?
//!
//! The paper's central claim is that simulation-based monitoring delivers
//! trustworthy verdicts where model checkers abort — which makes
//! disciplined randomized + differential testing *the* correctness tool of
//! this reproduction. That tool must not depend on registry access: the
//! build environments this repo targets are offline.
//!
//! ## Example
//!
//! ```
//! use testkit::{check, Checker};
//!
//! Checker::new("reverse_is_involutive").cases(50).run(
//!     |src| {
//!         let len = src.usize_in(0, 8);
//!         (0..len).map(|_| src.i64_in(-9, 9)).collect::<Vec<i64>>()
//!     },
//!     |v| {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         assert_eq!(&w, v);
//!     },
//! );
//! ```

#![warn(missing_docs)]

pub mod diff;
pub mod gen;
mod rng;
mod runner;
mod source;
pub mod stats;

pub use diff::{DiffHarness, Divergence};
pub use gen::Gen;
pub use rng::{mix_seed, splitmix64, Rng};
pub use runner::{assume, check, regression_dir, Checker, DEFAULT_CASES, DEFAULT_SEED};
pub use source::{Source, Tape};
pub use stats::{bernoulli, Bernoulli};
