//! The property-test runner: case generation, integrated shrinking, and
//! failure-tape persistence.
//!
//! ```no_run
//! use testkit::{check, gen};
//!
//! check("sum_is_commutative", |src| (src.i64_in(-99, 99), src.i64_in(-99, 99)),
//!     |&(a, b)| assert_eq!(a + b, b + a));
//! ```
//!
//! * `TESTKIT_CASES=<n>` overrides the case count of every property (deep
//!   nightly runs use large values, quick local runs small ones).
//! * `TESTKIT_SEED=<n>` re-seeds the whole run for reproduction.
//! * Failing tapes are persisted to `target/testkit-regressions/<name>.tape`
//!   and replayed automatically at the start of the next run.

use std::any::Any;
use std::cell::Cell;
use std::fmt::Debug;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Once;

use crate::rng::{mix_seed, Rng};
use crate::source::{Source, Tape};

/// Default base seed (stable across runs so CI is reproducible).
pub const DEFAULT_SEED: u64 = 0x5EED_2008_0310;

/// Default number of cases per property.
pub const DEFAULT_CASES: u64 = 100;

/// Marker payload for discarded cases (see [`assume`]).
struct Discard;

/// Discards the current case when `cond` is false, like proptest's
/// `prop_assume!`: the case counts as neither pass nor failure.
pub fn assume(cond: bool) {
    if !cond {
        panic::panic_any(Discard);
    }
}

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Installs (once) a panic hook that suppresses messages while the runner
/// probes candidate cases; real failures still print normally.
fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

enum Outcome {
    Pass,
    Discarded,
    Fail,
}

fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Directory regression tapes are persisted to.
pub fn regression_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    target.join("testkit-regressions")
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn regression_path(name: &str) -> PathBuf {
    regression_dir().join(format!("{}.tape", sanitize(name)))
}

fn load_regressions(name: &str) -> Vec<Tape> {
    let Ok(text) = fs::read_to_string(regression_path(name)) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|l| {
            l.split(',')
                .filter_map(|t| t.trim().parse::<u64>().ok())
                .collect()
        })
        .collect()
}

fn persist_regression(name: &str, tape: &Tape) -> Option<PathBuf> {
    let path = regression_path(name);
    fs::create_dir_all(regression_dir()).ok()?;
    let mut existing = load_regressions(name);
    if existing.contains(tape) {
        return Some(path);
    }
    existing.push(tape.clone());
    let mut text = String::from(
        "# testkit regression tapes — replayed automatically at the start of\n\
         # every run of this property; delete this file to forget them.\n",
    );
    for t in &existing {
        let line: Vec<String> = t.iter().map(|v| v.to_string()).collect();
        text.push_str(&line.join(","));
        text.push('\n');
    }
    fs::write(&path, text).ok()?;
    Some(path)
}

/// Configuration of one property check.
#[derive(Clone, Debug)]
pub struct Checker {
    name: String,
    cases: u64,
    seed: u64,
    /// Budget of property re-runs the shrinker may spend.
    shrink_runs: u32,
}

impl Checker {
    /// A checker with defaults, honouring `TESTKIT_CASES` / `TESTKIT_SEED`.
    pub fn new(name: &str) -> Self {
        Checker {
            name: name.to_owned(),
            cases: env_u64("TESTKIT_CASES").unwrap_or(DEFAULT_CASES),
            seed: env_u64("TESTKIT_SEED").unwrap_or(DEFAULT_SEED),
            shrink_runs: 4000,
        }
    }

    /// Sets the case count unless `TESTKIT_CASES` overrides it.
    pub fn cases(mut self, n: u64) -> Self {
        if env_u64("TESTKIT_CASES").is_none() {
            self.cases = n;
        }
        self
    }

    /// Sets the base seed unless `TESTKIT_SEED` overrides it.
    pub fn seed(mut self, seed: u64) -> Self {
        if env_u64("TESTKIT_SEED").is_none() {
            self.seed = seed;
        }
        self
    }

    /// Sets the shrinker's property-run budget.
    pub fn shrink_runs(mut self, n: u32) -> Self {
        self.shrink_runs = n;
        self
    }

    /// Runs the property over `cases` generated values; on failure, shrinks
    /// the choice tape, persists it, and panics with the minimal case.
    pub fn run<T: Debug>(&self, gen: impl Fn(&mut Source<'_>) -> T, prop: impl Fn(&T)) {
        install_quiet_hook();

        let run_tape = |tape: &[u64]| -> Outcome {
            let result = quiet_catch(|| {
                let mut src = Source::replay(tape);
                let value = gen(&mut src);
                prop(&value);
            });
            match result {
                Ok(()) => Outcome::Pass,
                Err(payload) if payload.is::<Discard>() => Outcome::Discarded,
                Err(_) => Outcome::Fail,
            }
        };

        // 1. Replay persisted regression tapes first.
        for tape in load_regressions(&self.name) {
            if let Outcome::Fail = run_tape(&tape) {
                self.report_failure(&gen, &prop, tape, "persisted regression", run_tape);
            }
        }

        // 2. Fresh cases.
        let mut executed = 0u64;
        let mut attempts = 0u64;
        let max_attempts = self.cases.saturating_mul(10).saturating_add(100);
        while executed < self.cases && attempts < max_attempts {
            let case_seed = mix_seed(self.seed, attempts);
            attempts += 1;
            let mut src = Source::fresh(Rng::new(case_seed));
            let outcome = quiet_catch(AssertUnwindSafe(|| {
                let value = gen(&mut src);
                prop(&value);
            }));
            match outcome {
                Ok(()) => executed += 1,
                Err(payload) if payload.is::<Discard>() => {}
                Err(_) => {
                    // The tape recorded up to the panic point replays the
                    // same draws (missing entries replay as zero).
                    let tape = src.into_tape();
                    let origin = format!(
                        "case {attempts} (seed {}, TESTKIT_SEED={})",
                        case_seed, self.seed
                    );
                    self.report_failure(&gen, &prop, tape, &origin, run_tape);
                }
            }
        }
        assert!(
            executed >= self.cases.min(1),
            "testkit property `{}`: every case was discarded ({} attempts) — \
             weaken the assume() conditions",
            self.name,
            attempts
        );
    }

    /// Shrinks a failing tape, persists it, prints the minimal case and
    /// re-raises the property's panic (un-silenced).
    fn report_failure<T: Debug>(
        &self,
        gen: &impl Fn(&mut Source<'_>) -> T,
        prop: &impl Fn(&T),
        tape: Tape,
        origin: &str,
        run_tape: impl Fn(&[u64]) -> Outcome,
    ) -> ! {
        let minimal = shrink_tape(tape, self.shrink_runs, &run_tape);
        let saved = persist_regression(&self.name, &minimal);

        // Reconstruct the minimal value for the report.
        let value = match quiet_catch(AssertUnwindSafe(|| {
            let mut src = Source::replay(&minimal);
            gen(&mut src)
        })) {
            Ok(v) => v,
            Err(payload) => panic!(
                "[testkit] property `{}`: the generator itself panicked on \
                 the minimal tape: {}",
                self.name,
                payload_message(payload.as_ref())
            ),
        };
        eprintln!(
            "\n[testkit] property `{}` FAILED (from {origin})\n\
             [testkit] minimal case: {value:?}\n\
             [testkit] tape ({} draws){}\n\
             [testkit] rerun: the tape replays automatically; \
             TESTKIT_SEED / TESTKIT_CASES control fresh generation\n",
            self.name,
            minimal.len(),
            match &saved {
                Some(p) => format!(" persisted to {}", p.display()),
                None => " (persistence unavailable)".to_owned(),
            },
        );
        // Run the property once more without silencing: its own panic (the
        // original assertion message) becomes the test failure.
        prop(&value);
        panic!(
            "[testkit] property `{}` failed on the original tape but passed \
             on replay — the generator or property is nondeterministic",
            self.name
        );
    }
}

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.trim().parse().ok()
}

fn quiet_catch<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn Any + Send>> {
    QUIET.with(|q| q.set(true));
    let r = panic::catch_unwind(AssertUnwindSafe(f));
    QUIET.with(|q| q.set(false));
    r
}

/// Greedily simplifies a failing tape: drops blocks of draws, then lowers
/// individual values — keeping every candidate that still fails. Runs at
/// most `budget` property executions.
fn shrink_tape(mut tape: Tape, budget: u32, run: &impl Fn(&[u64]) -> Outcome) -> Tape {
    let mut runs = 0u32;
    let try_candidate = |candidate: &Tape, runs: &mut u32| -> bool {
        if *runs >= budget {
            return false;
        }
        *runs += 1;
        matches!(run(candidate), Outcome::Fail)
    };

    loop {
        let mut improved = false;

        // Pass 1: delete blocks, large to small (shorter tape = simpler value).
        let mut size = tape.len().max(1);
        while size >= 1 {
            let mut start = 0;
            while start < tape.len() {
                let end = (start + size).min(tape.len());
                let mut candidate = tape.clone();
                candidate.drain(start..end);
                if try_candidate(&candidate, &mut runs) {
                    tape = candidate;
                    improved = true;
                    // Retry the same offset: the tape shifted left.
                } else {
                    start += size;
                }
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }

        // Pass 2: lower individual draw values (0, then halving, then -1).
        for i in 0..tape.len() {
            if tape[i] == 0 {
                continue;
            }
            for candidate_value in [0, tape[i] / 2, tape[i] - 1] {
                if candidate_value >= tape[i] {
                    continue;
                }
                let mut candidate = tape.clone();
                candidate[i] = candidate_value;
                if try_candidate(&candidate, &mut runs) {
                    tape = candidate;
                    improved = true;
                    break;
                }
            }
        }

        if !improved || runs >= budget {
            return tape;
        }
    }
}

/// Checks a property with default configuration: the one-liner entry point.
///
/// `gen` draws a value from the [`Source`]; `prop` asserts on it (panic =
/// failure, [`assume`] = discard). Honours `TESTKIT_CASES`/`TESTKIT_SEED`.
pub fn check<T: Debug>(name: &str, gen: impl Fn(&mut Source<'_>) -> T, prop: impl Fn(&T)) {
    Checker::new(name).run(gen, prop);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u64;
        let counter = std::cell::Cell::new(0u64);
        Checker::new("tk_internal_pass").cases(50).run(
            |src| src.i64_in(0, 100),
            |&v| {
                counter.set(counter.get() + 1);
                assert!((0..=100).contains(&v));
            },
        );
        count += counter.get();
        assert!(count >= 50);
    }

    #[test]
    fn assume_discards_without_failing() {
        Checker::new("tk_internal_assume").cases(20).run(
            |src| src.i64_in(0, 10),
            |&v| {
                assume(v % 2 == 0);
                assert_eq!(v % 2, 0);
            },
        );
    }

    #[test]
    fn failing_property_shrinks_to_the_boundary() {
        // Property: all values < 50. Failing values are 50..=1000; the
        // shrinker must land exactly on the boundary value 50.
        let observed = std::cell::Cell::new(0i64);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Checker::new("tk_internal_shrink_boundary").cases(200).run(
                |src| src.i64_in(0, 1000),
                |&v| {
                    if v >= 50 {
                        observed.set(v);
                        panic!("too big: {v}");
                    }
                },
            );
        }));
        assert!(result.is_err(), "property must fail");
        assert_eq!(observed.get(), 50, "must shrink to the minimal failure");
        // Clean up the persisted tape so reruns start fresh.
        let _ = std::fs::remove_file(regression_path("tk_internal_shrink_boundary"));
    }

    #[test]
    fn failing_vector_shrinks_to_minimal_length() {
        // Property: no vector contains a value >= 7. Minimal failure is a
        // single-element vector [7].
        let observed: std::cell::RefCell<Vec<i64>> = std::cell::RefCell::new(Vec::new());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Checker::new("tk_internal_shrink_vec").cases(300).run(
                |src| {
                    let len = src.usize_in(0, 20);
                    (0..len).map(|_| src.i64_in(0, 10)).collect::<Vec<i64>>()
                },
                |v| {
                    if v.iter().any(|&x| x >= 7) {
                        *observed.borrow_mut() = v.clone();
                        panic!("contains a big element: {v:?}");
                    }
                },
            );
        }));
        assert!(result.is_err(), "property must fail");
        assert_eq!(*observed.borrow(), vec![7], "minimal counterexample");
        let _ = std::fs::remove_file(regression_path("tk_internal_shrink_vec"));
    }

    #[test]
    fn regression_tape_round_trips_through_the_file() {
        let name = "tk_internal_persistence";
        let _ = std::fs::remove_file(regression_path(name));
        let tape: Tape = vec![3, 1, 4, 1, 5];
        let path = persist_regression(name, &tape).expect("persist works");
        assert!(path.exists());
        let loaded = load_regressions(name);
        assert_eq!(loaded, vec![tape.clone()]);
        // Persisting the same tape twice does not duplicate it.
        persist_regression(name, &tape);
        assert_eq!(load_regressions(name).len(), 1);
        let _ = std::fs::remove_file(path);
    }
}
