//! Seeded, dependency-free pseudo-random number generation.
//!
//! A [`Rng`] is a xoshiro256** stream seeded through SplitMix64 — the
//! textbook combination (Blackman & Vigna): SplitMix64 turns an arbitrary
//! 64-bit seed into four well-mixed state words, xoshiro256** generates the
//! stream. Both algorithms are tiny, portable, and fully deterministic, so
//! every stimulus sequence is reproducible from its seed alone.

/// The SplitMix64 step: advances `state` and returns the next output.
///
/// Used as the seeder for [`Rng`] and for deriving per-case sub-seeds.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a base seed with an index into an independent derived seed.
pub fn mix_seed(base: u64, index: u64) -> u64 {
    let mut s = base ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut s)
}

/// A seeded xoshiro256** pseudo-random number generator.
///
/// Not cryptographic — a fast, high-quality generator for randomized
/// testing. Identical seeds produce identical streams on every platform.
///
/// # Examples
///
/// ```
/// use testkit::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // The all-zero state is a fixed point of xoshiro; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Returns the next 64 random bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a uniform value in `0..n` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Rejection sampling on the top of the range keeps the draw uniform.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Draws an integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        // span == 0 means the full u64 range (lo == i64::MIN, hi == i64::MAX).
        let off = if span == 0 {
            self.next_u64()
        } else {
            self.below(span)
        };
        (lo as i128 + off as i128) as i64
    }

    /// Draws an integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Draws an `i32` in `lo..=hi`.
    pub fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        self.i64_in(lo as i64, hi as i64) as i32
    }

    /// Draws a `usize` in `lo..=hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Returns `true` with probability 1/2.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Returns `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: u32) -> bool {
        self.below(100) < u64::from(percent.min(100))
    }

    /// Draws one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        items[self.below(items.len() as u64) as usize]
    }

    /// Draws an index according to integer weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty or sum to zero.
    pub fn weighted_idx(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "weighted choice needs a positive total weight");
        let mut point = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if point < w {
                return i;
            }
            point -= w;
        }
        unreachable!("point always falls inside the total weight")
    }

    /// Draws one element according to integer weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or the slice is empty.
    pub fn weighted<T: Copy>(&mut self, items: &[(T, u32)]) -> T {
        let weights: Vec<u32> = items.iter().map(|&(_, w)| w).collect();
        items[self.weighted_idx(&weights)].0
    }

    /// Draws a uniform `f64` in `[0, 1)` with 53 bits of precision (the
    /// standard top-bits construction, so the value is an exact multiple
    /// of 2⁻⁵³ and identical on every platform).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        // Draw unconditionally so the stream position never depends on `p`.
        self.f64() < p
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Splits off an independent child stream.
    ///
    /// The child is seeded from this stream's output, so forking advances
    /// the parent deterministically.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(0xDEAD_BEEF);
        let mut b = Rng::new(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a: Vec<u64> = {
            let mut r = Rng::new(1);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(2);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut r = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..2000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues drawn: {seen:?}");
    }

    #[test]
    fn i64_in_handles_extremes() {
        let mut r = Rng::new(3);
        for _ in 0..100 {
            let v = r.i64_in(i64::MIN, i64::MAX);
            let _ = v; // full range must not panic or loop
            let w = r.i64_in(-5, 5);
            assert!((-5..=5).contains(&w));
            assert_eq!(r.i64_in(9, 9), 9);
        }
    }

    #[test]
    fn weighted_zero_arms_never_drawn() {
        let mut r = Rng::new(5);
        for _ in 0..500 {
            assert_eq!(r.weighted(&[("never", 0), ("always", 3)]), "always");
        }
    }

    #[test]
    fn weighted_roughly_follows_weights() {
        let mut r = Rng::new(11);
        let heavy = (0..2000)
            .filter(|_| r.weighted(&[(true, 90), (false, 10)]))
            .count();
        assert!(heavy > 1600, "heavy arm drawn {heavy}/2000");
    }

    #[test]
    fn fork_is_independent_but_deterministic() {
        let mut a = Rng::new(99);
        let mut b = Rng::new(99);
        let mut ca = a.fork();
        let mut cb = b.fork();
        assert_eq!(ca.next_u64(), cb.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_is_deterministic() {
        let mut a = [0u8; 37];
        let mut b = [0u8; 37];
        Rng::new(1234).fill_bytes(&mut a);
        Rng::new(1234).fill_bytes(&mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }

    #[test]
    fn statistical_sanity_mean_of_uniform() {
        // Mean of 10k draws in [0,1000] must land near 500 (±5%).
        let mut r = Rng::new(2024);
        let sum: u64 = (0..10_000).map(|_| r.u64_in(0, 1000)).sum();
        let mean = sum as f64 / 10_000.0;
        assert!((450.0..550.0).contains(&mean), "mean {mean}");
    }
}
