//! Differential oracles: run one input through several execution substrates
//! and demand agreement, shrinking the input on divergence.
//!
//! The harness is generic over the script element type `E` and the
//! observation type `O`; concrete substrate adapters live with the code
//! under test. Scripts are slices of elements so a divergence can be
//! minimized by deleting elements (and optionally simplifying them) while
//! the divergence persists.

use std::fmt::Debug;

/// A named execution substrate: replays a whole script from a fresh state
/// and returns its observable behaviour.
pub type SubstrateFn<E, O> = Box<dyn FnMut(&[E]) -> O>;

/// A shrinking hook proposing simpler replacements for one script element.
pub type SimplifyFn<E> = Box<dyn Fn(&E) -> Vec<E>>;

/// A disagreement between substrates on one script.
#[derive(Clone, Debug)]
pub struct Divergence<E, O> {
    /// The (possibly shrunk) script that exposes the disagreement.
    pub script: Vec<E>,
    /// Every substrate's observation of that script, in registration order.
    pub outputs: Vec<(String, O)>,
}

impl<E: Debug, O: PartialEq + Debug> std::fmt::Display for Divergence<E, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "substrates diverge on a {}-element script:",
            self.script.len()
        )?;
        for (i, e) in self.script.iter().enumerate() {
            writeln!(f, "  [{i}] {e:?}")?;
        }
        let reference = &self.outputs[0];
        for (name, out) in &self.outputs {
            let marker = if out == &reference.1 { " " } else { "*" };
            writeln!(f, " {marker}{name}: {out:?}")?;
        }
        Ok(())
    }
}

/// Runs scripts through a set of substrates and checks agreement.
pub struct DiffHarness<E, O> {
    substrates: Vec<(String, SubstrateFn<E, O>)>,
    simplify: Option<SimplifyFn<E>>,
    shrink_budget: u32,
}

impl<E, O> Default for DiffHarness<E, O>
where
    E: Clone + Debug,
    O: PartialEq + Clone + Debug,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<E, O> DiffHarness<E, O>
where
    E: Clone + Debug,
    O: PartialEq + Clone + Debug,
{
    /// An empty harness.
    pub fn new() -> Self {
        DiffHarness {
            substrates: Vec::new(),
            simplify: None,
            shrink_budget: 2000,
        }
    }

    /// Registers a substrate. The first registered substrate is the
    /// reference others are compared against.
    pub fn substrate(mut self, name: &str, f: impl FnMut(&[E]) -> O + 'static) -> Self {
        self.substrates.push((name.to_owned(), Box::new(f)));
        self
    }

    /// Sets an element simplifier: candidate replacements for one script
    /// element, simplest first. Used during shrinking only.
    pub fn simplify_with(mut self, f: impl Fn(&E) -> Vec<E> + 'static) -> Self {
        self.simplify = Some(Box::new(f));
        self
    }

    /// Caps how many script executions the shrinker may spend.
    pub fn shrink_budget(mut self, runs: u32) -> Self {
        self.shrink_budget = runs;
        self
    }

    /// Number of registered substrates.
    pub fn len(&self) -> usize {
        self.substrates.len()
    }

    /// True when no substrate is registered.
    pub fn is_empty(&self) -> bool {
        self.substrates.is_empty()
    }

    /// Runs the script through every substrate once. Returns the agreed
    /// observation, or the raw (unshrunk) divergence.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two substrates are registered.
    pub fn run(&mut self, script: &[E]) -> Result<O, Divergence<E, O>> {
        assert!(
            self.substrates.len() >= 2,
            "differential testing needs at least two substrates"
        );
        let outputs: Vec<(String, O)> = self
            .substrates
            .iter_mut()
            .map(|(name, f)| (name.clone(), f(script)))
            .collect();
        let reference = outputs[0].1.clone();
        if outputs.iter().all(|(_, o)| *o == reference) {
            Ok(reference)
        } else {
            Err(Divergence {
                script: script.to_vec(),
                outputs,
            })
        }
    }

    /// Like [`run`](Self::run), but on divergence the script is shrunk to a
    /// minimal reproducer: greedy block deletion plus per-element
    /// simplification, keeping every candidate that still diverges.
    pub fn check(&mut self, script: &[E]) -> Result<O, Divergence<E, O>> {
        match self.run(script) {
            Ok(o) => Ok(o),
            Err(first) => Err(self.shrink(first)),
        }
    }

    fn diverges(&mut self, script: &[E]) -> bool {
        self.run(script).is_err()
    }

    fn shrink(&mut self, seed: Divergence<E, O>) -> Divergence<E, O> {
        let mut script = seed.script;
        let mut runs = 0u32;
        loop {
            let mut improved = false;

            // Delete blocks, large to small.
            let mut size = script.len().max(1);
            while size >= 1 {
                let mut start = 0;
                while start < script.len() {
                    if runs >= self.shrink_budget {
                        break;
                    }
                    let end = (start + size).min(script.len());
                    let mut candidate = script.clone();
                    candidate.drain(start..end);
                    runs += 1;
                    if self.diverges(&candidate) {
                        script = candidate;
                        improved = true;
                    } else {
                        start += size;
                    }
                }
                if size == 1 {
                    break;
                }
                size /= 2;
            }

            // Simplify individual elements.
            if let Some(simplify) = self.simplify.take() {
                for i in 0..script.len() {
                    for replacement in simplify(&script[i]) {
                        if runs >= self.shrink_budget {
                            break;
                        }
                        let mut candidate = script.clone();
                        candidate[i] = replacement;
                        runs += 1;
                        if self.diverges(&candidate) {
                            script = candidate;
                            improved = true;
                            break;
                        }
                    }
                }
                self.simplify = Some(simplify);
            }

            if !improved || runs >= self.shrink_budget {
                // One final run to capture the minimal outputs.
                return match self.run(&script) {
                    Err(d) => d,
                    // The divergence vanished (flaky substrate): report the
                    // last known-diverging outputs on the shrunk script.
                    Ok(_) => Divergence {
                        script,
                        outputs: Vec::new(),
                    },
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy substrates: sum a list; the "buggy" one miscounts sevens.
    fn sum(script: &[i64]) -> i64 {
        script.iter().sum()
    }
    fn buggy_sum(script: &[i64]) -> i64 {
        script.iter().map(|&x| if x == 7 { 8 } else { x }).sum()
    }

    #[test]
    fn agreeing_substrates_return_the_observation() {
        let mut h = DiffHarness::new()
            .substrate("a", sum)
            .substrate("b", sum)
            .substrate("c", |s: &[i64]| s.iter().copied().sum::<i64>());
        assert_eq!(h.check(&[1, 2, 3]).expect("agree"), 6);
    }

    #[test]
    fn divergence_is_shrunk_to_the_minimal_reproducer() {
        let mut h = DiffHarness::new()
            .substrate("good", sum)
            .substrate("bad", buggy_sum)
            .simplify_with(|&e: &i64| if e > 0 { vec![0, e / 2] } else { vec![] });
        let script: Vec<i64> = vec![1, 2, 3, 7, 4, 5, 7, 6, 9, 10];
        let d = h.check(&script).expect_err("must diverge");
        assert_eq!(d.script, vec![7], "minimal reproducer is a single 7");
        assert_eq!(d.outputs.len(), 2);
        assert_ne!(d.outputs[0].1, d.outputs[1].1);
        // The display form marks the diverging substrate.
        let text = d.to_string();
        assert!(text.contains("*bad"), "display: {text}");
    }

    #[test]
    fn no_divergence_on_scripts_avoiding_the_bug() {
        let mut h = DiffHarness::new()
            .substrate("good", sum)
            .substrate("bad", buggy_sum);
        for s in [vec![], vec![1], vec![70, 17, 6]] {
            assert!(h.check(&s).is_ok(), "{s:?}");
        }
    }
}
