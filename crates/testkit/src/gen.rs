//! Composable value generators over a [`Source`].
//!
//! A [`Gen<T>`] is a reusable recipe turning tape draws into values. All
//! combinators shrink automatically because shrinking happens on the tape
//! (see [`crate::source`]), never on the produced values. Plain functions
//! `fn(&mut Source) -> T` work everywhere a `Gen` does — the struct only
//! adds combinator sugar.

use std::rc::Rc;

use crate::source::Source;

/// A reusable generator of `T` values.
#[derive(Clone)]
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Source<'_>) -> T>,
}

impl<T: 'static> Gen<T> {
    /// Wraps a draw function.
    pub fn new(f: impl Fn(&mut Source<'_>) -> T + 'static) -> Self {
        Gen { f: Rc::new(f) }
    }

    /// Generates one value from the source.
    pub fn sample(&self, src: &mut Source<'_>) -> T {
        (self.f)(src)
    }

    /// Always produces a clone of `value`.
    pub fn constant(value: T) -> Self
    where
        T: Clone,
    {
        Gen::new(move |_| value.clone())
    }

    /// Applies a pure function to every generated value.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |src| f(self.sample(src)))
    }

    /// Monadic bind: the generated value chooses the follow-up generator.
    pub fn flat_map<U: 'static>(self, f: impl Fn(T) -> Gen<U> + 'static) -> Gen<U> {
        Gen::new(move |src| f(self.sample(src)).sample(src))
    }

    /// Vectors with a length drawn from `min..=max`. Shorter shrinks first.
    pub fn vec(self, min: usize, max: usize) -> Gen<Vec<T>> {
        Gen::new(move |src| {
            let len = src.usize_in(min, max);
            (0..len).map(|_| self.sample(src)).collect()
        })
    }

    /// `None` (the simpler case) or `Some` of the inner generator.
    pub fn option(self) -> Gen<Option<T>> {
        Gen::new(move |src| {
            if src.bool() {
                Some(self.sample(src))
            } else {
                None
            }
        })
    }

    /// Pairs this generator with another.
    pub fn zip<U: 'static>(self, other: Gen<U>) -> Gen<(T, U)> {
        Gen::new(move |src| (self.sample(src), other.sample(src)))
    }

    /// Picks one of several generators uniformly. Earlier arms shrink first.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn one_of(arms: Vec<Gen<T>>) -> Gen<T> {
        assert!(!arms.is_empty(), "one_of needs at least one arm");
        Gen::new(move |src| {
            let i = src.draw(arms.len() as u64) as usize;
            arms[i].sample(src)
        })
    }

    /// Picks one of several generators by weight. Put the simplest arm
    /// first: that is where shrinking steers.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or `arms` is empty.
    pub fn weighted_of(arms: Vec<(u32, Gen<T>)>) -> Gen<T> {
        assert!(!arms.is_empty(), "weighted_of needs at least one arm");
        let weights: Vec<u32> = arms.iter().map(|&(w, _)| w).collect();
        Gen::new(move |src| {
            let i = src.weighted_idx(&weights);
            arms[i].1.sample(src)
        })
    }
}

/// Integers in `lo..=hi`, shrinking toward `lo`.
pub fn i64_in(lo: i64, hi: i64) -> Gen<i64> {
    Gen::new(move |src| src.i64_in(lo, hi))
}

/// Integers in `lo..=hi`, shrinking toward `lo`.
pub fn i32_in(lo: i32, hi: i32) -> Gen<i32> {
    Gen::new(move |src| src.i32_in(lo, hi))
}

/// Integers in `lo..=hi`, shrinking toward `lo`.
pub fn u64_in(lo: u64, hi: u64) -> Gen<u64> {
    Gen::new(move |src| src.u64_in(lo, hi))
}

/// Usizes in `lo..=hi`, shrinking toward `lo`.
pub fn usize_in(lo: usize, hi: usize) -> Gen<usize> {
    Gen::new(move |src| src.usize_in(lo, hi))
}

/// Booleans; `false` shrinks first.
pub fn bool_any() -> Gen<bool> {
    Gen::new(|src| src.bool())
}

/// One element of a fixed set; earlier elements shrink first.
pub fn pick_of<T: Copy + 'static>(items: Vec<T>) -> Gen<T> {
    assert!(!items.is_empty(), "cannot pick from an empty set");
    Gen::new(move |src| src.pick(&items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn combinators_compose_and_respect_bounds() {
        let g = i64_in(0, 9).vec(1, 5).map(|v| v.into_iter().sum::<i64>());
        let mut src = Source::fresh(Rng::new(8));
        for _ in 0..200 {
            let s = g.sample(&mut src);
            assert!((0..=45).contains(&s), "sum {s}");
        }
    }

    #[test]
    fn empty_tape_produces_the_minimal_value() {
        // The canonical shrink target: an all-zero/empty tape must give the
        // generator's simplest output.
        let g = i64_in(5, 20).vec(2, 6).zip(bool_any());
        let mut src = Source::replay(&[]);
        let (v, b) = g.sample(&mut src);
        assert_eq!(v, vec![5, 5]);
        assert!(!b);
    }

    #[test]
    fn weighted_of_steers_to_first_arm_on_zero_tape() {
        let g = Gen::weighted_of(vec![
            (1, Gen::constant("simple")),
            (9, Gen::constant("complex")),
        ]);
        let mut src = Source::replay(&[]);
        assert_eq!(g.sample(&mut src), "simple");
    }

    #[test]
    fn flat_map_chains_draws() {
        let g = usize_in(0, 3).flat_map(|n| i64_in(0, 100).vec(n, n));
        let mut src = Source::fresh(Rng::new(3));
        for _ in 0..100 {
            let v = g.sample(&mut src);
            assert!(v.len() <= 3);
        }
    }
}
