//! A small two-pass assembler for the ISA.
//!
//! Used by tests and examples to write firmware directly; the mini-C code
//! generator emits [`Instr`](crate::Instr) values instead and does not go
//! through text.
//!
//! Syntax:
//!
//! ```text
//! ; comment                 (also `#` and `//`)
//! .org 0x100                ; set origin (default 0)
//! .word 42                  ; literal data word (or a label's address)
//! .space 16                 ; reserve zeroed bytes (multiple of 4)
//! start:
//!     addi r1, zero, 5
//!     li   r2, 0x12345678   ; pseudo: lui+ori (or addi when it fits)
//!     la   r3, table        ; pseudo: load a label's absolute address
//!     lw   r4, 8(r1)
//!     sw   r4, -4(sp)
//!     beq  r1, r4, start
//!     jal  ra, start
//!     j    start            ; pseudo: jal r0, label
//!     halt
//! table:
//!     .word 1
//! ```
//!
//! Registers: `r0`–`r15` with aliases `zero`, `rv`, `fp`, `sp`, `ra`.

use std::collections::HashMap;
use std::fmt;

use crate::isa::{op_by_mnemonic, AluOp, BranchCond, Instr, OpKind, Reg};

/// An assembled program image.
#[derive(Clone, Debug)]
pub struct Program {
    /// Load address of the first word.
    pub origin: u32,
    /// The image, word by word.
    pub words: Vec<u32>,
    /// Label addresses.
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Returns a label's address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }
}

/// An error with source line information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles source text into a program image.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered (unknown mnemonic, bad operand,
/// undefined or duplicate label, out-of-range offset).
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let items = parse_items(source)?;
    // Pass 1: lay out addresses.
    let mut symbols = HashMap::new();
    let mut origin = None;
    let mut addr = 0u32;
    for item in &items {
        match &item.kind {
            ItemKind::Org(a) => {
                if origin.is_some() {
                    return Err(err(item.line, "duplicate .org"));
                }
                origin = Some(*a);
                addr = *a;
            }
            ItemKind::Label(name) => {
                if symbols.insert(name.clone(), addr).is_some() {
                    return Err(err(item.line, &format!("duplicate label `{name}`")));
                }
            }
            ItemKind::Word(_) | ItemKind::WordLabel(_) => addr += 4,
            ItemKind::Space(bytes) => addr += bytes,
            ItemKind::Op(op) => addr += 4 * op.word_count(),
        }
    }
    let origin = origin.unwrap_or(0);
    // Pass 2: emit.
    let mut words = Vec::new();
    let mut addr = origin;
    for item in &items {
        match &item.kind {
            ItemKind::Org(_) | ItemKind::Label(_) => {}
            ItemKind::Word(v) => {
                words.push(*v);
                addr += 4;
            }
            ItemKind::WordLabel(name) => {
                let target = *symbols
                    .get(name)
                    .ok_or_else(|| err(item.line, &format!("undefined label `{name}`")))?;
                words.push(target);
                addr += 4;
            }
            ItemKind::Space(bytes) => {
                words.extend(std::iter::repeat_n(0, (bytes / 4) as usize));
                addr += bytes;
            }
            ItemKind::Op(op) => {
                let emitted = op.emit(addr, &symbols, item.line)?;
                addr += 4 * emitted.len() as u32;
                words.extend(emitted.into_iter().map(Instr::encode));
            }
        }
    }
    Ok(Program {
        origin,
        words,
        symbols,
    })
}

fn err(line: usize, message: &str) -> AsmError {
    AsmError {
        line,
        message: message.to_owned(),
    }
}

struct Item {
    line: usize,
    kind: ItemKind,
}

enum ItemKind {
    Org(u32),
    Label(String),
    Word(u32),
    WordLabel(String),
    Space(u32),
    Op(Op),
}

/// A parsed instruction, possibly a pseudo-op expanding to several words.
enum Op {
    Alu(AluOp, Reg, Reg, Reg),
    Imm(OpKind, Reg, Reg, i64),
    Lui(Reg, i64),
    Mem(bool, Reg, Reg, i64), // (is_load, data, base, offset)
    Branch(BranchCond, Reg, Reg, Target),
    Jal(Reg, Target),
    Jalr(Reg, Reg, i64),
    Li(Reg, i64),
    La(Reg, String),
    Jump(Target),
    Halt,
    Nop,
}

enum Target {
    Label(String),
    Offset(i64),
}

impl Op {
    fn word_count(&self) -> u32 {
        match self {
            Op::Li(_, v) => {
                if i16::try_from(*v).is_ok() {
                    1
                } else {
                    2
                }
            }
            Op::La(..) => 2,
            _ => 1,
        }
    }

    fn emit(
        &self,
        addr: u32,
        symbols: &HashMap<String, u32>,
        line: usize,
    ) -> Result<Vec<Instr>, AsmError> {
        let resolve = |t: &Target| -> Result<i16, AsmError> {
            let delta_words = match t {
                Target::Label(name) => {
                    let target = *symbols
                        .get(name)
                        .ok_or_else(|| err(line, &format!("undefined label `{name}`")))?;
                    (i64::from(target) - i64::from(addr)) / 4
                }
                Target::Offset(v) => *v,
            };
            i16::try_from(delta_words).map_err(|_| err(line, "branch/jump target out of range"))
        };
        let imm16 = |v: i64| -> Result<i16, AsmError> {
            i16::try_from(v).map_err(|_| err(line, "immediate out of i16 range"))
        };
        let uimm16 = |v: i64| -> Result<u16, AsmError> {
            u16::try_from(v).map_err(|_| err(line, "immediate out of u16 range"))
        };
        Ok(match self {
            Op::Alu(op, rd, rs1, rs2) => vec![Instr::Alu(*op, *rd, *rs1, *rs2)],
            Op::Imm(kind, rd, rs1, v) => vec![match kind {
                OpKind::Addi => Instr::Addi(*rd, *rs1, imm16(*v)?),
                OpKind::Andi => Instr::Andi(*rd, *rs1, uimm16(*v)?),
                OpKind::Ori => Instr::Ori(*rd, *rs1, uimm16(*v)?),
                OpKind::Xori => Instr::Xori(*rd, *rs1, uimm16(*v)?),
                OpKind::Sltiu => Instr::Sltiu(*rd, *rs1, uimm16(*v)?),
                _ => unreachable!("imm kind checked at parse time"),
            }],
            Op::Lui(rd, v) => vec![Instr::Lui(*rd, uimm16(*v)?)],
            Op::Mem(true, rd, base, off) => vec![Instr::Lw(*rd, *base, imm16(*off)?)],
            Op::Mem(false, rs2, base, off) => vec![Instr::Sw(*rs2, *base, imm16(*off)?)],
            Op::Branch(cond, rs1, rs2, t) => {
                vec![Instr::Branch(*cond, *rs1, *rs2, resolve(t)?)]
            }
            Op::Jal(rd, t) => vec![Instr::Jal(*rd, resolve(t)?)],
            Op::Jalr(rd, rs1, v) => vec![Instr::Jalr(*rd, *rs1, imm16(*v)?)],
            Op::Li(rd, v) => {
                let v32 = *v as u32;
                if let Ok(small) = i16::try_from(*v) {
                    vec![Instr::Addi(*rd, Reg::ZERO, small)]
                } else {
                    vec![
                        Instr::Lui(*rd, (v32 >> 16) as u16),
                        Instr::Ori(*rd, *rd, (v32 & 0xffff) as u16),
                    ]
                }
            }
            Op::La(rd, name) => {
                let target = *symbols
                    .get(name)
                    .ok_or_else(|| err(line, &format!("undefined label `{name}`")))?;
                vec![
                    Instr::Lui(*rd, (target >> 16) as u16),
                    Instr::Ori(*rd, *rd, (target & 0xffff) as u16),
                ]
            }
            Op::Jump(t) => vec![Instr::Jal(Reg::ZERO, resolve(t)?)],
            Op::Halt => vec![Instr::Halt],
            Op::Nop => vec![Instr::Nop],
        })
    }
}

fn parse_items(source: &str) -> Result<Vec<Item>, AsmError> {
    let mut items = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = strip_comment(raw).trim();
        if text.is_empty() {
            continue;
        }
        let mut rest = text;
        // Leading labels (possibly several on one line).
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let name = head.trim();
            if !is_ident(name) {
                break;
            }
            items.push(Item {
                line,
                kind: ItemKind::Label(name.to_owned()),
            });
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(dir) = rest.strip_prefix('.') {
            items.push(Item {
                line,
                kind: parse_directive(dir, line)?,
            });
        } else {
            items.push(Item {
                line,
                kind: ItemKind::Op(parse_op(rest, line)?),
            });
        }
    }
    Ok(items)
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for pat in [";", "#", "//"] {
        if let Some(i) = line.find(pat) {
            end = end.min(i);
        }
    }
    &line[..end]
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_directive(dir: &str, line: usize) -> Result<ItemKind, AsmError> {
    let (name, arg) = dir.split_once(char::is_whitespace).unwrap_or((dir, ""));
    let arg = arg.trim();
    match name {
        "org" => Ok(ItemKind::Org(parse_u32(arg, line)?)),
        "word" => {
            if is_ident(arg) {
                Ok(ItemKind::WordLabel(arg.to_owned()))
            } else {
                Ok(ItemKind::Word(parse_int(arg, line)? as u32))
            }
        }
        "space" => {
            let bytes = parse_u32(arg, line)?;
            if bytes % 4 != 0 {
                return Err(err(line, ".space must be a multiple of 4"));
            }
            Ok(ItemKind::Space(bytes))
        }
        other => Err(err(line, &format!("unknown directive `.{other}`"))),
    }
}

fn parse_u32(text: &str, line: usize) -> Result<u32, AsmError> {
    let v = parse_int(text, line)?;
    u32::try_from(v).map_err(|_| err(line, "value out of u32 range"))
}

fn parse_int(text: &str, line: usize) -> Result<i64, AsmError> {
    let text = text.trim();
    let (neg, body) = match text.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, text),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, &format!("invalid number `{text}`")))?;
    Ok(if neg { -value } else { value })
}

fn parse_reg(text: &str, line: usize) -> Result<Reg, AsmError> {
    let t = text.trim();
    match t {
        "zero" => return Ok(Reg::ZERO),
        "rv" => return Ok(Reg::RV),
        "fp" => return Ok(Reg::FP),
        "sp" => return Ok(Reg::SP),
        "ra" => return Ok(Reg::RA),
        _ => {}
    }
    if let Some(num) = t.strip_prefix('r') {
        if let Ok(i) = num.parse::<u8>() {
            if i < 16 {
                return Ok(Reg::new(i));
            }
        }
    }
    Err(err(line, &format!("invalid register `{t}`")))
}

fn parse_target(text: &str, line: usize) -> Result<Target, AsmError> {
    let t = text.trim();
    if is_ident(t) {
        Ok(Target::Label(t.to_owned()))
    } else {
        Ok(Target::Offset(parse_int(t, line)?))
    }
}

/// Parses `off(base)` memory operands.
fn parse_mem_operand(text: &str, line: usize) -> Result<(Reg, i64), AsmError> {
    let t = text.trim();
    let open = t
        .find('(')
        .ok_or_else(|| err(line, "expected `offset(base)` operand"))?;
    if !t.ends_with(')') {
        return Err(err(line, "expected closing `)`"));
    }
    let off_text = &t[..open];
    let base = parse_reg(&t[open + 1..t.len() - 1], line)?;
    let off = if off_text.trim().is_empty() {
        0
    } else {
        parse_int(off_text, line)?
    };
    Ok((base, off))
}

fn parse_op(text: &str, line: usize) -> Result<Op, AsmError> {
    let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
    let args: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let need = |n: usize| -> Result<(), AsmError> {
        if args.len() != n {
            Err(err(
                line,
                &format!("`{mnemonic}` expects {n} operands, found {}", args.len()),
            ))
        } else {
            Ok(())
        }
    };
    let alu = |op: AluOp| -> Result<Op, AsmError> {
        need(3)?;
        Ok(Op::Alu(
            op,
            parse_reg(args[0], line)?,
            parse_reg(args[1], line)?,
            parse_reg(args[2], line)?,
        ))
    };
    let branch = |cond: BranchCond| -> Result<Op, AsmError> {
        need(3)?;
        Ok(Op::Branch(
            cond,
            parse_reg(args[0], line)?,
            parse_reg(args[1], line)?,
            parse_target(args[2], line)?,
        ))
    };
    // Pseudo-ops first: they are not in the ISA description table because
    // they expand to real instructions at emit time.
    match mnemonic {
        "li" => {
            need(2)?;
            return Ok(Op::Li(parse_reg(args[0], line)?, parse_int(args[1], line)?));
        }
        "la" => {
            need(2)?;
            if !is_ident(args[1]) {
                return Err(err(line, "`la` expects a label"));
            }
            return Ok(Op::La(parse_reg(args[0], line)?, args[1].to_owned()));
        }
        "j" => {
            need(1)?;
            return Ok(Op::Jump(parse_target(args[0], line)?));
        }
        _ => {}
    }
    // Everything else is driven by the declarative ISA description: the
    // mnemonic names a table row, and the row's operand kind decides the
    // parse shape.
    let desc = op_by_mnemonic(mnemonic)
        .ok_or_else(|| err(line, &format!("unknown mnemonic `{mnemonic}`")))?;
    match desc.kind {
        OpKind::Alu(op) => alu(op),
        OpKind::Branch(cond) => branch(cond),
        kind @ (OpKind::Addi | OpKind::Andi | OpKind::Ori | OpKind::Xori | OpKind::Sltiu) => {
            need(3)?;
            Ok(Op::Imm(
                kind,
                parse_reg(args[0], line)?,
                parse_reg(args[1], line)?,
                parse_int(args[2], line)?,
            ))
        }
        OpKind::Lui => {
            need(2)?;
            Ok(Op::Lui(
                parse_reg(args[0], line)?,
                parse_int(args[1], line)?,
            ))
        }
        OpKind::Lw => {
            need(2)?;
            let (base, off) = parse_mem_operand(args[1], line)?;
            Ok(Op::Mem(true, parse_reg(args[0], line)?, base, off))
        }
        OpKind::Sw => {
            need(2)?;
            let (base, off) = parse_mem_operand(args[1], line)?;
            Ok(Op::Mem(false, parse_reg(args[0], line)?, base, off))
        }
        OpKind::Jal => {
            need(2)?;
            Ok(Op::Jal(
                parse_reg(args[0], line)?,
                parse_target(args[1], line)?,
            ))
        }
        OpKind::Jalr => {
            need(2)?;
            let (base, off) = parse_mem_operand(args[1], line)?;
            Ok(Op::Jalr(parse_reg(args[0], line)?, base, off))
        }
        OpKind::Halt => {
            need(0)?;
            Ok(Op::Halt)
        }
        OpKind::Nop => {
            need(0)?;
            Ok(Op::Nop)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Cpu;
    use crate::memory::Memory;

    fn run(source: &str) -> Cpu {
        let prog = assemble(source).unwrap();
        let mut mem = Memory::new(65536);
        mem.load_image(prog.origin, &prog.words);
        let mut cpu = Cpu::new(prog.origin);
        cpu.run(&mut mem, 100_000).unwrap();
        assert!(cpu.is_halted(), "program did not halt");
        cpu
    }

    #[test]
    fn assembles_and_runs_a_loop() {
        let cpu = run("
            li r1, 10
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, zero, loop
            halt
        ");
        assert_eq!(cpu.reg(Reg::new(2)), 55);
    }

    #[test]
    fn li_expands_for_large_constants() {
        let cpu = run("
            li r1, 0x12345678
            li r2, -7
            halt
        ");
        assert_eq!(cpu.reg(Reg::new(1)), 0x1234_5678);
        assert_eq!(cpu.reg(Reg::new(2)) as i32, -7);
    }

    #[test]
    fn la_and_word_reference_data() {
        let cpu = run("
            la r1, data
            lw r2, 0(r1)
            lw r3, 4(r1)
            halt
        data:
            .word 0xcafe
            .word data
        ");
        assert_eq!(cpu.reg(Reg::new(2)), 0xcafe);
        // Second word holds the label's own address.
        assert_eq!(cpu.reg(Reg::new(3)), cpu.reg(Reg::new(1)));
    }

    #[test]
    fn subroutine_call_via_jal_jalr() {
        let cpu = run("
            jal ra, sq
            halt
        sq:
            li rv, 12
            mul rv, rv, rv
            jalr r0, 0(ra)
        ");
        assert_eq!(cpu.reg(Reg::RV), 144);
    }

    #[test]
    fn org_and_space_lay_out_memory() {
        let prog = assemble(
            "
            .org 0x100
            start: halt
            .space 8
            tail: .word 5
        ",
        )
        .unwrap();
        assert_eq!(prog.origin, 0x100);
        assert_eq!(prog.symbol("start"), Some(0x100));
        assert_eq!(prog.symbol("tail"), Some(0x10c));
        assert_eq!(prog.words.len(), 4);
        assert_eq!(prog.words[3], 5);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\n bogus r1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn undefined_label_is_reported() {
        let e = assemble("beq r1, r2, nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn duplicate_label_is_reported() {
        let e = assemble("a:\na:\nhalt").unwrap_err();
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn comments_are_ignored() {
        let cpu = run("
            ; full-line comment
            li r1, 1   # trailing
            halt       // also trailing
        ");
        assert_eq!(cpu.reg(Reg::new(1)), 1);
    }
}
