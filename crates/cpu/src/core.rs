//! The processor core: architectural state and one-instruction stepping.

use std::fmt;

use crate::isa::{AluOp, BranchCond, DecodeError, Instr, Reg};
use crate::memory::{MemError, Memory};

/// An error raised while executing an instruction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CpuError {
    /// Instruction fetch or data access failed.
    Mem(MemError),
    /// The fetched word is not a valid instruction.
    Decode(DecodeError),
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::Mem(e) => write!(f, "{e}"),
            CpuError::Decode(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CpuError {}

impl From<MemError> for CpuError {
    fn from(e: MemError) -> Self {
        CpuError::Mem(e)
    }
}

impl From<DecodeError> for CpuError {
    fn from(e: DecodeError) -> Self {
        CpuError::Decode(e)
    }
}

/// What one step did.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// An instruction executed; the core is still running.
    Executed(Instr),
    /// A `halt` executed (or the core was already halted).
    Halted,
}

/// Architectural state of the core.
///
/// # Examples
///
/// ```
/// use sctc_cpu::{Cpu, Instr, Memory, Reg, StepOutcome};
///
/// let mut mem = Memory::new(64);
/// mem.load_image(0, &[
///     Instr::Addi(Reg::new(1), Reg::ZERO, 7).encode(),
///     Instr::Halt.encode(),
/// ]);
/// let mut cpu = Cpu::new(0);
/// cpu.step(&mut mem)?;
/// assert_eq!(cpu.reg(Reg::new(1)), 7);
/// assert_eq!(cpu.step(&mut mem)?, StepOutcome::Halted);
/// # Ok::<(), sctc_cpu::CpuError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cpu {
    regs: [u32; 16],
    pc: u32,
    halted: bool,
    retired: u64,
}

impl Cpu {
    /// Creates a core with all registers zero and the given reset PC.
    pub fn new(reset_pc: u32) -> Self {
        Cpu {
            regs: [0; 16],
            pc: reset_pc,
            halted: false,
            retired: 0,
        }
    }

    /// Returns a register value (`r0` always reads zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r == Reg::ZERO {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Sets a register (writes to `r0` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::ZERO {
            self.regs[r.index()] = value;
        }
    }

    /// Returns the program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Returns `true` once a `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Returns the number of retired instructions.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    fn alu(op: AluOp, a: u32, b: u32) -> u32 {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    u32::MAX
                } else {
                    (a as i32).wrapping_div(b as i32) as u32
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    (a as i32).wrapping_rem(b as i32) as u32
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }

    fn branch_taken(cond: BranchCond, a: u32, b: u32) -> bool {
        match cond {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ge => (a as i32) >= (b as i32),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }

    /// Fetches, decodes and executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] on fetch/decode/data-access faults; the core
    /// state is left at the faulting instruction.
    pub fn step(&mut self, mem: &mut Memory) -> Result<StepOutcome, CpuError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let word = mem.read_u32(self.pc)?;
        let instr = Instr::decode(word)?;
        let mut next_pc = self.pc.wrapping_add(4);
        match instr {
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
                self.retired += 1;
                return Ok(StepOutcome::Halted);
            }
            Instr::Alu(op, rd, rs1, rs2) => {
                let v = Self::alu(op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::Addi(rd, rs1, imm) => {
                self.set_reg(rd, self.reg(rs1).wrapping_add(imm as i32 as u32));
            }
            Instr::Andi(rd, rs1, imm) => self.set_reg(rd, self.reg(rs1) & imm as u32),
            Instr::Ori(rd, rs1, imm) => self.set_reg(rd, self.reg(rs1) | imm as u32),
            Instr::Xori(rd, rs1, imm) => self.set_reg(rd, self.reg(rs1) ^ imm as u32),
            Instr::Sltiu(rd, rs1, imm) => {
                self.set_reg(rd, u32::from(self.reg(rs1) < imm as u32));
            }
            Instr::Lui(rd, imm) => self.set_reg(rd, (imm as u32) << 16),
            Instr::Lw(rd, rs1, imm) => {
                let addr = self.reg(rs1).wrapping_add(imm as i32 as u32);
                let v = mem.read_u32(addr)?;
                self.set_reg(rd, v);
            }
            Instr::Sw(rs2, rs1, imm) => {
                let addr = self.reg(rs1).wrapping_add(imm as i32 as u32);
                mem.write_u32(addr, self.reg(rs2))?;
            }
            Instr::Branch(cond, rs1, rs2, offset) => {
                if Self::branch_taken(cond, self.reg(rs1), self.reg(rs2)) {
                    next_pc = self.pc.wrapping_add((offset as i32 * 4) as u32);
                }
            }
            Instr::Jal(rd, offset) => {
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add((offset as i32 * 4) as u32);
            }
            Instr::Jalr(rd, rs1, imm) => {
                let target = self.reg(rs1).wrapping_add(imm as i32 as u32);
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = target;
            }
        }
        self.pc = next_pc;
        self.retired += 1;
        Ok(StepOutcome::Executed(instr))
    }

    /// Runs until halt or at most `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// See [`Cpu::step`].
    pub fn run(&mut self, mem: &mut Memory, max_steps: u64) -> Result<StepOutcome, CpuError> {
        for _ in 0..max_steps {
            if let StepOutcome::Halted = self.step(mem)? {
                return Ok(StepOutcome::Halted);
            }
        }
        Ok(StepOutcome::Executed(Instr::Nop))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_program(words: &[u32]) -> (Cpu, Memory) {
        let mut mem = Memory::new(4096);
        mem.load_image(0, words);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut mem, 10_000).unwrap();
        (cpu, mem)
    }

    #[test]
    fn arithmetic_and_immediates() {
        let r = Reg::new;
        let (cpu, _) = run_program(&[
            Instr::Addi(r(1), Reg::ZERO, 6).encode(),
            Instr::Addi(r(2), Reg::ZERO, 7).encode(),
            Instr::Alu(AluOp::Mul, r(3), r(1), r(2)).encode(),
            Instr::Alu(AluOp::Sub, r(4), r(3), r(1)).encode(),
            Instr::Halt.encode(),
        ]);
        assert_eq!(cpu.reg(Reg::new(3)), 42);
        assert_eq!(cpu.reg(Reg::new(4)), 36);
        assert!(cpu.is_halted());
        assert_eq!(cpu.retired(), 5);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (cpu, _) = run_program(&[
            Instr::Addi(Reg::ZERO, Reg::ZERO, 99).encode(),
            Instr::Halt.encode(),
        ]);
        assert_eq!(cpu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn loads_and_stores() {
        let r = Reg::new;
        let (cpu, mut mem) = run_program(&[
            Instr::Addi(r(1), Reg::ZERO, 0x100).encode(),
            Instr::Addi(r(2), Reg::ZERO, -1).encode(),
            Instr::Sw(r(2), r(1), 4).encode(),
            Instr::Lw(r(3), r(1), 4).encode(),
            Instr::Halt.encode(),
        ]);
        assert_eq!(cpu.reg(Reg::new(3)), u32::MAX);
        assert_eq!(mem.read_u32(0x104).unwrap(), u32::MAX);
    }

    #[test]
    fn branch_loop_counts_down() {
        let r = Reg::new;
        // r1 = 5; loop: r2 += 2; r1 -= 1; bne r1, r0, loop; halt
        let (cpu, _) = run_program(&[
            Instr::Addi(r(1), Reg::ZERO, 5).encode(),
            Instr::Addi(r(2), r(2), 2).encode(),
            Instr::Addi(r(1), r(1), -1).encode(),
            Instr::Branch(BranchCond::Ne, r(1), Reg::ZERO, -2).encode(),
            Instr::Halt.encode(),
        ]);
        assert_eq!(cpu.reg(Reg::new(2)), 10);
    }

    #[test]
    fn jal_and_jalr_implement_calls() {
        let r = Reg::new;
        // 0: jal ra, +3  (to 12)
        // 4: addi r1, r1, 1   (returned here)
        // 8: halt
        // 12: addi r2, r0, 9  (subroutine)
        // 16: jalr r0, ra, 0
        let (cpu, _) = run_program(&[
            Instr::Jal(Reg::RA, 3).encode(),
            Instr::Addi(r(1), r(1), 1).encode(),
            Instr::Halt.encode(),
            Instr::Addi(r(2), Reg::ZERO, 9).encode(),
            Instr::Jalr(Reg::ZERO, Reg::RA, 0).encode(),
        ]);
        assert_eq!(cpu.reg(Reg::new(2)), 9);
        assert_eq!(cpu.reg(Reg::new(1)), 1);
    }

    #[test]
    fn division_by_zero_follows_riscv_convention() {
        let r = Reg::new;
        let (cpu, _) = run_program(&[
            Instr::Addi(r(1), Reg::ZERO, 10).encode(),
            Instr::Alu(AluOp::Div, r(2), r(1), Reg::ZERO).encode(),
            Instr::Alu(AluOp::Rem, r(3), r(1), Reg::ZERO).encode(),
            Instr::Halt.encode(),
        ]);
        assert_eq!(cpu.reg(Reg::new(2)), u32::MAX);
        assert_eq!(cpu.reg(Reg::new(3)), 10);
    }

    #[test]
    fn signed_comparisons() {
        let r = Reg::new;
        let (cpu, _) = run_program(&[
            Instr::Addi(r(1), Reg::ZERO, -5).encode(),
            Instr::Addi(r(2), Reg::ZERO, 3).encode(),
            Instr::Alu(AluOp::Slt, r(3), r(1), r(2)).encode(),
            Instr::Alu(AluOp::Sltu, r(4), r(1), r(2)).encode(),
            Instr::Halt.encode(),
        ]);
        assert_eq!(cpu.reg(Reg::new(3)), 1); // -5 < 3 signed
        assert_eq!(cpu.reg(Reg::new(4)), 0); // 0xfff..b >= 3 unsigned
    }

    #[test]
    fn fetch_fault_is_reported() {
        let mut mem = Memory::new(8);
        mem.load_image(0, &[Instr::Nop.encode(), Instr::Nop.encode()]);
        let mut cpu = Cpu::new(0);
        cpu.step(&mut mem).unwrap();
        cpu.step(&mut mem).unwrap();
        let err = cpu.step(&mut mem).unwrap_err();
        assert!(matches!(err, CpuError::Mem(MemError::Unmapped { addr: 8 })));
    }

    #[test]
    fn halted_core_stays_halted() {
        let (mut cpu, mut mem) = run_program(&[Instr::Halt.encode()]);
        assert_eq!(cpu.step(&mut mem).unwrap(), StepOutcome::Halted);
        assert_eq!(cpu.retired(), 1);
    }
}
