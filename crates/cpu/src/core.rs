//! The processor core: architectural state and one-instruction stepping.

use std::fmt;

use crate::isa::{AluOp, BranchCond, DecodeError, Instr, IsaKind, Reg};
use crate::memory::{MemError, Memory};

/// An error raised while executing an instruction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CpuError {
    /// Instruction fetch or data access failed.
    Mem(MemError),
    /// The fetched word is not a valid instruction.
    Decode(DecodeError),
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::Mem(e) => write!(f, "{e}"),
            CpuError::Decode(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CpuError {}

impl From<MemError> for CpuError {
    fn from(e: MemError) -> Self {
        CpuError::Mem(e)
    }
}

impl From<DecodeError> for CpuError {
    fn from(e: DecodeError) -> Self {
        CpuError::Decode(e)
    }
}

/// What one step did.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// An instruction executed; the core is still running.
    Executed(Instr),
    /// A `halt` executed (or the core was already halted).
    Halted,
}

/// Architectural state of the core.
///
/// # Examples
///
/// ```
/// use sctc_cpu::{Cpu, Instr, Memory, Reg, StepOutcome};
///
/// let mut mem = Memory::new(64);
/// mem.load_image(0, &[
///     Instr::Addi(Reg::new(1), Reg::ZERO, 7).encode(),
///     Instr::Halt.encode(),
/// ]);
/// let mut cpu = Cpu::new(0);
/// cpu.step(&mut mem)?;
/// assert_eq!(cpu.reg(Reg::new(1)), 7);
/// assert_eq!(cpu.step(&mut mem)?, StepOutcome::Halted);
/// # Ok::<(), sctc_cpu::CpuError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cpu {
    regs: [u32; 16],
    pc: u32,
    halted: bool,
    retired: u64,
    isa: IsaKind,
    /// Bench-only escape hatch: route `Word32` fetches through the
    /// pre-table hand-written decoder so `repro --monitor-bench` can
    /// time table vs. legacy decode on the real clocked flow.
    legacy_decode: bool,
}

impl Cpu {
    /// Creates a core with all registers zero and the given reset PC,
    /// executing the default [`IsaKind::Word32`] encoding.
    pub fn new(reset_pc: u32) -> Self {
        Cpu::with_isa(reset_pc, IsaKind::Word32)
    }

    /// Creates a core executing the given instruction encoding.
    pub fn with_isa(reset_pc: u32, isa: IsaKind) -> Self {
        Cpu {
            regs: [0; 16],
            pc: reset_pc,
            halted: false,
            retired: 0,
            isa,
            legacy_decode: false,
        }
    }

    /// The instruction encoding this core executes.
    pub fn isa(&self) -> IsaKind {
        self.isa
    }

    /// Routes `Word32` decoding through the legacy hand-written decoder
    /// (bench baseline; no effect under `Comp16`).
    pub fn set_legacy_decode(&mut self, on: bool) {
        self.legacy_decode = on;
    }

    /// Whether the legacy decoder baseline is selected.
    pub fn legacy_decode(&self) -> bool {
        self.legacy_decode
    }

    /// Returns a register value (`r0` always reads zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r == Reg::ZERO {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Sets a register (writes to `r0` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::ZERO {
            self.regs[r.index()] = value;
        }
    }

    /// Returns the program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Returns `true` once a `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Returns the number of retired instructions.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    fn alu(op: AluOp, a: u32, b: u32) -> u32 {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    u32::MAX
                } else {
                    (a as i32).wrapping_div(b as i32) as u32
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    (a as i32).wrapping_rem(b as i32) as u32
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }

    fn branch_taken(cond: BranchCond, a: u32, b: u32) -> bool {
        match cond {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ge => (a as i32) >= (b as i32),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }

    /// Fetches, decodes and executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] on fetch/decode/data-access faults; the core
    /// state is left at the faulting instruction.
    pub fn step(&mut self, mem: &mut Memory) -> Result<StepOutcome, CpuError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let (instr, size) = match self.isa {
            IsaKind::Word32 => {
                let word = mem.read_u32(self.pc)?;
                let instr = if self.legacy_decode {
                    Instr::decode_legacy(word)?
                } else {
                    Instr::decode(word)?
                };
                (instr, 4)
            }
            IsaKind::Comp16 => {
                let lo = mem.read_u16(self.pc)?;
                let ext = Instr::c16_ext(lo)?;
                let hi = if ext {
                    mem.read_u16(self.pc.wrapping_add(2))?
                } else {
                    0
                };
                (Instr::decode_c16(lo, hi)?, if ext { 4 } else { 2 })
            }
        };
        let unit = self.isa.offset_unit() as i32;
        let mut next_pc = self.pc.wrapping_add(size);
        match instr {
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
                self.retired += 1;
                return Ok(StepOutcome::Halted);
            }
            Instr::Alu(op, rd, rs1, rs2) => {
                let v = Self::alu(op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::Addi(rd, rs1, imm) => {
                self.set_reg(rd, self.reg(rs1).wrapping_add(imm as i32 as u32));
            }
            Instr::Andi(rd, rs1, imm) => self.set_reg(rd, self.reg(rs1) & imm as u32),
            Instr::Ori(rd, rs1, imm) => self.set_reg(rd, self.reg(rs1) | imm as u32),
            Instr::Xori(rd, rs1, imm) => self.set_reg(rd, self.reg(rs1) ^ imm as u32),
            Instr::Sltiu(rd, rs1, imm) => {
                self.set_reg(rd, u32::from(self.reg(rs1) < imm as u32));
            }
            Instr::Lui(rd, imm) => self.set_reg(rd, (imm as u32) << 16),
            Instr::Lw(rd, rs1, imm) => {
                let addr = self.reg(rs1).wrapping_add(imm as i32 as u32);
                let v = mem.read_u32(addr)?;
                self.set_reg(rd, v);
            }
            Instr::Sw(rs2, rs1, imm) => {
                let addr = self.reg(rs1).wrapping_add(imm as i32 as u32);
                mem.write_u32(addr, self.reg(rs2))?;
            }
            Instr::Branch(cond, rs1, rs2, offset) => {
                if Self::branch_taken(cond, self.reg(rs1), self.reg(rs2)) {
                    next_pc = self.pc.wrapping_add((offset as i32 * unit) as u32);
                }
            }
            Instr::Jal(rd, offset) => {
                self.set_reg(rd, self.pc.wrapping_add(size));
                next_pc = self.pc.wrapping_add((offset as i32 * unit) as u32);
            }
            Instr::Jalr(rd, rs1, imm) => {
                let target = self.reg(rs1).wrapping_add(imm as i32 as u32);
                self.set_reg(rd, self.pc.wrapping_add(size));
                next_pc = target;
            }
        }
        self.pc = next_pc;
        self.retired += 1;
        Ok(StepOutcome::Executed(instr))
    }

    /// Runs until halt or at most `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// See [`Cpu::step`].
    pub fn run(&mut self, mem: &mut Memory, max_steps: u64) -> Result<StepOutcome, CpuError> {
        for _ in 0..max_steps {
            if let StepOutcome::Halted = self.step(mem)? {
                return Ok(StepOutcome::Halted);
            }
        }
        Ok(StepOutcome::Executed(Instr::Nop))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_program(words: &[u32]) -> (Cpu, Memory) {
        let mut mem = Memory::new(4096);
        mem.load_image(0, words);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut mem, 10_000).unwrap();
        (cpu, mem)
    }

    #[test]
    fn arithmetic_and_immediates() {
        let r = Reg::new;
        let (cpu, _) = run_program(&[
            Instr::Addi(r(1), Reg::ZERO, 6).encode(),
            Instr::Addi(r(2), Reg::ZERO, 7).encode(),
            Instr::Alu(AluOp::Mul, r(3), r(1), r(2)).encode(),
            Instr::Alu(AluOp::Sub, r(4), r(3), r(1)).encode(),
            Instr::Halt.encode(),
        ]);
        assert_eq!(cpu.reg(Reg::new(3)), 42);
        assert_eq!(cpu.reg(Reg::new(4)), 36);
        assert!(cpu.is_halted());
        assert_eq!(cpu.retired(), 5);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (cpu, _) = run_program(&[
            Instr::Addi(Reg::ZERO, Reg::ZERO, 99).encode(),
            Instr::Halt.encode(),
        ]);
        assert_eq!(cpu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn loads_and_stores() {
        let r = Reg::new;
        let (cpu, mut mem) = run_program(&[
            Instr::Addi(r(1), Reg::ZERO, 0x100).encode(),
            Instr::Addi(r(2), Reg::ZERO, -1).encode(),
            Instr::Sw(r(2), r(1), 4).encode(),
            Instr::Lw(r(3), r(1), 4).encode(),
            Instr::Halt.encode(),
        ]);
        assert_eq!(cpu.reg(Reg::new(3)), u32::MAX);
        assert_eq!(mem.read_u32(0x104).unwrap(), u32::MAX);
    }

    #[test]
    fn branch_loop_counts_down() {
        let r = Reg::new;
        // r1 = 5; loop: r2 += 2; r1 -= 1; bne r1, r0, loop; halt
        let (cpu, _) = run_program(&[
            Instr::Addi(r(1), Reg::ZERO, 5).encode(),
            Instr::Addi(r(2), r(2), 2).encode(),
            Instr::Addi(r(1), r(1), -1).encode(),
            Instr::Branch(BranchCond::Ne, r(1), Reg::ZERO, -2).encode(),
            Instr::Halt.encode(),
        ]);
        assert_eq!(cpu.reg(Reg::new(2)), 10);
    }

    #[test]
    fn jal_and_jalr_implement_calls() {
        let r = Reg::new;
        // 0: jal ra, +3  (to 12)
        // 4: addi r1, r1, 1   (returned here)
        // 8: halt
        // 12: addi r2, r0, 9  (subroutine)
        // 16: jalr r0, ra, 0
        let (cpu, _) = run_program(&[
            Instr::Jal(Reg::RA, 3).encode(),
            Instr::Addi(r(1), r(1), 1).encode(),
            Instr::Halt.encode(),
            Instr::Addi(r(2), Reg::ZERO, 9).encode(),
            Instr::Jalr(Reg::ZERO, Reg::RA, 0).encode(),
        ]);
        assert_eq!(cpu.reg(Reg::new(2)), 9);
        assert_eq!(cpu.reg(Reg::new(1)), 1);
    }

    #[test]
    fn division_by_zero_follows_riscv_convention() {
        let r = Reg::new;
        let (cpu, _) = run_program(&[
            Instr::Addi(r(1), Reg::ZERO, 10).encode(),
            Instr::Alu(AluOp::Div, r(2), r(1), Reg::ZERO).encode(),
            Instr::Alu(AluOp::Rem, r(3), r(1), Reg::ZERO).encode(),
            Instr::Halt.encode(),
        ]);
        assert_eq!(cpu.reg(Reg::new(2)), u32::MAX);
        assert_eq!(cpu.reg(Reg::new(3)), 10);
    }

    #[test]
    fn signed_comparisons() {
        let r = Reg::new;
        let (cpu, _) = run_program(&[
            Instr::Addi(r(1), Reg::ZERO, -5).encode(),
            Instr::Addi(r(2), Reg::ZERO, 3).encode(),
            Instr::Alu(AluOp::Slt, r(3), r(1), r(2)).encode(),
            Instr::Alu(AluOp::Sltu, r(4), r(1), r(2)).encode(),
            Instr::Halt.encode(),
        ]);
        assert_eq!(cpu.reg(Reg::new(3)), 1); // -5 < 3 signed
        assert_eq!(cpu.reg(Reg::new(4)), 0); // 0xfff..b >= 3 unsigned
    }

    #[test]
    fn fetch_fault_is_reported() {
        let mut mem = Memory::new(8);
        mem.load_image(0, &[Instr::Nop.encode(), Instr::Nop.encode()]);
        let mut cpu = Cpu::new(0);
        cpu.step(&mut mem).unwrap();
        cpu.step(&mut mem).unwrap();
        let err = cpu.step(&mut mem).unwrap_err();
        assert!(matches!(err, CpuError::Mem(MemError::Unmapped { addr: 8 })));
    }

    #[test]
    fn halted_core_stays_halted() {
        let (mut cpu, mut mem) = run_program(&[Instr::Halt.encode()]);
        assert_eq!(cpu.step(&mut mem).unwrap(), StepOutcome::Halted);
        assert_eq!(cpu.retired(), 1);
    }

    /// Runs the same instruction list under both encodings and checks the
    /// final register files agree.
    fn run_both_isas(code: &[Instr]) -> (Cpu, Cpu) {
        let mut mem32 = Memory::new(4096);
        mem32.load_image(0, &IsaKind::Word32.encode_program(code));
        let mut cpu32 = Cpu::new(0);
        cpu32.run(&mut mem32, 10_000).unwrap();

        let mut mem16 = Memory::new(4096);
        mem16.load_image(0, &IsaKind::Comp16.encode_program(code));
        let mut cpu16 = Cpu::with_isa(0, IsaKind::Comp16);
        cpu16.run(&mut mem16, 10_000).unwrap();
        (cpu32, cpu16)
    }

    #[test]
    fn comp16_executes_the_branch_loop_identically() {
        let r = Reg::new;
        let code = [
            Instr::Addi(r(1), Reg::ZERO, 5),
            Instr::Nop, // compact (1 halfword): exercises offset rewriting
            Instr::Addi(r(2), r(2), 2),
            Instr::Addi(r(1), r(1), -1),
            Instr::Branch(BranchCond::Ne, r(1), Reg::ZERO, -3),
            Instr::Halt,
        ];
        let (cpu32, cpu16) = run_both_isas(&code);
        assert!(cpu16.is_halted());
        assert_eq!(cpu16.reg(Reg::new(2)), 10);
        assert_eq!(cpu32.retired(), cpu16.retired());
        for i in 0..16 {
            assert_eq!(cpu32.reg(Reg::new(i)), cpu16.reg(Reg::new(i)), "r{i}");
        }
    }

    #[test]
    fn comp16_calls_link_to_byte_addresses() {
        let r = Reg::new;
        // jal ra, sub ; addi r1,r1,1 ; halt ; sub: addi r2,r0,9 ; jalr r0,ra,0
        let code = [
            Instr::Jal(Reg::RA, 3),
            Instr::Addi(r(1), r(1), 1),
            Instr::Halt,
            Instr::Addi(r(2), Reg::ZERO, 9),
            Instr::Jalr(Reg::ZERO, Reg::RA, 0),
        ];
        let (cpu32, cpu16) = run_both_isas(&code);
        assert_eq!(cpu16.reg(Reg::new(2)), 9);
        assert_eq!(cpu16.reg(Reg::new(1)), 1);
        assert_eq!(cpu32.reg(Reg::new(1)), cpu16.reg(Reg::new(1)));
    }

    #[test]
    fn comp16_invalid_opcode_is_a_decode_fault_not_a_panic() {
        let mut mem = Memory::new(64);
        // Opcode 0x60 is undescribed; halfword 0x60 << 9.
        mem.load_image(0, &[(0x60u32) << 9]);
        let mut cpu = Cpu::with_isa(0, IsaKind::Comp16);
        let err = cpu.step(&mut mem).unwrap_err();
        assert!(matches!(err, CpuError::Decode(_)));
    }

    #[test]
    fn legacy_decoder_flag_changes_nothing_observable() {
        let r = Reg::new;
        let program = [
            Instr::Addi(r(1), Reg::ZERO, 6).encode(),
            Instr::Alu(AluOp::Mul, r(2), r(1), r(1)).encode(),
            Instr::Halt.encode(),
        ];
        let mut mem = Memory::new(4096);
        mem.load_image(0, &program);
        let mut cpu = Cpu::new(0);
        cpu.set_legacy_decode(true);
        assert!(cpu.legacy_decode());
        cpu.run(&mut mem, 100).unwrap();
        assert_eq!(cpu.reg(Reg::new(2)), 36);
    }
}
