//! Instruction-set architecture of the microprocessor model.
//!
//! A small RISC in the RV32I mould: 16 general registers (`r0` wired to
//! zero), load/store architecture. The operation set is exactly what the
//! mini-C code generator needs — no more.
//!
//! Since PR 9 the architecture is *described*, not hand-written: the
//! [`ISA`] table is the single in-tree declarative description of every
//! operation (opcode, mnemonic, operand kind), and the encoder, the
//! decoder, the assembler's mnemonic lookup and the disassembly printer
//! are all derived from it. Decoding is a table walk through a
//! const-built 256-entry LUT ([`op_desc`]), which is what the SoC hot
//! loop executes.
//!
//! Two *encodings* of the same operation set exist, selected by
//! [`IsaKind`]:
//!
//! * [`IsaKind::Word32`] — fixed 32-bit words:
//!   `[31:24] opcode | [23:20] rd | [19:16] rs1 | [15:12] rs2 | [15:0] imm`
//!   (R-type instructions use the `rs2` nibble, I/B-types the 16-bit
//!   immediate, so `rd`/`rs1` never overlap `imm`). Branch/jump offsets
//!   count 4-byte words.
//! * [`IsaKind::Comp16`] — a compressed variable-width encoding. The
//!   first halfword is `[15:9] opcode | [8:5] rd | [4:1] rs1 | [0] ext`;
//!   when `ext` is set a second halfword carries the full 16-bit
//!   immediate field, otherwise the immediate is implicitly zero and the
//!   instruction is 2 bytes. Control-flow instructions (branch, `jal`,
//!   `jalr`) are always extended so every instruction's size is known
//!   locally — program layout needs no relaxation fixpoint. Branch/jump
//!   offsets count 2-byte halfwords.
//!
//! Both encodings share the operation semantics, the [`Instr`] type and
//! the opcode space; the compressed variant is data in the same table,
//! not a fork.

use std::fmt;

/// A register index `r0`–`r15`. `r0` always reads zero.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(u8);

impl Reg {
    /// The zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return-value register (software convention).
    pub const RV: Reg = Reg(12);
    /// Frame pointer (software convention).
    pub const FP: Reg = Reg(13);
    /// Stack pointer (software convention).
    pub const SP: Reg = Reg(14);
    /// Link register (software convention).
    pub const RA: Reg = Reg(15);

    /// Creates a register index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is 16 or larger.
    pub fn new(index: u8) -> Reg {
        assert!(index < 16, "register index out of range");
        Reg(index)
    }

    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Three-register ALU operations.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by rs2 & 31).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Signed less-than (result 0/1).
    Slt,
    /// Unsigned less-than (result 0/1).
    Sltu,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (division by zero yields all-ones, RISC-V style).
    Div,
    /// Signed remainder (remainder by zero yields the dividend).
    Rem,
    /// Unsigned division.
    Divu,
    /// Unsigned remainder.
    Remu,
}

/// Branch conditions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// One machine instruction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// `rd = rs1 <op> rs2`
    Alu(AluOp, Reg, Reg, Reg),
    /// `rd = rs1 + sign_extend(imm)`
    Addi(Reg, Reg, i16),
    /// `rd = rs1 & zero_extend(imm)`
    Andi(Reg, Reg, u16),
    /// `rd = rs1 | zero_extend(imm)`
    Ori(Reg, Reg, u16),
    /// `rd = rs1 ^ zero_extend(imm)`
    Xori(Reg, Reg, u16),
    /// `rd = rs1 <u zero_extend(imm)` (result 0/1)
    Sltiu(Reg, Reg, u16),
    /// `rd = imm << 16`
    Lui(Reg, u16),
    /// `rd = mem32[rs1 + sign_extend(imm)]`
    Lw(Reg, Reg, i16),
    /// `mem32[rs1 + sign_extend(imm)] = rd` (note: `rd` field holds the
    /// stored register)
    Sw(Reg, Reg, i16),
    /// Branch to `pc + unit*offset` when `rs1 <cond> rs2` — offset in
    /// encoding units (words on `Word32`, halfwords on `Comp16`).
    Branch(BranchCond, Reg, Reg, i16),
    /// `rd = pc + size; pc += unit*offset`
    Jal(Reg, i16),
    /// `rd = pc + size; pc = rs1 + sign_extend(imm)` (absolute bytes)
    Jalr(Reg, Reg, i16),
    /// Stop the processor.
    Halt,
    /// No operation.
    Nop,
}

/// An error decoding an instruction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The undecodable fetch unit — the full 32-bit word on `Word32`,
    /// the zero-extended leading halfword on `Comp16`.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

/// Operand/semantics class of one described operation. Together with the
/// fixed field layout this fully determines how an instruction of that
/// kind is assembled, encoded, decoded and printed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// No operands, no effect.
    Nop,
    /// No operands, stops the core.
    Halt,
    /// R-type: `rd, rs1, rs2` (rs2 rides in the high immediate nibble).
    Alu(AluOp),
    /// I-type, signed immediate: `rd, rs1, simm`.
    Addi,
    /// I-type, unsigned immediate: `rd, rs1, uimm`.
    Andi,
    /// I-type, unsigned immediate.
    Ori,
    /// I-type, unsigned immediate.
    Xori,
    /// I-type, unsigned immediate.
    Sltiu,
    /// U-type: `rd, uimm` (`rd = uimm << 16`).
    Lui,
    /// Load: `rd, simm(rs1)`.
    Lw,
    /// Store: `rs2, simm(rs1)` (stored register in the rd field).
    Sw,
    /// B-type: `rs1, rs2, offset` (rs2 in the rd field).
    Branch(BranchCond),
    /// J-type: `rd, offset`.
    Jal,
    /// Indirect jump: `rd, simm(rs1)`.
    Jalr,
}

/// One row of the declarative ISA description.
#[derive(Copy, Clone, Debug)]
pub struct OpDesc {
    /// The opcode byte (7 bits used; shared by both encodings).
    pub opcode: u8,
    /// Assembly mnemonic (drives the assembler and the printer).
    pub mnemonic: &'static str,
    /// Operand/semantics class.
    pub kind: OpKind,
}

const fn op(opcode: u8, mnemonic: &'static str, kind: OpKind) -> OpDesc {
    OpDesc {
        opcode,
        mnemonic,
        kind,
    }
}

/// The declarative ISA description: every operation the machine has.
///
/// Opcode layout (all ≤ `0x7f`, so both the 8-bit `Word32` field and the
/// 7-bit `Comp16` field hold every opcode):
/// `0x00` nop · `0x01..=0x0f` ALU · `0x20..=0x25` immediates ·
/// `0x30/0x31` memory · `0x40..=0x45` branches · `0x50/0x51` jumps ·
/// `0x7f` halt.
pub const ISA: &[OpDesc] = &[
    op(0x00, "nop", OpKind::Nop),
    op(0x01, "add", OpKind::Alu(AluOp::Add)),
    op(0x02, "sub", OpKind::Alu(AluOp::Sub)),
    op(0x03, "and", OpKind::Alu(AluOp::And)),
    op(0x04, "or", OpKind::Alu(AluOp::Or)),
    op(0x05, "xor", OpKind::Alu(AluOp::Xor)),
    op(0x06, "sll", OpKind::Alu(AluOp::Sll)),
    op(0x07, "srl", OpKind::Alu(AluOp::Srl)),
    op(0x08, "sra", OpKind::Alu(AluOp::Sra)),
    op(0x09, "slt", OpKind::Alu(AluOp::Slt)),
    op(0x0a, "sltu", OpKind::Alu(AluOp::Sltu)),
    op(0x0b, "mul", OpKind::Alu(AluOp::Mul)),
    op(0x0c, "div", OpKind::Alu(AluOp::Div)),
    op(0x0d, "rem", OpKind::Alu(AluOp::Rem)),
    op(0x0e, "divu", OpKind::Alu(AluOp::Divu)),
    op(0x0f, "remu", OpKind::Alu(AluOp::Remu)),
    op(0x20, "addi", OpKind::Addi),
    op(0x21, "andi", OpKind::Andi),
    op(0x22, "ori", OpKind::Ori),
    op(0x23, "xori", OpKind::Xori),
    op(0x24, "sltiu", OpKind::Sltiu),
    op(0x25, "lui", OpKind::Lui),
    op(0x30, "lw", OpKind::Lw),
    op(0x31, "sw", OpKind::Sw),
    op(0x40, "beq", OpKind::Branch(BranchCond::Eq)),
    op(0x41, "bne", OpKind::Branch(BranchCond::Ne)),
    op(0x42, "blt", OpKind::Branch(BranchCond::Lt)),
    op(0x43, "bge", OpKind::Branch(BranchCond::Ge)),
    op(0x44, "bltu", OpKind::Branch(BranchCond::Ltu)),
    op(0x45, "bgeu", OpKind::Branch(BranchCond::Geu)),
    op(0x50, "jal", OpKind::Jal),
    op(0x51, "jalr", OpKind::Jalr),
    op(0x7f, "halt", OpKind::Halt),
];

/// Opcode → `ISA` index + 1, zero meaning "no such opcode". Built from
/// the description at compile time so decoding is one bounds-check-free
/// load.
const DECODE_LUT: [u8; 256] = build_decode_lut();

const fn build_decode_lut() -> [u8; 256] {
    let mut lut = [0u8; 256];
    let mut i = 0;
    while i < ISA.len() {
        let opcode = ISA[i].opcode as usize;
        assert!(lut[opcode] == 0, "duplicate opcode in ISA description");
        assert!(ISA[i].opcode <= 0x7f, "opcode exceeds the 7-bit space");
        lut[opcode] = (i + 1) as u8;
        i += 1;
    }
    lut
}

/// Looks up an opcode byte in the description table.
#[inline]
pub fn op_desc(opcode: u8) -> Option<&'static OpDesc> {
    match DECODE_LUT[opcode as usize] {
        0 => None,
        i => Some(&ISA[(i - 1) as usize]),
    }
}

/// Finds a described operation by mnemonic (the assembler's lookup).
pub fn op_by_mnemonic(mnemonic: &str) -> Option<&'static OpDesc> {
    ISA.iter().find(|d| d.mnemonic == mnemonic)
}

const fn kind_matches(a: OpKind, b: OpKind) -> bool {
    match (a, b) {
        (OpKind::Nop, OpKind::Nop)
        | (OpKind::Halt, OpKind::Halt)
        | (OpKind::Addi, OpKind::Addi)
        | (OpKind::Andi, OpKind::Andi)
        | (OpKind::Ori, OpKind::Ori)
        | (OpKind::Xori, OpKind::Xori)
        | (OpKind::Sltiu, OpKind::Sltiu)
        | (OpKind::Lui, OpKind::Lui)
        | (OpKind::Lw, OpKind::Lw)
        | (OpKind::Sw, OpKind::Sw)
        | (OpKind::Jal, OpKind::Jal)
        | (OpKind::Jalr, OpKind::Jalr) => true,
        (OpKind::Alu(x), OpKind::Alu(y)) => x as u8 == y as u8,
        (OpKind::Branch(x), OpKind::Branch(y)) => x as u8 == y as u8,
        _ => false,
    }
}

/// Opcode of a kind, looked up in the description at compile time.
const fn opcode_of(kind: OpKind) -> u8 {
    let mut i = 0;
    while i < ISA.len() {
        if kind_matches(ISA[i].kind, kind) {
            return ISA[i].opcode;
        }
        i += 1;
    }
    panic!("operation missing from the ISA description")
}

fn pack(opcode: u8, rd: Reg, rs1: Reg, imm: u16) -> u32 {
    ((opcode as u32) << 24) | ((rd.index() as u32) << 20) | ((rs1.index() as u32) << 16) | imm as u32
}

impl Instr {
    /// Projects the instruction onto the shared field layout:
    /// `(kind, rd-slot, rs1-slot, imm)`. Both encodings pack exactly
    /// these four fields.
    fn fields(self) -> (OpKind, Reg, Reg, u16) {
        match self {
            Instr::Nop => (OpKind::Nop, Reg::ZERO, Reg::ZERO, 0),
            Instr::Halt => (OpKind::Halt, Reg::ZERO, Reg::ZERO, 0),
            Instr::Alu(op, rd, rs1, rs2) => {
                (OpKind::Alu(op), rd, rs1, (rs2.index() as u16) << 12)
            }
            Instr::Addi(rd, rs1, imm) => (OpKind::Addi, rd, rs1, imm as u16),
            Instr::Andi(rd, rs1, imm) => (OpKind::Andi, rd, rs1, imm),
            Instr::Ori(rd, rs1, imm) => (OpKind::Ori, rd, rs1, imm),
            Instr::Xori(rd, rs1, imm) => (OpKind::Xori, rd, rs1, imm),
            Instr::Sltiu(rd, rs1, imm) => (OpKind::Sltiu, rd, rs1, imm),
            Instr::Lui(rd, imm) => (OpKind::Lui, rd, Reg::ZERO, imm),
            Instr::Lw(rd, rs1, imm) => (OpKind::Lw, rd, rs1, imm as u16),
            Instr::Sw(rs2, rs1, imm) => (OpKind::Sw, rs2, rs1, imm as u16),
            // The branch rd slot holds rs2.
            Instr::Branch(cond, rs1, rs2, offset) => {
                (OpKind::Branch(cond), rs2, rs1, offset as u16)
            }
            Instr::Jal(rd, offset) => (OpKind::Jal, rd, Reg::ZERO, offset as u16),
            Instr::Jalr(rd, rs1, imm) => (OpKind::Jalr, rd, rs1, imm as u16),
        }
    }

    /// Rebuilds an instruction from the shared field layout.
    fn from_fields(kind: OpKind, rd: Reg, rs1: Reg, imm: u16) -> Instr {
        let simm = imm as i16;
        match kind {
            OpKind::Nop => Instr::Nop,
            OpKind::Halt => Instr::Halt,
            OpKind::Alu(op) => Instr::Alu(op, rd, rs1, Reg(((imm >> 12) & 0xf) as u8)),
            OpKind::Addi => Instr::Addi(rd, rs1, simm),
            OpKind::Andi => Instr::Andi(rd, rs1, imm),
            OpKind::Ori => Instr::Ori(rd, rs1, imm),
            OpKind::Xori => Instr::Xori(rd, rs1, imm),
            OpKind::Sltiu => Instr::Sltiu(rd, rs1, imm),
            OpKind::Lui => Instr::Lui(rd, imm),
            OpKind::Lw => Instr::Lw(rd, rs1, simm),
            OpKind::Sw => Instr::Sw(rd, rs1, simm),
            OpKind::Branch(cond) => Instr::Branch(cond, rs1, rd, simm),
            OpKind::Jal => Instr::Jal(rd, simm),
            OpKind::Jalr => Instr::Jalr(rd, rs1, simm),
        }
    }

    /// The table row describing this instruction's operation.
    pub fn desc(self) -> &'static OpDesc {
        let (kind, ..) = self.fields();
        op_desc(opcode_of(kind)).expect("every kind is described")
    }

    /// Encodes the instruction into a 32-bit `Word32` word.
    pub fn encode(self) -> u32 {
        let (kind, rd, rs1, imm) = self.fields();
        pack(opcode_of(kind), rd, rs1, imm)
    }

    /// Decodes a 32-bit `Word32` word by walking the description table.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for unknown opcodes.
    #[inline]
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let desc = op_desc((word >> 24) as u8).ok_or(DecodeError { word })?;
        let rd = Reg(((word >> 20) & 0xf) as u8);
        let rs1 = Reg(((word >> 16) & 0xf) as u8);
        let imm = (word & 0xffff) as u16;
        Ok(Instr::from_fields(desc.kind, rd, rs1, imm))
    }

    /// The pre-table hand-written decoder, kept verbatim as the baseline
    /// for `repro --monitor-bench`'s decode comparison. Not used by any
    /// flow; semantics are identical to [`Instr::decode`].
    pub fn decode_legacy(word: u32) -> Result<Instr, DecodeError> {
        use AluOp::*;
        use BranchCond::*;
        let op = word >> 24;
        let rd = Reg(((word >> 20) & 0xf) as u8);
        let rs1 = Reg(((word >> 16) & 0xf) as u8);
        let rs2 = Reg(((word >> 12) & 0xf) as u8);
        let imm = (word & 0xffff) as u16;
        let simm = imm as i16;
        Ok(match op {
            0x00 => Instr::Nop,
            0x7f => Instr::Halt,
            o @ 0x01..=0x0f => {
                let alu = match o - 0x01 {
                    0 => Add,
                    1 => Sub,
                    2 => And,
                    3 => Or,
                    4 => Xor,
                    5 => Sll,
                    6 => Srl,
                    7 => Sra,
                    8 => Slt,
                    9 => Sltu,
                    10 => Mul,
                    11 => Div,
                    12 => Rem,
                    13 => Divu,
                    _ => Remu,
                };
                Instr::Alu(alu, rd, rs1, rs2)
            }
            0x20 => Instr::Addi(rd, rs1, simm),
            0x21 => Instr::Andi(rd, rs1, imm),
            0x22 => Instr::Ori(rd, rs1, imm),
            0x23 => Instr::Xori(rd, rs1, imm),
            0x24 => Instr::Sltiu(rd, rs1, imm),
            0x25 => Instr::Lui(rd, imm),
            0x30 => Instr::Lw(rd, rs1, simm),
            0x31 => Instr::Sw(rd, rs1, simm),
            o @ 0x40..=0x45 => {
                let cond = match o - 0x40 {
                    0 => Eq,
                    1 => Ne,
                    2 => Lt,
                    3 => Ge,
                    4 => Ltu,
                    _ => Geu,
                };
                Instr::Branch(cond, rs1, rd, simm)
            }
            0x50 => Instr::Jal(rd, simm),
            0x51 => Instr::Jalr(rd, rs1, simm),
            _ => return Err(DecodeError { word }),
        })
    }

    /// Whether this operation is always emitted in extended (4-byte) form
    /// under `Comp16`. Control flow always extends so instruction sizes
    /// are position-independent and layout needs no relaxation fixpoint.
    fn c16_always_ext(kind: OpKind) -> bool {
        matches!(kind, OpKind::Branch(_) | OpKind::Jal | OpKind::Jalr)
    }

    /// Encodes the instruction under `Comp16`: the leading halfword and,
    /// when extended, the immediate halfword.
    pub fn encode_c16(self) -> (u16, Option<u16>) {
        let (kind, rd, rs1, imm) = self.fields();
        let ext = Self::c16_always_ext(kind) || imm != 0;
        let lo = ((opcode_of(kind) as u16) << 9)
            | ((rd.index() as u16) << 5)
            | ((rs1.index() as u16) << 1)
            | u16::from(ext);
        (lo, ext.then_some(imm))
    }

    /// Size of this instruction under `Comp16`, in halfwords (1 or 2).
    pub fn c16_halfwords(self) -> u32 {
        let (_, hi) = self.encode_c16();
        if hi.is_some() {
            2
        } else {
            1
        }
    }

    /// Inspects a `Comp16` leading halfword: validates the opcode and
    /// returns whether an immediate halfword follows.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for unknown opcodes (the fetcher then never
    /// reads past the invalid halfword).
    #[inline]
    pub fn c16_ext(lo: u16) -> Result<bool, DecodeError> {
        op_desc((lo >> 9) as u8)
            .ok_or(DecodeError { word: lo as u32 })
            .map(|_| lo & 1 == 1)
    }

    /// Decodes a `Comp16` instruction from its leading halfword and the
    /// (possibly absent, then ignored) immediate halfword.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for unknown opcodes.
    #[inline]
    pub fn decode_c16(lo: u16, hi: u16) -> Result<Instr, DecodeError> {
        let desc = op_desc((lo >> 9) as u8).ok_or(DecodeError { word: lo as u32 })?;
        let rd = Reg(((lo >> 5) & 0xf) as u8);
        let rs1 = Reg(((lo >> 1) & 0xf) as u8);
        let imm = if lo & 1 == 1 { hi } else { 0 };
        Ok(Instr::from_fields(desc.kind, rd, rs1, imm))
    }
}

/// Which encoding of the described operation set a core executes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum IsaKind {
    /// Fixed 32-bit instruction words (the default; all shipped
    /// fingerprints are computed under it).
    #[default]
    Word32,
    /// Compressed variable-width (16/32-bit) encoding of the same
    /// operations.
    Comp16,
}

impl IsaKind {
    /// Stable display/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            IsaKind::Word32 => "word32",
            IsaKind::Comp16 => "comp16",
        }
    }

    /// Parses a CLI name produced by [`IsaKind::name`].
    pub fn from_name(name: &str) -> Option<IsaKind> {
        match name {
            "word32" => Some(IsaKind::Word32),
            "comp16" => Some(IsaKind::Comp16),
            _ => None,
        }
    }

    /// Stable wire byte for job specs.
    pub fn to_byte(self) -> u8 {
        match self {
            IsaKind::Word32 => 0,
            IsaKind::Comp16 => 1,
        }
    }

    /// Inverse of [`IsaKind::to_byte`].
    pub fn from_byte(b: u8) -> Option<IsaKind> {
        match b {
            0 => Some(IsaKind::Word32),
            1 => Some(IsaKind::Comp16),
            _ => None,
        }
    }

    /// Bytes per branch/jump offset unit (the fetch granule).
    pub fn offset_unit(self) -> u32 {
        match self {
            IsaKind::Word32 => 4,
            IsaKind::Comp16 => 2,
        }
    }

    /// Encodes a whole program into the memory image (a little-endian
    /// word vector for [`crate::Memory::load_image`]).
    ///
    /// The code generator emits branch/`jal` offsets in *instruction
    /// index* units. `Word32` maps one instruction to one word, so those
    /// offsets are already word offsets. `Comp16` lays the instructions
    /// out at their variable widths and rewrites each offset to the
    /// halfword delta between the source and target instructions.
    ///
    /// # Panics
    ///
    /// Panics if a rewritten `Comp16` offset leaves the i16 range or a
    /// branch targets outside the program — both code-generator bugs.
    pub fn encode_program(self, code: &[Instr]) -> Vec<u32> {
        match self {
            IsaKind::Word32 => code.iter().map(|i| i.encode()).collect(),
            IsaKind::Comp16 => {
                // Sizes are instruction-local (control flow always
                // extends), so one prefix-sum pass fixes every position.
                let mut pos = Vec::with_capacity(code.len() + 1);
                let mut at = 0u32;
                for instr in code {
                    pos.push(at);
                    at += instr.c16_halfwords();
                }
                pos.push(at);
                let delta = |i: usize, offset: i16| -> i16 {
                    let target = i as i64 + offset as i64;
                    assert!(
                        (0..=code.len() as i64).contains(&target),
                        "branch target outside the program"
                    );
                    let d = pos[target as usize] as i64 - pos[i] as i64;
                    i16::try_from(d).expect("comp16 branch offset out of range")
                };
                let mut half = Vec::with_capacity(at as usize);
                for (i, instr) in code.iter().enumerate() {
                    let translated = match *instr {
                        Instr::Branch(c, rs1, rs2, off) => {
                            Instr::Branch(c, rs1, rs2, delta(i, off))
                        }
                        Instr::Jal(rd, off) => Instr::Jal(rd, delta(i, off)),
                        other => other,
                    };
                    let (lo, hi) = translated.encode_c16();
                    half.push(lo);
                    if let Some(h) = hi {
                        half.push(h);
                    }
                }
                if half.len() % 2 == 1 {
                    half.push(0);
                }
                half.chunks_exact(2)
                    .map(|p| p[0] as u32 | ((p[1] as u32) << 16))
                    .collect()
            }
        }
    }

    /// Size in bytes of the encoded program (text segment).
    pub fn text_bytes(self, code: &[Instr]) -> u32 {
        match self {
            IsaKind::Word32 => 4 * code.len() as u32,
            IsaKind::Comp16 => 2 * code.iter().map(|i| i.c16_halfwords()).sum::<u32>(),
        }
    }
}

impl fmt::Display for IsaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let desc = self.desc();
        let m = desc.mnemonic;
        match *self {
            Instr::Alu(_, rd, rs1, rs2) => write!(f, "{m} {rd}, {rs1}, {rs2}"),
            Instr::Addi(rd, rs1, imm) => write!(f, "{m} {rd}, {rs1}, {imm}"),
            Instr::Andi(rd, rs1, imm)
            | Instr::Ori(rd, rs1, imm)
            | Instr::Xori(rd, rs1, imm)
            | Instr::Sltiu(rd, rs1, imm) => write!(f, "{m} {rd}, {rs1}, {imm}"),
            Instr::Lui(rd, imm) => write!(f, "{m} {rd}, {imm}"),
            Instr::Lw(rd, rs1, imm) => write!(f, "{m} {rd}, {imm}({rs1})"),
            Instr::Sw(rs2, rs1, imm) => write!(f, "{m} {rs2}, {imm}({rs1})"),
            Instr::Branch(_, rs1, rs2, offset) => write!(f, "{m} {rs1}, {rs2}, {offset}"),
            Instr::Jal(rd, offset) => write!(f, "{m} {rd}, {offset}"),
            Instr::Jalr(rd, rs1, imm) => write!(f, "{m} {rd}, {imm}({rs1})"),
            Instr::Halt | Instr::Nop => f.write_str(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instrs() -> Vec<Instr> {
        use AluOp::*;
        use BranchCond::*;
        let r = Reg::new;
        vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Alu(Add, r(1), r(2), r(3)),
            Instr::Alu(Sub, r(15), r(0), r(7)),
            Instr::Alu(Mul, r(4), r(4), r(4)),
            Instr::Alu(Divu, r(5), r(6), r(7)),
            Instr::Alu(Remu, r(5), r(6), r(7)),
            Instr::Alu(Sra, r(9), r(10), r(11)),
            Instr::Addi(r(1), r(2), -5),
            Instr::Addi(r(1), r(2), 32767),
            Instr::Andi(r(3), r(3), 0xffff),
            Instr::Ori(r(3), r(3), 0x00ff),
            Instr::Xori(r(3), r(3), 1),
            Instr::Sltiu(r(2), r(2), 1),
            Instr::Lui(r(8), 0xdead),
            Instr::Lw(r(1), r(14), -4),
            Instr::Sw(r(1), r(14), 8),
            Instr::Branch(Eq, r(1), r(2), -10),
            Instr::Branch(Geu, r(3), r(0), 100),
            Instr::Jal(r(15), 42),
            Instr::Jalr(r(0), r(15), 0),
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for instr in all_sample_instrs() {
            let word = instr.encode();
            let back = Instr::decode(word).unwrap();
            assert_eq!(instr, back, "word {word:#010x}");
        }
    }

    #[test]
    fn table_decode_matches_legacy_decoder() {
        for instr in all_sample_instrs() {
            let word = instr.encode();
            assert_eq!(Instr::decode(word), Instr::decode_legacy(word));
        }
        for opcode in 0u32..=255 {
            let word = (opcode << 24) | 0x0012_3456;
            assert_eq!(Instr::decode(word), Instr::decode_legacy(word), "{word:#x}");
        }
    }

    #[test]
    fn c16_round_trips() {
        for instr in all_sample_instrs() {
            let (lo, hi) = instr.encode_c16();
            let ext = Instr::c16_ext(lo).unwrap();
            assert_eq!(ext, hi.is_some());
            let back = Instr::decode_c16(lo, hi.unwrap_or(0)).unwrap();
            assert_eq!(instr, back, "halfword {lo:#06x}");
        }
    }

    #[test]
    fn c16_compacts_zero_immediates_but_never_control_flow() {
        assert_eq!(Instr::Nop.c16_halfwords(), 1);
        assert_eq!(Instr::Addi(Reg::new(1), Reg::new(2), 0).c16_halfwords(), 1);
        assert_eq!(Instr::Addi(Reg::new(1), Reg::new(2), 5).c16_halfwords(), 2);
        assert_eq!(
            Instr::Branch(BranchCond::Eq, Reg::ZERO, Reg::ZERO, 0).c16_halfwords(),
            2
        );
        assert_eq!(Instr::Jal(Reg::RA, 0).c16_halfwords(), 2);
        assert_eq!(Instr::Jalr(Reg::ZERO, Reg::RA, 0).c16_halfwords(), 2);
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let err = Instr::decode(0x6000_0000).unwrap_err();
        assert_eq!(err.word, 0x6000_0000);
        assert!(err.to_string().contains("invalid instruction"));
        let lo = 0x60u16 << 9;
        assert!(Instr::c16_ext(lo).is_err());
        assert_eq!(Instr::decode_c16(lo, 0).unwrap_err().word, lo as u32);
    }

    #[test]
    fn description_table_is_well_formed() {
        // Every opcode resolves back to its own row; mnemonics unique.
        for desc in ISA {
            assert_eq!(op_desc(desc.opcode).unwrap().mnemonic, desc.mnemonic);
            assert_eq!(op_by_mnemonic(desc.mnemonic).unwrap().opcode, desc.opcode);
        }
        assert!(op_desc(0x60).is_none());
        assert!(op_by_mnemonic("bogus").is_none());
    }

    #[test]
    fn comp16_program_encoding_translates_offsets() {
        let r = Reg::new;
        // addi r1,r0,5 (ext) ; loop: addi r1,r1,-1 (ext) ; nop (compact) ;
        // bne r1,r0,loop → instruction offset -2, halfword delta -3.
        let code = [
            Instr::Addi(r(1), Reg::ZERO, 5),
            Instr::Addi(r(1), r(1), -1),
            Instr::Nop,
            Instr::Branch(BranchCond::Ne, r(1), Reg::ZERO, -2),
            Instr::Halt,
        ];
        let words = IsaKind::Comp16.encode_program(&code);
        // Halfwords: 2 + 2 + 1 + 2 + 1 = 8 → 4 words.
        assert_eq!(words.len(), 4);
        // The branch starts at halfword 5; its target is halfword 2.
        let lo = (words[2] >> 16) as u16;
        let hi = (words[3] & 0xffff) as u16;
        let back = Instr::decode_c16(lo, hi).unwrap();
        assert_eq!(
            back,
            Instr::Branch(BranchCond::Ne, r(1), Reg::ZERO, -3),
            "offset must be rewritten to halfword units"
        );
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn register_16_is_rejected() {
        let _ = Reg::new(16);
    }

    #[test]
    fn display_is_readable() {
        let i = Instr::Lw(Reg::new(1), Reg::SP, -4);
        assert_eq!(i.to_string(), "lw r1, -4(r14)");
        let b = Instr::Branch(BranchCond::Ne, Reg::new(1), Reg::new(2), 3);
        assert_eq!(b.to_string(), "bne r1, r2, 3");
    }

    #[test]
    fn negative_immediates_survive_encoding() {
        let i = Instr::Addi(Reg::new(1), Reg::new(1), -32768);
        assert_eq!(Instr::decode(i.encode()).unwrap(), i);
        let b = Instr::Branch(BranchCond::Eq, Reg::ZERO, Reg::ZERO, -1);
        assert_eq!(Instr::decode(b.encode()).unwrap(), b);
    }

    #[test]
    fn isa_kind_names_and_bytes_round_trip() {
        for kind in [IsaKind::Word32, IsaKind::Comp16] {
            assert_eq!(IsaKind::from_name(kind.name()), Some(kind));
            assert_eq!(IsaKind::from_byte(kind.to_byte()), Some(kind));
        }
        assert_eq!(IsaKind::from_name("thumb"), None);
        assert_eq!(IsaKind::from_byte(9), None);
    }
}
