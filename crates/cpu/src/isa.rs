//! Instruction-set architecture of the microprocessor model.
//!
//! A small 32-bit RISC in the RV32I mould: 16 general registers (`r0` wired
//! to zero), fixed 32-bit instruction words, load/store architecture. The
//! set is exactly what the mini-C code generator needs — no more.
//!
//! Encoding (`u32`): `[31:24] opcode | [23:20] rd | [19:16] rs1 |
//! [15:12] rs2 | [15:0] imm` — R-type instructions use the `rs2` nibble,
//! I/B-types the 16-bit immediate (so `rd`/`rs1` never overlap `imm`).

use std::fmt;

/// A register index `r0`–`r15`. `r0` always reads zero.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(u8);

impl Reg {
    /// The zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return-value register (software convention).
    pub const RV: Reg = Reg(12);
    /// Frame pointer (software convention).
    pub const FP: Reg = Reg(13);
    /// Stack pointer (software convention).
    pub const SP: Reg = Reg(14);
    /// Link register (software convention).
    pub const RA: Reg = Reg(15);

    /// Creates a register index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is 16 or larger.
    pub fn new(index: u8) -> Reg {
        assert!(index < 16, "register index out of range");
        Reg(index)
    }

    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Three-register ALU operations.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by rs2 & 31).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Signed less-than (result 0/1).
    Slt,
    /// Unsigned less-than (result 0/1).
    Sltu,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (division by zero yields all-ones, RISC-V style).
    Div,
    /// Signed remainder (remainder by zero yields the dividend).
    Rem,
    /// Unsigned division.
    Divu,
    /// Unsigned remainder.
    Remu,
}

/// Branch conditions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// One machine instruction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// `rd = rs1 <op> rs2`
    Alu(AluOp, Reg, Reg, Reg),
    /// `rd = rs1 + sign_extend(imm)`
    Addi(Reg, Reg, i16),
    /// `rd = rs1 & zero_extend(imm)`
    Andi(Reg, Reg, u16),
    /// `rd = rs1 | zero_extend(imm)`
    Ori(Reg, Reg, u16),
    /// `rd = rs1 ^ zero_extend(imm)`
    Xori(Reg, Reg, u16),
    /// `rd = rs1 <u zero_extend(imm)` (result 0/1)
    Sltiu(Reg, Reg, u16),
    /// `rd = imm << 16`
    Lui(Reg, u16),
    /// `rd = mem32[rs1 + sign_extend(imm)]`
    Lw(Reg, Reg, i16),
    /// `mem32[rs1 + sign_extend(imm)] = rd` (note: `rd` field holds the
    /// stored register)
    Sw(Reg, Reg, i16),
    /// Branch to `pc + 4*offset` when `rs1 <cond> rs2` — offset in words.
    Branch(BranchCond, Reg, Reg, i16),
    /// `rd = pc + 4; pc += 4*offset`
    Jal(Reg, i16),
    /// `rd = pc + 4; pc = rs1 + sign_extend(imm)`
    Jalr(Reg, Reg, i16),
    /// Stop the processor.
    Halt,
    /// No operation.
    Nop,
}

/// An error decoding a 32-bit instruction word.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Opcode space.
const OP_ALU_BASE: u32 = 0x01; // 0x01..=0x0f: one per AluOp
const OP_ADDI: u32 = 0x20;
const OP_ANDI: u32 = 0x21;
const OP_ORI: u32 = 0x22;
const OP_XORI: u32 = 0x23;
const OP_SLTIU: u32 = 0x24;
const OP_LUI: u32 = 0x25;
const OP_LW: u32 = 0x30;
const OP_SW: u32 = 0x31;
const OP_BRANCH_BASE: u32 = 0x40; // 0x40..=0x45: one per BranchCond
const OP_JAL: u32 = 0x50;
const OP_JALR: u32 = 0x51;
const OP_HALT: u32 = 0x7f;
const OP_NOP: u32 = 0x00;

fn alu_code(op: AluOp) -> u32 {
    use AluOp::*;
    match op {
        Add => 0,
        Sub => 1,
        And => 2,
        Or => 3,
        Xor => 4,
        Sll => 5,
        Srl => 6,
        Sra => 7,
        Slt => 8,
        Sltu => 9,
        Mul => 10,
        Div => 11,
        Rem => 12,
        Divu => 13,
        Remu => 14,
    }
}

fn alu_from_code(code: u32) -> Option<AluOp> {
    use AluOp::*;
    Some(match code {
        0 => Add,
        1 => Sub,
        2 => And,
        3 => Or,
        4 => Xor,
        5 => Sll,
        6 => Srl,
        7 => Sra,
        8 => Slt,
        9 => Sltu,
        10 => Mul,
        11 => Div,
        12 => Rem,
        13 => Divu,
        14 => Remu,
        _ => return None,
    })
}

fn branch_code(cond: BranchCond) -> u32 {
    use BranchCond::*;
    match cond {
        Eq => 0,
        Ne => 1,
        Lt => 2,
        Ge => 3,
        Ltu => 4,
        Geu => 5,
    }
}

fn branch_from_code(code: u32) -> Option<BranchCond> {
    use BranchCond::*;
    Some(match code {
        0 => Eq,
        1 => Ne,
        2 => Lt,
        3 => Ge,
        4 => Ltu,
        5 => Geu,
        _ => return None,
    })
}

fn pack(op: u32, rd: Reg, rs1: Reg, imm: u16) -> u32 {
    (op << 24) | ((rd.index() as u32) << 20) | ((rs1.index() as u32) << 16) | imm as u32
}

impl Instr {
    /// Encodes the instruction into a 32-bit word.
    pub fn encode(self) -> u32 {
        match self {
            Instr::Alu(op, rd, rs1, rs2) => pack(
                OP_ALU_BASE + alu_code(op),
                rd,
                rs1,
                (rs2.index() as u16) << 12,
            ),
            Instr::Addi(rd, rs1, imm) => pack(OP_ADDI, rd, rs1, imm as u16),
            Instr::Andi(rd, rs1, imm) => pack(OP_ANDI, rd, rs1, imm),
            Instr::Ori(rd, rs1, imm) => pack(OP_ORI, rd, rs1, imm),
            Instr::Xori(rd, rs1, imm) => pack(OP_XORI, rd, rs1, imm),
            Instr::Sltiu(rd, rs1, imm) => pack(OP_SLTIU, rd, rs1, imm),
            Instr::Lui(rd, imm) => pack(OP_LUI, rd, Reg::ZERO, imm),
            Instr::Lw(rd, rs1, imm) => pack(OP_LW, rd, rs1, imm as u16),
            Instr::Sw(rs2, rs1, imm) => pack(OP_SW, rs2, rs1, imm as u16),
            Instr::Branch(cond, rs1, rs2, offset) => {
                pack(OP_BRANCH_BASE + branch_code(cond), rs2, rs1, offset as u16)
            }
            Instr::Jal(rd, offset) => pack(OP_JAL, rd, Reg::ZERO, offset as u16),
            Instr::Jalr(rd, rs1, imm) => pack(OP_JALR, rd, rs1, imm as u16),
            Instr::Halt => OP_HALT << 24,
            Instr::Nop => OP_NOP << 24,
        }
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for unknown opcodes.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let op = word >> 24;
        let rd = Reg(((word >> 20) & 0xf) as u8);
        let rs1 = Reg(((word >> 16) & 0xf) as u8);
        let rs2 = Reg(((word >> 12) & 0xf) as u8);
        let imm = (word & 0xffff) as u16;
        let simm = imm as i16;
        Ok(match op {
            OP_NOP => Instr::Nop,
            OP_HALT => Instr::Halt,
            o if (OP_ALU_BASE..OP_ALU_BASE + 15).contains(&o) => {
                let alu = alu_from_code(o - OP_ALU_BASE).ok_or(DecodeError { word })?;
                Instr::Alu(alu, rd, rs1, rs2)
            }
            OP_ADDI => Instr::Addi(rd, rs1, simm),
            OP_ANDI => Instr::Andi(rd, rs1, imm),
            OP_ORI => Instr::Ori(rd, rs1, imm),
            OP_XORI => Instr::Xori(rd, rs1, imm),
            OP_SLTIU => Instr::Sltiu(rd, rs1, imm),
            OP_LUI => Instr::Lui(rd, imm),
            OP_LW => Instr::Lw(rd, rs1, simm),
            OP_SW => Instr::Sw(rd, rs1, simm),
            o if (OP_BRANCH_BASE..OP_BRANCH_BASE + 6).contains(&o) => {
                let cond = branch_from_code(o - OP_BRANCH_BASE).ok_or(DecodeError { word })?;
                Instr::Branch(cond, rs1, rd, simm)
            }
            OP_JAL => Instr::Jal(rd, simm),
            OP_JALR => Instr::Jalr(rd, rs1, simm),
            _ => return Err(DecodeError { word }),
        })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu(op, rd, rs1, rs2) => {
                write!(f, "{} {rd}, {rs1}, {rs2}", format!("{op:?}").to_lowercase())
            }
            Instr::Addi(rd, rs1, imm) => write!(f, "addi {rd}, {rs1}, {imm}"),
            Instr::Andi(rd, rs1, imm) => write!(f, "andi {rd}, {rs1}, {imm}"),
            Instr::Ori(rd, rs1, imm) => write!(f, "ori {rd}, {rs1}, {imm}"),
            Instr::Xori(rd, rs1, imm) => write!(f, "xori {rd}, {rs1}, {imm}"),
            Instr::Sltiu(rd, rs1, imm) => write!(f, "sltiu {rd}, {rs1}, {imm}"),
            Instr::Lui(rd, imm) => write!(f, "lui {rd}, {imm}"),
            Instr::Lw(rd, rs1, imm) => write!(f, "lw {rd}, {imm}({rs1})"),
            Instr::Sw(rs2, rs1, imm) => write!(f, "sw {rs2}, {imm}({rs1})"),
            Instr::Branch(cond, rs1, rs2, offset) => write!(
                f,
                "b{} {rs1}, {rs2}, {offset}",
                format!("{cond:?}").to_lowercase()
            ),
            Instr::Jal(rd, offset) => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr(rd, rs1, imm) => write!(f, "jalr {rd}, {imm}({rs1})"),
            Instr::Halt => f.write_str("halt"),
            Instr::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instrs() -> Vec<Instr> {
        use AluOp::*;
        use BranchCond::*;
        let r = Reg::new;
        vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Alu(Add, r(1), r(2), r(3)),
            Instr::Alu(Sub, r(15), r(0), r(7)),
            Instr::Alu(Mul, r(4), r(4), r(4)),
            Instr::Alu(Divu, r(5), r(6), r(7)),
            Instr::Alu(Remu, r(5), r(6), r(7)),
            Instr::Alu(Sra, r(9), r(10), r(11)),
            Instr::Addi(r(1), r(2), -5),
            Instr::Addi(r(1), r(2), 32767),
            Instr::Andi(r(3), r(3), 0xffff),
            Instr::Ori(r(3), r(3), 0x00ff),
            Instr::Xori(r(3), r(3), 1),
            Instr::Sltiu(r(2), r(2), 1),
            Instr::Lui(r(8), 0xdead),
            Instr::Lw(r(1), r(14), -4),
            Instr::Sw(r(1), r(14), 8),
            Instr::Branch(Eq, r(1), r(2), -10),
            Instr::Branch(Geu, r(3), r(0), 100),
            Instr::Jal(r(15), 42),
            Instr::Jalr(r(0), r(15), 0),
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for instr in all_sample_instrs() {
            let word = instr.encode();
            let back = Instr::decode(word).unwrap();
            assert_eq!(instr, back, "word {word:#010x}");
        }
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let err = Instr::decode(0x6000_0000).unwrap_err();
        assert_eq!(err.word, 0x6000_0000);
        assert!(err.to_string().contains("invalid instruction"));
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn register_16_is_rejected() {
        let _ = Reg::new(16);
    }

    #[test]
    fn display_is_readable() {
        let i = Instr::Lw(Reg::new(1), Reg::SP, -4);
        assert_eq!(i.to_string(), "lw r1, -4(r14)");
        let b = Instr::Branch(BranchCond::Ne, Reg::new(1), Reg::new(2), 3);
        assert_eq!(b.to_string(), "bne r1, r2, 3");
    }

    #[test]
    fn negative_immediates_survive_encoding() {
        let i = Instr::Addi(Reg::new(1), Reg::new(1), -32768);
        assert_eq!(Instr::decode(i.encode()).unwrap(), i);
        let b = Instr::Branch(BranchCond::Eq, Reg::ZERO, Reg::ZERO, -1);
        assert_eq!(Instr::decode(b.encode()).unwrap(), b);
    }
}
