//! The typed symbol bus: names, widths and bitfields over raw memory.
//!
//! A [`SymbolMap`] describes what the words of a [`Memory`](crate::Memory)
//! *mean*: which global lives at which address, how many words it spans,
//! and which named bitfields a word carries (`eee_status.error`-style).
//! The mini-C code generator builds one from its global layout; the
//! checker and witness provenance resolve raw addresses through it so
//! diagnoses read `eee_read_value write` instead of
//! `mem[0x00010018..+4] write`, and propositions can be bound by name
//! (`sym::word_nonzero(.., "eee_ready")`) instead of by address.
//!
//! Resolution is display- and binding-layer only: the canonical atom keys
//! of address-based propositions are untouched, so attaching a map never
//! changes a fingerprint.

use std::collections::HashMap;
use std::fmt;

/// A named bitfield inside a one-word symbol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitField {
    /// Field name (the part after the dot in `sym.field`).
    pub name: String,
    /// Least-significant bit of the field.
    pub lsb: u8,
    /// Field width in bits (1..=32).
    pub width: u8,
}

impl BitField {
    /// Extracts the field's value from its containing word.
    pub fn extract(&self, word: u32) -> u32 {
        let mask = if self.width >= 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        };
        (word >> self.lsb) & mask
    }
}

/// One named, typed region of memory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Symbol {
    /// The symbol's name.
    pub name: String,
    /// Base byte address (word aligned).
    pub addr: u32,
    /// Length in 32-bit words (> 1 for arrays).
    pub words: u32,
    /// Declared bitfields (meaningful for one-word symbols).
    pub fields: Vec<BitField>,
}

impl Symbol {
    /// End address (exclusive).
    fn end(&self) -> u32 {
        self.addr + 4 * self.words
    }
}

/// A symbolic path resolved to a concrete observation: a word address
/// plus, when the path names a bitfield, the field's bit range.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Resolved {
    /// Word address of the containing word.
    pub addr: u32,
    /// The bitfield, if the path had a `.field` component.
    pub field: Option<BitField>,
}

/// The symbol table over one memory image. Build with [`SymbolMap::insert`]
/// / [`SymbolMap::define_field`], attach to a memory with
/// [`crate::Memory::attach_symbols`].
#[derive(Clone, Default, Debug)]
pub struct SymbolMap {
    /// Symbols sorted by base address (non-overlapping).
    syms: Vec<Symbol>,
    by_name: HashMap<String, usize>,
}

impl SymbolMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        SymbolMap::default()
    }

    /// Adds a symbol spanning `words` 32-bit words at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name, a misaligned address, a zero length or
    /// an overlap with an existing symbol — all layout bugs.
    pub fn insert(&mut self, name: &str, addr: u32, words: u32) {
        assert!(addr.is_multiple_of(4), "symbol `{name}` is not word aligned");
        assert!(words > 0, "symbol `{name}` has zero length");
        assert!(
            !self.by_name.contains_key(name),
            "duplicate symbol `{name}`"
        );
        let sym = Symbol {
            name: name.to_owned(),
            addr,
            words,
            fields: Vec::new(),
        };
        let pos = self.syms.partition_point(|s| s.addr < addr);
        let no_overlap = (pos == 0 || self.syms[pos - 1].end() <= addr)
            && (pos == self.syms.len() || sym.end() <= self.syms[pos].addr);
        assert!(no_overlap, "symbol `{name}` overlaps an existing symbol");
        self.syms.insert(pos, sym);
        // Re-index everything at or after the insertion point.
        for (i, s) in self.syms.iter().enumerate().skip(pos) {
            self.by_name.insert(s.name.clone(), i);
        }
    }

    /// Declares a named bitfield on a previously inserted symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is unknown, the field name is taken, or the
    /// bit range does not fit one 32-bit word.
    pub fn define_field(&mut self, sym: &str, field: &str, lsb: u8, width: u8) {
        let &i = self
            .by_name
            .get(sym)
            .unwrap_or_else(|| panic!("unknown symbol `{sym}`"));
        assert!(
            width >= 1 && (lsb as u32 + width as u32) <= 32,
            "bitfield `{sym}.{field}` does not fit a 32-bit word"
        );
        let fields = &mut self.syms[i].fields;
        assert!(
            fields.iter().all(|f| f.name != field),
            "duplicate bitfield `{sym}.{field}`"
        );
        fields.push(BitField {
            name: field.to_owned(),
            lsb,
            width,
        });
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.by_name.get(name).map(|&i| &self.syms[i])
    }

    /// All symbols, in address order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.syms
    }

    /// The symbol containing `addr`, if any.
    pub fn containing(&self, addr: u32) -> Option<&Symbol> {
        let pos = self.syms.partition_point(|s| s.addr <= addr);
        let sym = self.syms.get(pos.checked_sub(1)?)?;
        (addr < sym.end()).then_some(sym)
    }

    /// Resolves a symbolic path — `name`, `name[idx]` or `name.field` —
    /// to a word address and optional bitfield.
    pub fn resolve_path(&self, path: &str) -> Option<Resolved> {
        if let Some((base, field)) = path.split_once('.') {
            let sym = self.symbol(base)?;
            let field = sym.fields.iter().find(|f| f.name == field)?.clone();
            return Some(Resolved {
                addr: sym.addr,
                field: Some(field),
            });
        }
        if let Some((base, rest)) = path.split_once('[') {
            let idx: u32 = rest.strip_suffix(']')?.parse().ok()?;
            let sym = self.symbol(base)?;
            if idx >= sym.words {
                return None;
            }
            return Some(Resolved {
                addr: sym.addr + 4 * idx,
                field: None,
            });
        }
        self.symbol(path).map(|sym| Resolved {
            addr: sym.addr,
            field: None,
        })
    }

    /// Renders a symbolic label for a byte range, or `None` when the
    /// range is not covered by one symbol (callers then fall back to the
    /// raw `mem[..]` form). A one-word symbol labels as `name`; a word of
    /// an array as `name[idx]`; a multi-word span of one symbol as
    /// `name[i..j]`.
    pub fn label_for_range(&self, start: u32, len: u32) -> Option<String> {
        let sym = self.containing(start)?;
        if start.checked_add(len)? > sym.end() {
            return None;
        }
        if sym.words == 1 {
            return Some(sym.name.clone());
        }
        let first = (start - sym.addr) / 4;
        let last = (start + len - 1 - sym.addr) / 4;
        if first == last {
            Some(format!("{}[{first}]", sym.name))
        } else {
            Some(format!("{}[{first}..{last}]", sym.name))
        }
    }

    /// Renders a symbolic label for a bitfield watch on `addr`, or `None`
    /// when no declared field matches the bit range exactly (callers fall
    /// back to `sym.{lsb}+{width}` / raw forms).
    pub fn label_for_field(&self, addr: u32, lsb: u8, width: u8) -> Option<String> {
        let sym = self.containing(addr)?;
        let field = sym
            .fields
            .iter()
            .find(|f| f.lsb == lsb && f.width == width)?;
        Some(format!("{}.{}", sym.name, field.name))
    }
}

/// Lists the map one symbol per line — a tiny linker-map view for
/// debugging.
impl fmt::Display for SymbolMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for sym in &self.syms {
            writeln!(f, "{:#010x} +{:<3} {}", sym.addr, 4 * sym.words, sym.name)?;
            for field in &sym.fields {
                writeln!(
                    f,
                    "             .{} [{}..{}]",
                    field.name,
                    field.lsb,
                    field.lsb + field.width - 1
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> SymbolMap {
        let mut map = SymbolMap::new();
        map.insert("flag", 0x1_0004, 1);
        map.insert("buf", 0x1_0010, 4);
        map.insert("eee_status", 0x1_0000, 1);
        map.define_field("eee_status", "error", 0, 1);
        map.define_field("eee_status", "page", 4, 8);
        map
    }

    #[test]
    fn insert_keeps_symbols_sorted_and_indexed() {
        let map = demo();
        let addrs: Vec<u32> = map.symbols().iter().map(|s| s.addr).collect();
        assert_eq!(addrs, vec![0x1_0000, 0x1_0004, 0x1_0010]);
        assert_eq!(map.symbol("flag").unwrap().addr, 0x1_0004);
        assert_eq!(map.symbol("eee_status").unwrap().fields.len(), 2);
    }

    #[test]
    fn containing_finds_the_right_symbol() {
        let map = demo();
        assert_eq!(map.containing(0x1_0000).unwrap().name, "eee_status");
        assert_eq!(map.containing(0x1_0004).unwrap().name, "flag");
        assert_eq!(map.containing(0x1_0018).unwrap().name, "buf");
        assert!(map.containing(0x1_0008).is_none());
        assert!(map.containing(0x1_0020).is_none());
    }

    #[test]
    fn resolve_path_handles_names_indices_and_fields() {
        let map = demo();
        assert_eq!(map.resolve_path("flag").unwrap().addr, 0x1_0004);
        assert_eq!(map.resolve_path("buf[2]").unwrap().addr, 0x1_0018);
        assert!(map.resolve_path("buf[4]").is_none());
        let r = map.resolve_path("eee_status.error").unwrap();
        assert_eq!(r.addr, 0x1_0000);
        let f = r.field.unwrap();
        assert_eq!((f.lsb, f.width), (0, 1));
        assert!(map.resolve_path("eee_status.missing").is_none());
        assert!(map.resolve_path("nope").is_none());
    }

    #[test]
    fn bitfield_extraction_masks_and_shifts() {
        let f = BitField {
            name: "page".into(),
            lsb: 4,
            width: 8,
        };
        assert_eq!(f.extract(0x0000_0ab0), 0xab);
        let whole = BitField {
            name: "w".into(),
            lsb: 0,
            width: 32,
        };
        assert_eq!(whole.extract(u32::MAX), u32::MAX);
    }

    #[test]
    fn labels_cover_scalars_arrays_and_fields() {
        let map = demo();
        assert_eq!(map.label_for_range(0x1_0004, 4).unwrap(), "flag");
        assert_eq!(map.label_for_range(0x1_0014, 4).unwrap(), "buf[1]");
        assert_eq!(map.label_for_range(0x1_0010, 8).unwrap(), "buf[0..1]");
        assert!(map.label_for_range(0x1_0008, 4).is_none());
        assert!(map.label_for_range(0x1_001c, 8).is_none(), "past the end");
        assert_eq!(
            map.label_for_field(0x1_0000, 0, 1).unwrap(),
            "eee_status.error"
        );
        assert!(map.label_for_field(0x1_0000, 1, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_symbols_are_rejected() {
        let mut map = demo();
        map.insert("clash", 0x1_0014, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate symbol")]
    fn duplicate_names_are_rejected() {
        let mut map = demo();
        map.insert("flag", 0x2_0000, 1);
    }
}
