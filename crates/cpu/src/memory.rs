//! Memory system: flat RAM plus memory-mapped devices.
//!
//! The checker-facing read interface of the paper's first approach —
//! `sc_uint<32> sctc_sc_read_uint(sc_uint<32> addr)` — is [`Memory::peek_u32`]:
//! a side-effect-free word read that the ESW monitor uses to observe software
//! variables in place.

use std::fmt;

/// An error raised by a memory access.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MemError {
    /// The address is outside RAM and every mapped device.
    Unmapped {
        /// Faulting address.
        addr: u32,
    },
    /// A word access with a non-word-aligned address.
    Misaligned {
        /// Faulting address.
        addr: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#010x}"),
            MemError::Misaligned { addr } => write!(f, "misaligned word access at {addr:#010x}"),
        }
    }
}

impl std::error::Error for MemError {}

/// A memory-mapped device.
///
/// Offsets are relative to the device's mapping base and word-aligned.
pub trait MmioDevice {
    /// Reads a word; may have side effects (status-clear-on-read etc.).
    fn read_word(&mut self, offset: u32) -> u32;

    /// Writes a word; typically triggers device behaviour.
    fn write_word(&mut self, offset: u32, value: u32);

    /// Reads a word **without** side effects, for checker observation.
    fn peek_word(&self, offset: u32) -> u32;

    /// Advances the device by one clock cycle (busy counters etc.).
    fn tick(&mut self) {}
}

struct Mapping {
    base: u32,
    len: u32,
    device: Box<dyn MmioDevice>,
}

/// Flat RAM with an MMIO dispatch layer.
///
/// # Examples
///
/// ```
/// use sctc_cpu::Memory;
///
/// let mut mem = Memory::new(1024);
/// mem.write_u32(0x10, 0xdead_beef)?;
/// assert_eq!(mem.read_u32(0x10)?, 0xdead_beef);
/// assert_eq!(mem.peek_u32(0x10)?, 0xdead_beef);
/// # Ok::<(), sctc_cpu::MemError>(())
/// ```
pub struct Memory {
    ram: Vec<u8>,
    mappings: Vec<Mapping>,
}

impl Memory {
    /// Creates a memory with `ram_bytes` of zero-initialised RAM starting at
    /// address 0.
    pub fn new(ram_bytes: u32) -> Self {
        Memory {
            ram: vec![0; ram_bytes as usize],
            mappings: Vec::new(),
        }
    }

    /// Returns the RAM size in bytes.
    pub fn ram_len(&self) -> u32 {
        self.ram.len() as u32
    }

    /// Copies out the full RAM contents (device state excluded). Together
    /// with [`Memory::restore_ram`] this models a power loss: RAM loses its
    /// contents while non-volatile devices keep theirs.
    pub fn snapshot_ram(&self) -> Vec<u8> {
        self.ram.clone()
    }

    /// Overwrites RAM with a snapshot taken by [`Memory::snapshot_ram`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the RAM size.
    pub fn restore_ram(&mut self, snapshot: &[u8]) {
        assert_eq!(
            snapshot.len(),
            self.ram.len(),
            "RAM snapshot size mismatch"
        );
        self.ram.copy_from_slice(snapshot);
    }

    /// Maps a device at `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps RAM or an existing mapping, or if
    /// `base`/`len` are not word-aligned.
    pub fn map_device(&mut self, base: u32, len: u32, device: Box<dyn MmioDevice>) {
        assert!(
            base.is_multiple_of(4) && len.is_multiple_of(4),
            "mapping must be word-aligned"
        );
        assert!(
            base >= self.ram_len(),
            "device mapping overlaps RAM"
        );
        let end = base.checked_add(len).expect("mapping wraps address space");
        for m in &self.mappings {
            let m_end = m.base + m.len;
            assert!(
                end <= m.base || base >= m_end,
                "device mapping overlaps an existing device"
            );
        }
        self.mappings.push(Mapping { base, len, device });
    }

    /// Gives every mapped device one clock tick.
    pub fn tick_devices(&mut self) {
        for m in &mut self.mappings {
            m.device.tick();
        }
    }

    fn device_index(&self, addr: u32) -> Option<usize> {
        self.mappings
            .iter()
            .position(|m| addr >= m.base && addr < m.base + m.len)
    }

    fn check_aligned(addr: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(4) {
            Err(MemError::Misaligned { addr })
        } else {
            Ok(())
        }
    }

    /// Reads a 32-bit word (little-endian), dispatching to devices.
    ///
    /// # Errors
    ///
    /// Fails on unmapped or misaligned addresses.
    pub fn read_u32(&mut self, addr: u32) -> Result<u32, MemError> {
        Self::check_aligned(addr)?;
        if (addr as usize) + 4 <= self.ram.len() {
            let b = &self.ram[addr as usize..addr as usize + 4];
            return Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        }
        match self.device_index(addr) {
            Some(i) => {
                let base = self.mappings[i].base;
                Ok(self.mappings[i].device.read_word(addr - base))
            }
            None => Err(MemError::Unmapped { addr }),
        }
    }

    /// Writes a 32-bit word (little-endian), dispatching to devices.
    ///
    /// # Errors
    ///
    /// Fails on unmapped or misaligned addresses.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        Self::check_aligned(addr)?;
        if (addr as usize) + 4 <= self.ram.len() {
            self.ram[addr as usize..addr as usize + 4].copy_from_slice(&value.to_le_bytes());
            return Ok(());
        }
        match self.device_index(addr) {
            Some(i) => {
                let base = self.mappings[i].base;
                self.mappings[i].device.write_word(addr - base, value);
                Ok(())
            }
            None => Err(MemError::Unmapped { addr }),
        }
    }

    /// Reads a word without side effects — the checker's observation
    /// interface (`sctc_sc_read_uint` of the paper).
    ///
    /// # Errors
    ///
    /// Fails on unmapped or misaligned addresses.
    pub fn peek_u32(&self, addr: u32) -> Result<u32, MemError> {
        Self::check_aligned(addr)?;
        if (addr as usize) + 4 <= self.ram.len() {
            let b = &self.ram[addr as usize..addr as usize + 4];
            return Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        }
        match self.device_index(addr) {
            Some(i) => {
                let m = &self.mappings[i];
                Ok(m.device.peek_word(addr - m.base))
            }
            None => Err(MemError::Unmapped { addr }),
        }
    }

    /// Copies a program image into RAM starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit in RAM.
    pub fn load_image(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            let addr = base + (i as u32) * 4;
            assert!(
                (addr as usize) + 4 <= self.ram.len(),
                "program image does not fit in RAM"
            );
            self.ram[addr as usize..addr as usize + 4].copy_from_slice(&w.to_le_bytes());
        }
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("ram_bytes", &self.ram.len())
            .field("devices", &self.mappings.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A device whose reads are destructive (clears on read) to distinguish
    /// `read` from `peek`.
    struct ClearOnRead {
        value: u32,
        ticks: u32,
    }

    impl MmioDevice for ClearOnRead {
        fn read_word(&mut self, _offset: u32) -> u32 {
            std::mem::take(&mut self.value)
        }
        fn write_word(&mut self, _offset: u32, value: u32) {
            self.value = value;
        }
        fn peek_word(&self, _offset: u32) -> u32 {
            self.value
        }
        fn tick(&mut self) {
            self.ticks += 1;
        }
    }

    #[test]
    fn ram_read_write_round_trips() {
        let mut mem = Memory::new(64);
        mem.write_u32(0, 0x0102_0304).unwrap();
        mem.write_u32(60, 42).unwrap();
        assert_eq!(mem.read_u32(0).unwrap(), 0x0102_0304);
        assert_eq!(mem.read_u32(60).unwrap(), 42);
    }

    #[test]
    fn unmapped_and_misaligned_accesses_fail() {
        let mut mem = Memory::new(64);
        assert_eq!(mem.read_u32(64), Err(MemError::Unmapped { addr: 64 }));
        assert_eq!(mem.read_u32(2), Err(MemError::Misaligned { addr: 2 }));
        assert_eq!(mem.write_u32(100, 1), Err(MemError::Unmapped { addr: 100 }));
    }

    #[test]
    fn device_dispatch_and_peek_semantics() {
        let mut mem = Memory::new(64);
        mem.map_device(0x100, 0x10, Box::new(ClearOnRead { value: 0, ticks: 0 }));
        mem.write_u32(0x104, 77).unwrap();
        // Peek does not consume the value; read does.
        assert_eq!(mem.peek_u32(0x104).unwrap(), 77);
        assert_eq!(mem.read_u32(0x104).unwrap(), 77);
        assert_eq!(mem.read_u32(0x104).unwrap(), 0);
    }

    #[test]
    fn tick_reaches_devices() {
        let mut mem = Memory::new(0);
        mem.map_device(0x0, 0x4, Box::new(ClearOnRead { value: 0, ticks: 0 }));
        mem.tick_devices();
        mem.tick_devices();
        // Observable only through behaviour; write then read to check the
        // device is alive after ticks.
        mem.write_u32(0, 5).unwrap();
        assert_eq!(mem.peek_u32(0).unwrap(), 5);
    }

    #[test]
    #[should_panic(expected = "overlaps RAM")]
    fn mapping_over_ram_is_rejected() {
        let mut mem = Memory::new(64);
        mem.map_device(0, 16, Box::new(ClearOnRead { value: 0, ticks: 0 }));
    }

    #[test]
    #[should_panic(expected = "overlaps an existing device")]
    fn overlapping_mappings_are_rejected() {
        let mut mem = Memory::new(0);
        mem.map_device(0x100, 0x10, Box::new(ClearOnRead { value: 0, ticks: 0 }));
        mem.map_device(0x108, 0x10, Box::new(ClearOnRead { value: 0, ticks: 0 }));
    }

    #[test]
    fn load_image_places_words() {
        let mut mem = Memory::new(64);
        mem.load_image(8, &[1, 2, 3]);
        assert_eq!(mem.read_u32(8).unwrap(), 1);
        assert_eq!(mem.read_u32(16).unwrap(), 3);
    }

    #[test]
    fn ram_snapshot_restores_contents_but_not_devices() {
        let mut mem = Memory::new(64);
        mem.map_device(0x100, 0x10, Box::new(ClearOnRead { value: 9, ticks: 0 }));
        mem.write_u32(4, 0xaaaa_5555).unwrap();
        let snap = mem.snapshot_ram();
        mem.write_u32(4, 1).unwrap();
        mem.write_u32(8, 2).unwrap();
        mem.restore_ram(&snap);
        assert_eq!(mem.read_u32(4).unwrap(), 0xaaaa_5555);
        assert_eq!(mem.read_u32(8).unwrap(), 0);
        // The device kept its state: snapshots cover RAM only.
        assert_eq!(mem.peek_u32(0x100).unwrap(), 9);
    }

    #[test]
    #[should_panic(expected = "snapshot size mismatch")]
    fn mismatched_snapshot_is_rejected() {
        let mut mem = Memory::new(64);
        mem.restore_ram(&[0; 8]);
    }
}
