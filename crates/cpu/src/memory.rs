//! Memory system: flat RAM plus memory-mapped devices.
//!
//! The checker-facing read interface of the paper's first approach —
//! `sc_uint<32> sctc_sc_read_uint(sc_uint<32> addr)` — is [`Memory::peek_u32`]:
//! a side-effect-free word read that the ESW monitor uses to observe software
//! variables in place.

use std::fmt;
use std::rc::Rc;

use crate::symbol::SymbolMap;

/// An error raised by a memory access.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MemError {
    /// The address is outside RAM and every mapped device.
    Unmapped {
        /// Faulting address.
        addr: u32,
    },
    /// A word access with a non-word-aligned address.
    Misaligned {
        /// Faulting address.
        addr: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#010x}"),
            MemError::Misaligned { addr } => write!(f, "misaligned word access at {addr:#010x}"),
        }
    }
}

impl std::error::Error for MemError {}

/// A memory-mapped device.
///
/// Offsets are relative to the device's mapping base and word-aligned.
pub trait MmioDevice {
    /// Reads a word; may have side effects (status-clear-on-read etc.).
    fn read_word(&mut self, offset: u32) -> u32;

    /// Writes a word; typically triggers device behaviour.
    fn write_word(&mut self, offset: u32, value: u32);

    /// Reads a word **without** side effects, for checker observation.
    fn peek_word(&self, offset: u32) -> u32;

    /// Advances the device by one clock cycle (busy counters etc.).
    fn tick(&mut self) {}

    /// Whether the next [`MmioDevice::tick`] may change checker-observable
    /// state. The default is conservatively `true`; devices that know they
    /// are idle override this so watched device addresses are not marked
    /// dirty on every clock cycle.
    fn state_may_change(&self) -> bool {
        true
    }
}

struct Mapping {
    base: u32,
    len: u32,
    device: Box<dyn MmioDevice>,
}

/// A watched address range for change-driven monitoring (see
/// [`Memory::watch_range`]).
struct WatchRange {
    start: u32,
    len: u32,
    /// `true` when any part of the range lies outside RAM. Device-backed
    /// words can change through shared device state (one register write
    /// altering another window's contents), so such watches are dirtied by
    /// *any* device activity rather than by precise address overlap.
    device: bool,
    dirty: bool,
}

/// Flat RAM with an MMIO dispatch layer.
///
/// # Examples
///
/// ```
/// use sctc_cpu::Memory;
///
/// let mut mem = Memory::new(1024);
/// mem.write_u32(0x10, 0xdead_beef)?;
/// assert_eq!(mem.read_u32(0x10)?, 0xdead_beef);
/// assert_eq!(mem.peek_u32(0x10)?, 0xdead_beef);
/// # Ok::<(), sctc_cpu::MemError>(())
/// ```
pub struct Memory {
    ram: Vec<u8>,
    mappings: Vec<Mapping>,
    watches: Vec<WatchRange>,
    /// The typed symbol bus, when attached: names/widths/bitfields for
    /// the words of this image (see [`SymbolMap`]). Display-layer only —
    /// attachment never changes access semantics.
    symbols: Option<Rc<SymbolMap>>,
}

impl Memory {
    /// Creates a memory with `ram_bytes` of zero-initialised RAM starting at
    /// address 0.
    pub fn new(ram_bytes: u32) -> Self {
        Memory {
            ram: vec![0; ram_bytes as usize],
            mappings: Vec::new(),
            watches: Vec::new(),
            symbols: None,
        }
    }

    /// Attaches the typed symbol map describing this image. Consumers
    /// (provenance labels, symbolic propositions) resolve names through
    /// [`Memory::symbols`]; accesses are unaffected.
    pub fn attach_symbols(&mut self, symbols: Rc<SymbolMap>) {
        self.symbols = Some(symbols);
    }

    /// The attached symbol map, if any.
    pub fn symbols(&self) -> Option<&Rc<SymbolMap>> {
        self.symbols.as_ref()
    }

    /// Registers a watched range `[start, start + len)` and returns its
    /// watch id. A new watch starts **dirty** (its first observation must
    /// be taken), thereafter it is re-dirtied by any write overlapping the
    /// range, by wholesale RAM replacement ([`Memory::restore_ram`],
    /// [`Memory::load_image`]) and — for ranges reaching into device space
    /// — by any device activity.
    pub fn watch_range(&mut self, start: u32, len: u32) -> usize {
        let device = start.saturating_add(len) > self.ram_len();
        self.watches.push(WatchRange {
            start,
            len,
            device,
            dirty: true,
        });
        self.watches.len() - 1
    }

    /// Takes and clears the dirty flag of one watch.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Memory::watch_range`].
    pub fn take_dirty_watch(&mut self, id: usize) -> bool {
        std::mem::take(&mut self.watches[id].dirty)
    }

    /// Describes a registered watch for diagnostics: `(start, len, device)`.
    /// `device` is `true` when the range reaches into MMIO space and the
    /// watch is therefore dirtied by any device activity.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Memory::watch_range`].
    pub fn watch_info(&self, id: usize) -> (u32, u32, bool) {
        let w = &self.watches[id];
        (w.start, w.len, w.device)
    }

    /// Marks every watch dirty (conservative invalidation).
    pub fn mark_all_watches_dirty(&mut self) {
        for w in &mut self.watches {
            w.dirty = true;
        }
    }

    fn mark_ram_write(&mut self, addr: u32) {
        for w in &mut self.watches {
            if !w.dirty && addr + 4 > w.start && addr < w.start.saturating_add(w.len) {
                w.dirty = true;
            }
        }
    }

    fn mark_device_activity(&mut self) {
        for w in &mut self.watches {
            if w.device {
                w.dirty = true;
            }
        }
    }

    /// Returns the RAM size in bytes.
    pub fn ram_len(&self) -> u32 {
        self.ram.len() as u32
    }

    /// Copies out the full RAM contents (device state excluded). Together
    /// with [`Memory::restore_ram`] this models a power loss: RAM loses its
    /// contents while non-volatile devices keep theirs.
    pub fn snapshot_ram(&self) -> Vec<u8> {
        self.ram.clone()
    }

    /// Overwrites RAM with a snapshot taken by [`Memory::snapshot_ram`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the RAM size.
    pub fn restore_ram(&mut self, snapshot: &[u8]) {
        assert_eq!(snapshot.len(), self.ram.len(), "RAM snapshot size mismatch");
        self.ram.copy_from_slice(snapshot);
        // Wholesale replacement (power-loss restore): no per-address
        // tracking, every watched location may have changed.
        self.mark_all_watches_dirty();
    }

    /// Maps a device at `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps RAM or an existing mapping, or if
    /// `base`/`len` are not word-aligned.
    pub fn map_device(&mut self, base: u32, len: u32, device: Box<dyn MmioDevice>) {
        assert!(
            base.is_multiple_of(4) && len.is_multiple_of(4),
            "mapping must be word-aligned"
        );
        assert!(base >= self.ram_len(), "device mapping overlaps RAM");
        let end = base.checked_add(len).expect("mapping wraps address space");
        for m in &self.mappings {
            let m_end = m.base + m.len;
            assert!(
                end <= m.base || base >= m_end,
                "device mapping overlaps an existing device"
            );
        }
        self.mappings.push(Mapping { base, len, device });
    }

    /// Gives every mapped device one clock tick.
    pub fn tick_devices(&mut self) {
        let mut active = false;
        for m in &mut self.mappings {
            active |= !self.watches.is_empty() && m.device.state_may_change();
            m.device.tick();
        }
        if active {
            self.mark_device_activity();
        }
    }

    fn device_index(&self, addr: u32) -> Option<usize> {
        self.mappings
            .iter()
            .position(|m| addr >= m.base && addr < m.base + m.len)
    }

    fn check_aligned(addr: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(4) {
            Err(MemError::Misaligned { addr })
        } else {
            Ok(())
        }
    }

    /// Reads a 32-bit word (little-endian), dispatching to devices.
    ///
    /// # Errors
    ///
    /// Fails on unmapped or misaligned addresses.
    pub fn read_u32(&mut self, addr: u32) -> Result<u32, MemError> {
        Self::check_aligned(addr)?;
        if (addr as usize) + 4 <= self.ram.len() {
            let b = &self.ram[addr as usize..addr as usize + 4];
            return Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        }
        match self.device_index(addr) {
            Some(i) => {
                let base = self.mappings[i].base;
                let value = self.mappings[i].device.read_word(addr - base);
                // Device reads may have side effects (clear-on-read
                // status registers), so they count as device activity.
                if !self.watches.is_empty() {
                    self.mark_device_activity();
                }
                Ok(value)
            }
            None => Err(MemError::Unmapped { addr }),
        }
    }

    /// Writes a 32-bit word (little-endian), dispatching to devices.
    ///
    /// # Errors
    ///
    /// Fails on unmapped or misaligned addresses.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        Self::check_aligned(addr)?;
        if (addr as usize) + 4 <= self.ram.len() {
            self.ram[addr as usize..addr as usize + 4].copy_from_slice(&value.to_le_bytes());
            if !self.watches.is_empty() {
                self.mark_ram_write(addr);
            }
            return Ok(());
        }
        match self.device_index(addr) {
            Some(i) => {
                let base = self.mappings[i].base;
                self.mappings[i].device.write_word(addr - base, value);
                // A register write can alter words served by *other*
                // mappings over shared device state, so all device
                // watches are dirtied, not just overlapping ones.
                if !self.watches.is_empty() {
                    self.mark_device_activity();
                }
                Ok(())
            }
            None => Err(MemError::Unmapped { addr }),
        }
    }

    /// Reads a 16-bit halfword (little-endian) from RAM — the `Comp16`
    /// instruction-fetch path. Text lives in RAM, so device dispatch is
    /// deliberately not supported here.
    ///
    /// # Errors
    ///
    /// Fails on misaligned (odd) addresses and on anything outside RAM.
    #[inline]
    pub fn read_u16(&mut self, addr: u32) -> Result<u16, MemError> {
        if !addr.is_multiple_of(2) {
            return Err(MemError::Misaligned { addr });
        }
        let a = addr as usize;
        if a + 2 <= self.ram.len() {
            Ok(u16::from_le_bytes([self.ram[a], self.ram[a + 1]]))
        } else {
            Err(MemError::Unmapped { addr })
        }
    }

    /// Reads a word without side effects — the checker's observation
    /// interface (`sctc_sc_read_uint` of the paper).
    ///
    /// # Errors
    ///
    /// Fails on unmapped or misaligned addresses.
    pub fn peek_u32(&self, addr: u32) -> Result<u32, MemError> {
        Self::check_aligned(addr)?;
        if (addr as usize) + 4 <= self.ram.len() {
            let b = &self.ram[addr as usize..addr as usize + 4];
            return Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        }
        match self.device_index(addr) {
            Some(i) => {
                let m = &self.mappings[i];
                Ok(m.device.peek_word(addr - m.base))
            }
            None => Err(MemError::Unmapped { addr }),
        }
    }

    /// Copies a program image into RAM starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit in RAM.
    pub fn load_image(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            let addr = base + (i as u32) * 4;
            assert!(
                (addr as usize) + 4 <= self.ram.len(),
                "program image does not fit in RAM"
            );
            self.ram[addr as usize..addr as usize + 4].copy_from_slice(&w.to_le_bytes());
        }
        self.mark_all_watches_dirty();
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("ram_bytes", &self.ram.len())
            .field("devices", &self.mappings.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A device whose reads are destructive (clears on read) to distinguish
    /// `read` from `peek`.
    struct ClearOnRead {
        value: u32,
        ticks: u32,
    }

    impl MmioDevice for ClearOnRead {
        fn read_word(&mut self, _offset: u32) -> u32 {
            std::mem::take(&mut self.value)
        }
        fn write_word(&mut self, _offset: u32, value: u32) {
            self.value = value;
        }
        fn peek_word(&self, _offset: u32) -> u32 {
            self.value
        }
        fn tick(&mut self) {
            self.ticks += 1;
        }
    }

    #[test]
    fn ram_read_write_round_trips() {
        let mut mem = Memory::new(64);
        mem.write_u32(0, 0x0102_0304).unwrap();
        mem.write_u32(60, 42).unwrap();
        assert_eq!(mem.read_u32(0).unwrap(), 0x0102_0304);
        assert_eq!(mem.read_u32(60).unwrap(), 42);
    }

    #[test]
    fn unmapped_and_misaligned_accesses_fail() {
        let mut mem = Memory::new(64);
        assert_eq!(mem.read_u32(64), Err(MemError::Unmapped { addr: 64 }));
        assert_eq!(mem.read_u32(2), Err(MemError::Misaligned { addr: 2 }));
        assert_eq!(mem.write_u32(100, 1), Err(MemError::Unmapped { addr: 100 }));
    }

    #[test]
    fn device_dispatch_and_peek_semantics() {
        let mut mem = Memory::new(64);
        mem.map_device(0x100, 0x10, Box::new(ClearOnRead { value: 0, ticks: 0 }));
        mem.write_u32(0x104, 77).unwrap();
        // Peek does not consume the value; read does.
        assert_eq!(mem.peek_u32(0x104).unwrap(), 77);
        assert_eq!(mem.read_u32(0x104).unwrap(), 77);
        assert_eq!(mem.read_u32(0x104).unwrap(), 0);
    }

    #[test]
    fn tick_reaches_devices() {
        let mut mem = Memory::new(0);
        mem.map_device(0x0, 0x4, Box::new(ClearOnRead { value: 0, ticks: 0 }));
        mem.tick_devices();
        mem.tick_devices();
        // Observable only through behaviour; write then read to check the
        // device is alive after ticks.
        mem.write_u32(0, 5).unwrap();
        assert_eq!(mem.peek_u32(0).unwrap(), 5);
    }

    #[test]
    #[should_panic(expected = "overlaps RAM")]
    fn mapping_over_ram_is_rejected() {
        let mut mem = Memory::new(64);
        mem.map_device(0, 16, Box::new(ClearOnRead { value: 0, ticks: 0 }));
    }

    #[test]
    #[should_panic(expected = "overlaps an existing device")]
    fn overlapping_mappings_are_rejected() {
        let mut mem = Memory::new(0);
        mem.map_device(0x100, 0x10, Box::new(ClearOnRead { value: 0, ticks: 0 }));
        mem.map_device(0x108, 0x10, Box::new(ClearOnRead { value: 0, ticks: 0 }));
    }

    #[test]
    fn load_image_places_words() {
        let mut mem = Memory::new(64);
        mem.load_image(8, &[1, 2, 3]);
        assert_eq!(mem.read_u32(8).unwrap(), 1);
        assert_eq!(mem.read_u32(16).unwrap(), 3);
    }

    #[test]
    fn halfword_reads_are_little_endian_ram_only() {
        let mut mem = Memory::new(64);
        mem.write_u32(8, 0xaabb_ccdd).unwrap();
        assert_eq!(mem.read_u16(8).unwrap(), 0xccdd);
        assert_eq!(mem.read_u16(10).unwrap(), 0xaabb);
        assert_eq!(mem.read_u16(9), Err(MemError::Misaligned { addr: 9 }));
        // The fetch path stops at the end of RAM; devices are not text.
        assert_eq!(mem.read_u16(64), Err(MemError::Unmapped { addr: 64 }));
        mem.map_device(0x100, 0x10, Box::new(ClearOnRead { value: 7, ticks: 0 }));
        assert_eq!(mem.read_u16(0x100), Err(MemError::Unmapped { addr: 0x100 }));
    }

    #[test]
    fn attached_symbol_map_is_shared_and_optional() {
        use crate::symbol::SymbolMap;
        let mut mem = Memory::new(64);
        assert!(mem.symbols().is_none(), "no map until one is attached");
        let mut map = SymbolMap::new();
        map.insert("counter", 8, 1);
        mem.attach_symbols(std::rc::Rc::new(map));
        let syms = mem.symbols().expect("map attached");
        assert_eq!(syms.label_for_range(8, 4).as_deref(), Some("counter"));
        // The map is metadata only: RAM accesses are unaffected.
        mem.write_u32(8, 5).unwrap();
        assert_eq!(mem.read_u32(8).unwrap(), 5);
    }

    #[test]
    fn ram_snapshot_restores_contents_but_not_devices() {
        let mut mem = Memory::new(64);
        mem.map_device(0x100, 0x10, Box::new(ClearOnRead { value: 9, ticks: 0 }));
        mem.write_u32(4, 0xaaaa_5555).unwrap();
        let snap = mem.snapshot_ram();
        mem.write_u32(4, 1).unwrap();
        mem.write_u32(8, 2).unwrap();
        mem.restore_ram(&snap);
        assert_eq!(mem.read_u32(4).unwrap(), 0xaaaa_5555);
        assert_eq!(mem.read_u32(8).unwrap(), 0);
        // The device kept its state: snapshots cover RAM only.
        assert_eq!(mem.peek_u32(0x100).unwrap(), 9);
    }

    #[test]
    #[should_panic(expected = "snapshot size mismatch")]
    fn mismatched_snapshot_is_rejected() {
        let mut mem = Memory::new(64);
        mem.restore_ram(&[0; 8]);
    }

    /// Registers word watches at the given addresses and drains their
    /// initial dirty flags, so subsequent assertions see only new activity.
    fn settled_watches(mem: &mut Memory, addrs: &[u32]) -> Vec<usize> {
        let ids: Vec<usize> = addrs.iter().map(|&a| mem.watch_range(a, 4)).collect();
        for &id in &ids {
            assert!(mem.take_dirty_watch(id), "new watches start dirty");
        }
        ids
    }

    #[test]
    fn write_inside_watched_range_sets_exactly_the_covering_watches() {
        let mut mem = Memory::new(64);
        let ids = settled_watches(&mut mem, &[0, 8, 16]);
        mem.write_u32(8, 7).unwrap();
        assert!(!mem.take_dirty_watch(ids[0]));
        assert!(mem.take_dirty_watch(ids[1]));
        assert!(!mem.take_dirty_watch(ids[2]));
        // Dirty means written, not changed: rewriting the same value
        // still marks the watch (the sampler re-reads and sees no flip).
        mem.write_u32(8, 7).unwrap();
        assert!(mem.take_dirty_watch(ids[1]));
    }

    #[test]
    fn unwatched_write_sets_no_watches() {
        let mut mem = Memory::new(64);
        let ids = settled_watches(&mut mem, &[0, 8]);
        mem.write_u32(32, 1).unwrap();
        assert!(!mem.take_dirty_watch(ids[0]));
        assert!(!mem.take_dirty_watch(ids[1]));
    }

    #[test]
    fn restore_ram_marks_all_watches_dirty() {
        let mut mem = Memory::new(64);
        let snap = mem.snapshot_ram();
        let ids = settled_watches(&mut mem, &[0, 8, 40]);
        // The power-cut path from the fault campaigns: wholesale restore
        // must conservatively invalidate every watch.
        mem.restore_ram(&snap);
        for &id in &ids {
            assert!(mem.take_dirty_watch(id));
        }
    }

    #[test]
    fn load_image_marks_all_watches_dirty() {
        let mut mem = Memory::new(64);
        let ids = settled_watches(&mut mem, &[0, 40]);
        mem.load_image(8, &[1, 2]);
        for &id in &ids {
            assert!(mem.take_dirty_watch(id));
        }
    }

    #[test]
    fn device_watches_follow_device_activity_not_addresses() {
        let mut mem = Memory::new(64);
        mem.map_device(0x100, 0x10, Box::new(ClearOnRead { value: 0, ticks: 0 }));
        mem.map_device(0x200, 0x10, Box::new(ClearOnRead { value: 0, ticks: 0 }));
        let ram_id = mem.watch_range(0, 4);
        let dev_id = mem.watch_range(0x204, 4);
        mem.take_dirty_watch(ram_id);
        mem.take_dirty_watch(dev_id);
        // A write to the *other* device still dirties the device watch
        // (shared backend state), but never the RAM watch.
        mem.write_u32(0x104, 3).unwrap();
        assert!(!mem.take_dirty_watch(ram_id));
        assert!(mem.take_dirty_watch(dev_id));
        // Ticking devices that may change state dirties device watches
        // (ClearOnRead uses the conservative default).
        mem.tick_devices();
        assert!(!mem.take_dirty_watch(ram_id));
        assert!(mem.take_dirty_watch(dev_id));
    }
}
