//! SoC integration: the processor as a simulation process.
//!
//! [`Soc`] bundles core and memory; [`CpuProcess`] drives one instruction per
//! clock posedge inside an [`sctc_sim::Simulation`]. The SoC is shared
//! (`Rc<RefCell<_>>`) so that checker components — the ESW monitor of the
//! paper's first approach — can observe memory between cycles.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use sctc_sim::{Activation, Clock, Notify, Process, ProcessContext, Simulation};

use crate::core::{Cpu, CpuError, StepOutcome};
use crate::memory::Memory;

/// Processor core plus memory system.
pub struct Soc {
    /// The processor core.
    pub cpu: Cpu,
    /// RAM and memory-mapped devices.
    pub mem: Memory,
    /// First execution error, if any (the core stops on errors).
    pub fault: Option<CpuError>,
}

impl Soc {
    /// Creates a SoC with a reset PC of 0.
    pub fn new(mem: Memory) -> Self {
        Soc {
            cpu: Cpu::new(0),
            mem,
            fault: None,
        }
    }

    /// Creates a SoC with an explicit reset PC.
    pub fn with_reset_pc(mem: Memory, reset_pc: u32) -> Self {
        Soc {
            cpu: Cpu::new(reset_pc),
            mem,
            fault: None,
        }
    }

    /// Restarts the core at the reset vector, preserving its configured
    /// instruction encoding (and the bench decoder selection), and clears
    /// any fault. Memory and devices are untouched — this models the
    /// test harness pulsing the CPU reset line between cases.
    pub fn reset_cpu(&mut self) {
        let mut cpu = Cpu::with_isa(0, self.cpu.isa());
        cpu.set_legacy_decode(self.cpu.legacy_decode());
        self.cpu = cpu;
        self.fault = None;
    }

    /// Executes one instruction and ticks the devices.
    pub fn cycle(&mut self) -> StepOutcome {
        if self.fault.is_some() {
            return StepOutcome::Halted;
        }
        self.mem.tick_devices();
        match self.cpu.step(&mut self.mem) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.fault = Some(e);
                StepOutcome::Halted
            }
        }
    }
}

impl fmt::Debug for Soc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Soc")
            .field("pc", &self.cpu.pc())
            .field("halted", &self.cpu.is_halted())
            .field("fault", &self.fault)
            .finish()
    }
}

/// A shared handle to a [`Soc`], usable from several simulation processes.
pub type SharedSoc = Rc<RefCell<Soc>>;

/// Wraps a [`Soc`] for sharing.
pub fn share(soc: Soc) -> SharedSoc {
    Rc::new(RefCell::new(soc))
}

/// Simulation process executing one instruction per clock posedge.
///
/// Terminates (leaving the shared SoC accessible) when the core halts or
/// faults.
///
/// # Examples
///
/// ```
/// use sctc_cpu::{assemble, share, CpuProcess, Memory, Soc};
/// use sctc_sim::{Duration, Simulation};
///
/// let prog = assemble("li r1, 3\nhalt")?;
/// let mut mem = Memory::new(1024);
/// mem.load_image(prog.origin, &prog.words);
/// let soc = share(Soc::new(mem));
///
/// let mut sim = Simulation::new();
/// let clk = sim.create_clock("clk", Duration::from_ticks(10));
/// CpuProcess::spawn(&mut sim, &clk, soc.clone());
/// sim.run_to_completion().unwrap();
///
/// assert!(soc.borrow().cpu.is_halted());
/// # Ok::<(), sctc_cpu::AsmError>(())
/// ```
pub struct CpuProcess {
    soc: SharedSoc,
    seen_halt: bool,
}

impl CpuProcess {
    /// Spawns the processor process, statically sensitive to the clock's
    /// posedge.
    pub fn spawn(sim: &mut Simulation, clock: &Clock, soc: SharedSoc) -> sctc_sim::ProcessId {
        sim.spawn_deferred(
            "cpu",
            Box::new(CpuProcess {
                soc,
                seen_halt: false,
            }),
            vec![clock.posedge()],
        )
    }

    /// Spawns the processor process and additionally notifies
    /// `retired_event` (delta) after every executed instruction — the hook
    /// the ESW monitor uses to sample memory once per cycle.
    pub fn spawn_with_retired_event(
        sim: &mut Simulation,
        clock: &Clock,
        soc: SharedSoc,
        retired_event: sctc_sim::Event,
    ) -> sctc_sim::ProcessId {
        struct WithEvent {
            soc: SharedSoc,
            event: sctc_sim::Event,
            seen_halt: bool,
        }
        impl Process for WithEvent {
            fn resume(&mut self, ctx: &mut ProcessContext<'_>) -> Activation {
                // Stop only one clock edge after halt so that processes
                // sensitive to the retired event still observe the final
                // architectural state.
                if self.seen_halt {
                    ctx.stop();
                    return Activation::Terminate;
                }
                let outcome = self.soc.borrow_mut().cycle();
                ctx.notify(self.event, Notify::Delta);
                if let StepOutcome::Halted = outcome {
                    self.seen_halt = true;
                }
                Activation::WaitStatic
            }
        }
        sim.spawn_deferred(
            "cpu",
            Box::new(WithEvent {
                soc,
                event: retired_event,
                seen_halt: false,
            }),
            vec![clock.posedge()],
        )
    }
}

impl Process for CpuProcess {
    fn resume(&mut self, ctx: &mut ProcessContext<'_>) -> Activation {
        // Like `sc_stop()` in a SystemC testbench: the free-running clock
        // would otherwise keep the simulation alive forever. Stopping one
        // clock edge after the halt lets clock-sensitive observers sample
        // the final state.
        if self.seen_halt {
            ctx.stop();
            return Activation::Terminate;
        }
        if let StepOutcome::Halted = self.soc.borrow_mut().cycle() {
            self.seen_halt = true;
        }
        Activation::WaitStatic
    }
}

impl fmt::Debug for CpuProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpuProcess").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use sctc_sim::Duration;

    fn boot(source: &str) -> (Simulation, SharedSoc, Clock) {
        let prog = assemble(source).unwrap();
        let mut mem = Memory::new(65536);
        mem.load_image(prog.origin, &prog.words);
        let soc = share(Soc::with_reset_pc(mem, prog.origin));
        let mut sim = Simulation::new();
        let clk = sim.create_clock("clk", Duration::from_ticks(10));
        CpuProcess::spawn(&mut sim, &clk, soc.clone());
        (sim, soc, clk)
    }

    #[test]
    fn one_instruction_per_clock_cycle() {
        let (mut sim, soc, _clk) = boot("nop\nnop\nnop\nhalt");
        sim.run_to_completion().unwrap();
        assert!(soc.borrow().cpu.is_halted());
        assert_eq!(soc.borrow().cpu.retired(), 4);
        // Four posedges execute (t = 0, 10, 20, 30); the stop lands one
        // edge later at t = 40.
        assert_eq!(sim.now().ticks(), 40);
    }

    #[test]
    fn memory_is_observable_between_cycles() {
        let (mut sim, soc, _clk) = boot(
            "
            li r1, 0x200
            li r2, 42
            sw r2, 0(r1)
            halt
        ",
        );
        sim.run_to_completion().unwrap();
        assert_eq!(soc.borrow().mem.peek_u32(0x200).unwrap(), 42);
    }

    #[test]
    fn retired_event_fires_per_instruction() {
        let prog = assemble("nop\nnop\nhalt").unwrap();
        let mut mem = Memory::new(4096);
        mem.load_image(prog.origin, &prog.words);
        let soc = share(Soc::new(mem));
        let mut sim = Simulation::new();
        let clk = sim.create_clock("clk", Duration::from_ticks(10));
        let retired = sim.create_event("retired");
        CpuProcess::spawn_with_retired_event(&mut sim, &clk, soc, retired);
        sim.run_to_completion().unwrap();
        assert_eq!(sim.event_fire_count(retired), 3);
    }

    #[test]
    fn fault_stops_the_process() {
        // Jump into unmapped memory.
        let (mut sim, soc, _clk) = boot("li r1, 0x7ffffffc\njalr r0, 0(r1)");
        sim.run_to_completion().unwrap();
        assert!(soc.borrow().fault.is_some());
    }
}
