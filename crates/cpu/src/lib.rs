//! # sctc-cpu — the microprocessor model
//!
//! A 32-bit RISC instruction-set simulator with a memory bus, built as the
//! substrate for the paper's first verification approach: the embedded
//! software runs on this core while the temporal checker observes its
//! variables in memory and uses the core's clock as timing reference.
//!
//! * [`Instr`]/[`Reg`] — the ISA (RV32I-like subset), described
//!   declaratively by the [`isa::ISA`] table from which the encoder,
//!   decoder, assembler and printer are derived; [`IsaKind`] selects
//!   between the fixed 32-bit and the compressed 16/32-bit encoding,
//! * [`Memory`] — flat RAM plus [`MmioDevice`] dispatch, with the
//!   side-effect-free [`Memory::peek_u32`] observation interface and an
//!   attachable [`SymbolMap`] (the typed symbol bus: names, widths,
//!   bitfields over raw words),
//! * [`Cpu`] — fetch/decode/execute core,
//! * [`assemble`] — a two-pass assembler for firmware in tests and examples,
//! * [`Soc`]/[`CpuProcess`] — integration with the [`sctc_sim`] kernel:
//!   one instruction per clock posedge.
//!
//! ## Example
//!
//! ```
//! use sctc_cpu::{assemble, Cpu, Memory, Reg};
//!
//! let prog = assemble("li r1, 21\nadd r1, r1, r1\nhalt")?;
//! let mut mem = Memory::new(1024);
//! mem.load_image(prog.origin, &prog.words);
//! let mut cpu = Cpu::new(prog.origin);
//! cpu.run(&mut mem, 1000).unwrap();
//! assert_eq!(cpu.reg(Reg::new(1)), 42);
//! # Ok::<(), sctc_cpu::AsmError>(())
//! ```

#![warn(missing_docs)]

mod asm;
mod core;
pub mod isa;
mod memory;
mod soc;
pub mod symbol;

pub use asm::{assemble, AsmError, Program};
pub use core::{Cpu, CpuError, StepOutcome};
pub use isa::{AluOp, BranchCond, DecodeError, Instr, IsaKind, Reg};
pub use memory::{MemError, Memory, MmioDevice};
pub use soc::{share, CpuProcess, SharedSoc, Soc};
pub use symbol::{BitField, Resolved, Symbol, SymbolMap};
