//! Firmware-level integration tests: multi-routine assembler programs
//! exercising the ISA, the stack discipline and the memory system together.

use sctc_cpu::{assemble, Cpu, Memory, Reg};

fn run(source: &str, steps: u64) -> (Cpu, Memory) {
    let prog = assemble(source).expect("assembles");
    let mut mem = Memory::new(1 << 20);
    mem.load_image(prog.origin, &prog.words);
    let mut cpu = Cpu::new(prog.origin);
    cpu.run(&mut mem, steps).expect("no fault");
    assert!(cpu.is_halted(), "firmware must halt");
    (cpu, mem)
}

#[test]
fn memcpy_routine() {
    let (_, mem) = run(
        "
        li sp, 0x100000
        la r1, src
        li r2, 0x9000      ; dst
        li r3, 5           ; words
    copy:
        beq r3, zero, done
        lw r4, 0(r1)
        sw r4, 0(r2)
        addi r1, r1, 4
        addi r2, r2, 4
        addi r3, r3, -1
        j copy
    done:
        halt
    src:
        .word 11
        .word 22
        .word 33
        .word 44
        .word 55
    ",
        10_000,
    );
    for (i, want) in [11u32, 22, 33, 44, 55].iter().enumerate() {
        assert_eq!(mem.peek_u32(0x9000 + 4 * i as u32).unwrap(), *want);
    }
}

#[test]
fn nested_calls_preserve_stack_discipline() {
    // f(n) = 2*g(n) + 1, g(n) = n + 10, computed with proper save/restore.
    let (cpu, _) = run(
        "
        li sp, 0x100000
        li r1, 5
        jal ra, f
        halt
    f:
        addi sp, sp, -8
        sw ra, 0(sp)
        sw r1, 4(sp)
        jal ra, g          ; rv = r1 + 10
        add rv, rv, rv     ; 2 * g(n)
        addi rv, rv, 1
        lw ra, 0(sp)
        lw r1, 4(sp)
        addi sp, sp, 8
        jalr r0, 0(ra)
    g:
        addi rv, r1, 10
        jalr r0, 0(ra)
    ",
        10_000,
    );
    assert_eq!(cpu.reg(Reg::RV), 31); // 2*(5+10)+1
    assert_eq!(cpu.reg(Reg::SP), 0x100000, "stack must balance");
}

#[test]
fn bit_manipulation_firmware() {
    // Count set bits of 0xDEADBEEF.
    let (cpu, _) = run(
        "
        li r1, 0xDEADBEEF
        li r2, 0           ; popcount
        li r3, 32          ; remaining bits
    loop:
        beq r3, zero, done
        andi r4, r1, 1
        add r2, r2, r4
        li r5, 1
        srl r1, r1, r5
        addi r3, r3, -1
        j loop
    done:
        halt
    ",
        10_000,
    );
    assert_eq!(cpu.reg(Reg::new(2)), 0xDEADBEEFu32.count_ones());
}

#[test]
fn indirect_jumps_through_table() {
    // Dispatch through a jump table: handler index 2 runs.
    let (cpu, _) = run(
        "
        li r1, 2               ; handler index
        la r2, table
        li r3, 4
        mul r1, r1, r3
        add r2, r2, r1
        lw r2, 0(r2)
        jalr r0, 0(r2)
    h0: li rv, 100
        halt
    h1: li rv, 200
        halt
    h2: li rv, 300
        halt
    table:
        .word h0
        .word h1
        .word h2
    ",
        1_000,
    );
    assert_eq!(cpu.reg(Reg::RV), 300);
}

#[test]
fn fibonacci_iterative_firmware() {
    let (cpu, _) = run(
        "
        li r1, 20      ; n
        li r2, 0       ; fib(0)
        li r3, 1       ; fib(1)
    loop:
        beq r1, zero, done
        add r4, r2, r3
        add r2, zero, r3
        add r3, zero, r4
        addi r1, r1, -1
        j loop
    done:
        add rv, zero, r2
        halt
    ",
        10_000,
    );
    assert_eq!(cpu.reg(Reg::RV), 6765);
}

#[test]
fn signed_unsigned_branch_matrix() {
    // blt vs bltu on a negative value.
    let (cpu, _) = run(
        "
        li r1, -1
        li r2, 1
        li rv, 0
        blt r1, r2, signed_ok
        halt
    signed_ok:
        ori rv, rv, 1
        bltu r2, r1, unsigned_ok   ; 1 <u 0xffffffff
        halt
    unsigned_ok:
        ori rv, rv, 2
        bge r2, r1, ge_ok          ; 1 >= -1 signed
        halt
    ge_ok:
        ori rv, rv, 4
        bgeu r1, r2, geu_ok        ; 0xffffffff >=u 1
        halt
    geu_ok:
        ori rv, rv, 8
        halt
    ",
        1_000,
    );
    assert_eq!(cpu.reg(Reg::RV), 0b1111);
}
